"""Chaos soak: a Zipf trace replayed through the distributed cache tier
while the injector kills workers and browns out the object store.

This is the end-to-end resilience assertion the Section 7 lessons build
toward: with consistent hashing (lazy data movement), per-node circuit
breakers, hedged reads, retries with backoff, and remote storage as the
final fallback, a cluster that loses nodes mid-trace must keep answering
every query -- the *error rate stays zero* and the tier hit ratio recovers
shortly after each fault window closes.

Scenario (virtual time, one simulated hour):

- 6 cache workers front an S3-like object store; a Zipf(1.1) trace reads
  128 KiB ranges from a 64-file working set;
- the object store is browned out for the whole hour (15 % of requests pay
  +250 ms, 2 % fail, 1 % corrupt in transit -- the last two retried by the
  ``ResilientDataSource`` in front of it);
- fault window 1 kills TWO workers (``cw-0`` at t=900s, ``cw-1`` at
  t=930s, 300 s each); fault window 2 kills ``cw-2`` at t=2100s.

``CHAOS_SOAK_QUICK=1`` keeps the same virtual-time scenario but replays
720 requests (5 s apart) instead of 3600 (1 s apart) -- the CI setting.

Run explicitly (benchmarks are not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_chaos_soak.py -q
"""

import os

import pytest
from harness import emit_report

from repro.core.config import MIB
from repro.core.metrics import MetricsRegistry
from repro.core.page import installed_time_source
from repro.core.metrics_export import to_json_dict
from repro.obs import (
    NOOP_PROFILER,
    KernelProfiler,
    SimTracer,
    SpanBuffer,
    attribute_buffer,
    critical_path,
    format_attribution,
    format_critical_path,
    installed_tracer,
    to_chrome_trace,
    tree_signature,
)
from repro.distributed.client import DistributedCacheClient
from repro.distributed.worker import CacheWorker
from repro.resilience import (
    BreakerBoard,
    ChaosInjector,
    HedgePolicy,
    NodeHealthTracker,
    RemoteFaultState,
    ResilientDataSource,
    RetryPolicy,
)
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.sim.sanitizer import DeterminismHarness
from repro.storage.object_store import ObjectStore
from repro.storage.remote import ObjectStoreDataSource
from repro.workload.zipf import ZipfSampler

QUICK = bool(os.environ.get("CHAOS_SOAK_QUICK"))

SEED = 20240702
SOAK_SECONDS = 3600.0
N_REQUESTS = 720 if QUICK else 3600
N_WORKERS = 6
N_FILES = 64
FILE_SIZE = 1 * MIB
READ_SIZE = 128 * 1024
WINDOW = 300.0  # hit-ratio accounting granularity (12 windows per hour)

# (worker, crash at, window length); window 1 kills two workers at once
KILLS = (
    ("cw-0", 900.0, 300.0),
    ("cw-1", 930.0, 300.0),
    ("cw-2", 2100.0, 300.0),
)
BROWNOUT = dict(
    fail_probability=0.02,
    corrupt_probability=0.01,
    delay_probability=0.15,
    delay_seconds=0.25,
)
# (pre-fault window index, post-recovery window index) per fault window:
# faults land in windows 3 ([900, 1200)) and 7 ([2100, 2400)); one full
# window of re-warm time is allowed before the recovered ratio is measured
RECOVERY_CHECKS = ((2, 5), (6, 9))


class _TierNode:
    """Chaos adapter: ``revive`` goes through the client so the ring seat
    is marked online again (lazy data movement, no key churn)."""

    def __init__(self, client: DistributedCacheClient, name: str) -> None:
        self.client = client
        self.name = name

    def fail(self) -> None:
        self.client.worker(self.name).fail()

    def recover(self) -> None:
        self.client.notify_recovered(self.name)


def run_soak(seed: int, n_requests: int = N_REQUESTS) -> dict:
    """One soak run under mandatory SimClock injection: the virtual clock
    is installed as the page time source for the scenario's whole extent,
    so no ``PageInfo`` stamp can silently read the wall clock."""
    clock = SimClock()
    with installed_time_source(clock.now):
        return _run_soak(clock, seed, n_requests)


def run_traced_soak(
    seed: int, n_requests: int = N_REQUESTS, profiler=None
) -> tuple[dict, SimTracer]:
    """The same soak with a SimTracer installed; returns (result, tracer).

    The tracer draws ids from its own derived rng stream, so the traced
    scenario's virtual results are identical to the untraced run's.  An
    optional scheduler ``profiler`` is attached to the soak's event loop
    (pure observer: it must not change any result either).
    """
    clock = SimClock()
    tracer = SimTracer(
        clock, RngStream(seed, "chaos-soak-trace"), buffer=SpanBuffer()
    )
    with installed_time_source(clock.now):
        with installed_tracer(tracer):
            result = _run_soak(clock, seed, n_requests, profiler=profiler)
    return result, tracer


def run_profiled_soak(
    seed: int, n_requests: int = N_REQUESTS
) -> tuple[dict, SimTracer, KernelProfiler]:
    """Traced soak with a scheduler profiler on the event loop."""
    clock = SimClock()
    profiler = KernelProfiler(clock)
    tracer = SimTracer(
        clock, RngStream(seed, "chaos-soak-trace"), buffer=SpanBuffer()
    )
    with installed_time_source(clock.now):
        with installed_tracer(tracer):
            result = _run_soak(clock, seed, n_requests, profiler=profiler)
    return result, tracer, profiler


def _run_soak(
    clock: SimClock, seed: int, n_requests: int, profiler=None
) -> dict:
    root = RngStream(seed, "chaos-soak")
    metrics = MetricsRegistry("chaos-soak")

    store = ObjectStore(clock=clock)
    for i in range(N_FILES):
        store.put_object(f"lake/f{i:03d}", bytes([i % 251]) * FILE_SIZE)
    remote = ResilientDataSource(
        ObjectStoreDataSource(store),
        policy=RetryPolicy(max_attempts=4, base_delay=0.05, jitter=0.2),
        rng=root.child("retry"),
        metrics=metrics,
    )

    workers = [
        CacheWorker(
            f"cw-{i}",
            remote,
            cache_capacity_bytes=24 * MIB,
            page_size=READ_SIZE,
            clock=clock,
        )
        for i in range(N_WORKERS)
    ]
    health = NodeHealthTracker(
        clock=clock,
        breakers=BreakerBoard(
            clock=clock, metrics=metrics, min_volume=1, reset_timeout=120.0
        ),
        metrics=metrics,
    )
    hedge = HedgePolicy(min_observations=50, metrics=metrics)
    client = DistributedCacheClient(
        workers,
        remote,
        clock=clock,
        health=health,
        hedge=hedge,
        metrics=metrics,
        offline_timeout=900.0,
    )

    loop = EventLoop(clock)
    if profiler is not None:
        loop.attach_profiler(profiler)
    chaos = ChaosInjector(clock=clock, rng=root.child("chaos"))
    chaos.register_all({w.name: _TierNode(client, w.name) for w in workers})
    for name, at, duration in KILLS:
        chaos.schedule_crash(loop, name, at=at, duration=duration)
    chaos.set_remote_faults(store, RemoteFaultState(**BROWNOUT))

    sampler = ZipfSampler(N_FILES, 1.1, root.child("zipf"))
    ranks = sampler.sample(n_requests)
    offsets = root.child("offsets").rng.integers(
        0, FILE_SIZE // READ_SIZE, size=n_requests
    )

    dt = SOAK_SECONDS / n_requests
    errors = 0
    latency_sum = 0.0
    snapshots: list[tuple[int, int]] = []  # cumulative (hits, misses)
    next_boundary = WINDOW

    def snapshot() -> tuple[int, int]:
        hits = sum(w.metrics.counter("get_hits").value for w in workers)
        misses = sum(w.metrics.counter("get_misses").value for w in workers)
        return hits, misses

    for i in range(n_requests):
        t = (i + 1) * dt
        while t > next_boundary + 1e-9:
            snapshots.append(snapshot())
            next_boundary += WINDOW
        loop.run_until(t)
        file_id = f"lake/f{int(ranks[i]):03d}"
        try:
            result = client.read(file_id, int(offsets[i]) * READ_SIZE, READ_SIZE)
            latency_sum += result.latency
        except Exception:
            errors += 1
    while len(snapshots) < int(SOAK_SECONDS / WINDOW):
        snapshots.append(snapshot())

    window_hit_ratios = []
    previous = (0, 0)
    for hits, misses in snapshots:
        d_hits = hits - previous[0]
        d_total = (hits + misses) - (previous[0] + previous[1])
        window_hit_ratios.append(round(d_hits / d_total, 6) if d_total else 0.0)
        previous = (hits, misses)

    return {
        "errors": errors,
        "latency_sum": round(latency_sum, 6),
        "chaos_events": list(chaos.events),
        "breaker_events": list(health.breakers.events),
        "breaker_trips": health.breakers.total_trips(),
        "hedged_requests": hedge.hedged_requests,
        "hedge_wins": hedge.hedge_wins,
        "failovers": client.failovers,
        "remote_fallbacks": client.remote_fallbacks,
        "store_requests": store.request_count,
        "store_delays": store.chaos_delays,
        "store_failures": store.chaos_failures,
        "store_corruptions": store.chaos_corruptions,
        "window_hit_ratios": window_hit_ratios,
        "final_hit_ratio": round(client.tier_hit_ratio(), 6),
        "counters": {
            name: value
            for name, value in to_json_dict(metrics)["counters"].items()
            if value
        },
        "health": health.snapshot(),
    }


class TestChaosSoak:
    def test_cluster_survives_one_hour_of_faults(self):
        result = run_soak(SEED)

        # every query answered: kills + brownout never surface to the caller
        assert result["errors"] == 0

        # the scenario actually bit: >= 2 node kills landed...
        kills = [e for e in result["chaos_events"] if e[1] == "crash"]
        assert len(kills) >= 2
        # ... and >= 5 % of object-store requests were delayed
        delayed_fraction = result["store_delays"] / result["store_requests"]
        assert delayed_fraction >= 0.05

        # every resilience mechanism fired, observably (exported counters)
        assert result["breaker_trips"] > 0
        assert result["counters"]["breaker_trips"] > 0
        assert result["hedged_requests"] > 0
        assert result["counters"]["hedged_requests"] > 0
        assert result["counters"]["retries"] > 0
        assert result["failovers"] > 0
        assert result["counters"]["degraded_serves"] > 0

        # hit ratio recovers to within 10 % of its pre-fault level after
        # each fault window (one re-warm window of slack)
        ratios = result["window_hit_ratios"]
        for pre_idx, post_idx in RECOVERY_CHECKS:
            assert ratios[post_idx] >= ratios[pre_idx] - 0.10, (
                f"hit ratio did not recover after fault window: "
                f"window {pre_idx} = {ratios[pre_idx]:.3f}, "
                f"window {post_idx} = {ratios[post_idx]:.3f}"
            )

        lines = [
            f"mode               : {'quick' if QUICK else 'full'}"
            f" ({N_REQUESTS} requests over {SOAK_SECONDS:.0f} simulated s)",
            f"errors             : {result['errors']}",
            f"node kills         : {len(kills)}"
            f"  {[(e[2], e[0]) for e in kills]}",
            f"delayed remote     : {result['store_delays']}"
            f"/{result['store_requests']}"
            f" ({100 * delayed_fraction:.1f} %)",
            f"failed remote      : {result['store_failures']}"
            f" (+{result['store_corruptions']} corrupted)",
            f"breaker trips      : {result['breaker_trips']}",
            f"hedged requests    : {result['hedged_requests']}"
            f" ({result['hedge_wins']} wins)",
            f"retries            : {result['counters']['retries']}",
            f"failovers          : {result['failovers']}",
            f"remote fallbacks   : {result['remote_fallbacks']}",
            f"degraded serves    : {result['counters']['degraded_serves']}",
            f"final hit ratio    : {result['final_hit_ratio']:.3f}",
            "",
            "window  span (s)       tier hit ratio",
        ]
        for k, ratio in enumerate(ratios):
            span = f"[{k * WINDOW:.0f}, {(k + 1) * WINDOW:.0f})"
            fault = ""
            if any(at < (k + 1) * WINDOW and at + dur > k * WINDOW
                   for __, at, dur in KILLS):
                fault = "  <- fault window"
            lines.append(f"{k:>6}  {span:<14} {ratio:>8.3f}{fault}")
        emit_report("chaos_soak", "\n".join(lines))


class TestChaosSoakDeterminism:
    def test_same_seed_identical_event_sequences(self):
        """Same seed -> bit-identical retry/hedge/breaker/chaos trail."""
        n = 480  # shortened trace: determinism needs coverage, not scale
        a = run_soak(SEED, n_requests=n)
        b = run_soak(SEED, n_requests=n)
        assert a == b

    def test_different_seed_diverges(self):
        n = 480
        a = run_soak(SEED, n_requests=n)
        c = run_soak(SEED + 1, n_requests=n)
        assert a != c

    @pytest.mark.determinism
    def test_sanitizer_double_run_hashes_match(self):
        """The CI sanitizer gate: DeterminismHarness replays the quick
        soak scenario twice from one seed and demands identical rolling
        hashes over the (event type, virtual timestamp, actor) trail."""
        n = 480

        def scenario(trace):
            result = run_soak(SEED, n_requests=n)
            trace.record_all(result["chaos_events"])
            trace.record_all(result["breaker_events"])
            trace.record(
                "soak-summary", SOAK_SECONDS, "tier",
                detail=(
                    f"hit={result['final_hit_ratio']}"
                    f"|errors={result['errors']}"
                    f"|latency={result['latency_sum']}"
                    f"|failovers={result['failovers']}"
                ),
            )
            return result["counters"]

        report = DeterminismHarness(scenario).check()
        assert report.deterministic
        assert report.hash_first == report.hash_second
        assert report.events_first > 3  # kills + breaker activity + summary


class TestTracedSoak:
    """The tracing acceptance gates: reconciliation, schema, determinism,
    and zero behavioural impact."""

    N = 480

    def test_traced_results_match_untraced(self):
        """Tracing must be a pure observer: the result dict of a traced
        run is identical to the plain run's (the tracer's rng streams are
        its own; no scenario draw is perturbed)."""
        plain = run_soak(SEED, n_requests=self.N)
        traced, tracer = run_traced_soak(SEED, n_requests=self.N)
        assert traced == plain
        assert len(tracer.buffer) > 0

    def test_attribution_reconciles_within_1_percent(self):
        """Per-request bucket sums land within 1 % of the measured virtual
        latency, and the fleet total reconciles against latency_sum."""
        result, tracer = run_traced_soak(SEED, n_requests=self.N)
        reports = attribute_buffer(tracer.buffer)
        assert len(reports) == self.N
        off = [r for r in reports if not r.within(0.01)]
        assert not off, (
            f"{len(off)}/{len(reports)} traces off by >1%: "
            f"{[(r.trace_id, r.wall, r.charged_total) for r in off[:5]]}"
        )
        wall_total = sum(r.wall for r in reports)
        assert wall_total == pytest.approx(result["latency_sum"], rel=1e-6)

        lines = [
            f"requests traced    : {len(reports)}",
            f"buffer dropped     : {tracer.buffer.dropped}",
            "",
            format_attribution(reports, top=3),
        ]
        slowest = sorted(reports, key=lambda r: (-r.wall, r.trace_id))[0]
        lines += [
            "",
            f"critical path of slowest trace ({slowest.trace_id}):",
            format_critical_path(
                critical_path(tracer.buffer.trace(slowest.trace_id))
            ),
        ]
        emit_report("trace_attribution", "\n".join(lines))

    def test_chrome_export_schema_valid(self):
        _, tracer = run_traced_soak(SEED, n_requests=60)
        doc = to_chrome_trace(tracer.buffer.spans())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in {"X", "M"}
            assert "ts" in event
            assert "pid" in event
            assert "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    @pytest.mark.determinism
    def test_traced_double_run_identical_span_trees(self):
        """Same seed, tracing on: the full span forest (ids, structure,
        charges, events) is bit-identical across runs, and no span leaks."""
        first_result, first_tracer = run_traced_soak(SEED, n_requests=self.N)
        second_result, second_tracer = run_traced_soak(SEED, n_requests=self.N)
        assert first_result == second_result
        assert first_tracer.open_spans() == []
        assert second_tracer.open_spans() == []
        assert tree_signature(first_tracer.buffer.spans()) == tree_signature(
            second_tracer.buffer.spans()
        )


class TestProfiledSoak:
    """The scheduler profiler as a pure observer on the chaos soak
    (DESIGN.md §12 acceptance: profiling changes nothing, and the virtual
    profile is itself deterministic)."""

    N = 480

    def test_profiled_results_match_untraced(self):
        """A full profiler on the event loop perturbs no soak result."""
        plain = run_soak(SEED, n_requests=self.N)
        profiled, __, profiler = run_profiled_soak(SEED, n_requests=self.N)
        assert profiled == plain
        counters = profiler.profile.counters()
        assert counters["events_popped"] > 0
        assert counters["timer_inserts"] > 0

    def test_noop_profiled_run_identical_results_and_span_trees(self):
        """NOOP profiler attached: exact same results AND identical span
        trees as the traced run without any profiler (the acceptance
        criterion's 'enabling the NOOP profiler changes no simulation
        results')."""
        base_result, base_tracer = run_traced_soak(SEED, n_requests=self.N)
        noop_result, noop_tracer = run_traced_soak(
            SEED, n_requests=self.N, profiler=NOOP_PROFILER
        )
        assert noop_result == base_result
        assert tree_signature(noop_tracer.buffer.spans()) == tree_signature(
            base_tracer.buffer.spans()
        )

    @pytest.mark.determinism
    def test_profiled_double_run_byte_identical_virtual_profile(self):
        """Double-run of the traced+profiled soak: the virtual-time profile
        document and the folded wait-state export are byte-identical (host
        fields excluded by construction)."""
        docs = []
        for __ in range(2):
            result, __tracer, profiler = run_profiled_soak(
                SEED, n_requests=self.N
            )
            profile = profiler.finalize()
            docs.append(
                (profile.to_json(include_host=False),
                 profile.folded_wait_states(),
                 result["final_hit_ratio"])
            )
        assert docs[0] == docs[1]
