"""Figure 13: cache vs non-cache read rates in an HDFS DataNode.

The paper (one production DataNode, one hour): "the rate of bytes read from
the cache is, on average, threefold that of non-cache reads.  More than 70%
of total read bytes are serviced by the local cache."
"""

import numpy as np
import pytest

from harness import emit_report, pct
from hdfs_harness import MIB, build_datanode, replay_trace
from repro.analysis import Table

DURATION = 3600.0
READS_PER_SECOND = 40.0


def run_experiment():
    setup = build_datanode(cache_capacity_bytes=12 * MIB, admission_threshold=3)
    replay_trace(
        setup, duration_seconds=DURATION, reads_per_second=READS_PER_SECOND,
        zipf_s=1.15,
    )
    return setup


@pytest.mark.benchmark(group="fig13")
def test_fig13_cache_read_rates(benchmark):
    setup = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    cache_buckets, other_buckets = setup.cached.traffic_rates(60.0)
    base_minute = min([*cache_buckets, *other_buckets])
    minutes = range(base_minute, base_minute + int(DURATION // 60))
    table = Table(
        ["minute", "cache MiB/min", "non-cache MiB/min"],
        title="Figure 13 -- per-minute read rates in one DataNode",
    )
    for minute in list(minutes)[::6]:  # every 6th minute keeps the report compact
        table.add_row([
            minute - base_minute,
            f"{cache_buckets.get(minute, 0) / MIB:.1f}",
            f"{other_buckets.get(minute, 0) / MIB:.1f}",
        ])
    total_cache = sum(cache_buckets.values())
    total_other = sum(other_buckets.values())
    share = total_cache / (total_cache + total_other)
    # steady-state per-minute ratio (skip the 10-minute warm-up)
    steady = [m for m in minutes if m - base_minute >= 10]
    ratios = [
        cache_buckets.get(m, 0) / max(other_buckets.get(m, 1), 1) for m in steady
    ]
    mean_ratio = float(np.mean(ratios))
    table.add_row(["total share", pct(share), f"ratio {mean_ratio:.1f}x"])
    emit_report("fig13_cache_read_rates", table.render())

    # the paper's two headline claims:
    assert share > 0.70  # >70% of read bytes from the cache
    assert 2.0 <= mean_ratio <= 5.0  # cache rate ~threefold non-cache rate