"""Shared Presto-cluster harness for the TPC-DS and production benches.

The paper's Presto evaluations compare two configurations:

- **non-cache read**: workers fetch every byte from remote storage
  (Figure 9's "without cache" bars);
- **warm cache**: the Alluxio local cache enabled and pre-loaded ("data is
  pre-loaded into the cache").

``run_cold_vs_warm`` builds one cluster per configuration on the same
catalog/source and returns per-query wall times plus the warm cluster's
runtime stats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.presto import PrestoCluster
from repro.presto.query import QueryProfile
from repro.workload.tpcds import build_tpcds_catalog_fast

MIB = 1024 * 1024


@dataclass(slots=True)
class ColdWarmResult:
    """Per-query wall seconds for both configurations."""

    query_ids: list[str]
    cold_walls: list[float]
    warm_walls: list[float]
    warm_cluster: PrestoCluster
    cold_cluster: PrestoCluster

    def reductions(self) -> list[float]:
        return [
            (cold - warm) / cold if cold > 0 else 0.0
            for cold, warm in zip(self.cold_walls, self.warm_walls)
        ]


def make_cluster(*, cache_enabled: bool, total_bytes: int = 128 * MIB,
                 n_workers: int = 4, **kwargs) -> PrestoCluster:
    catalog, source = build_tpcds_catalog_fast(total_bytes)
    return PrestoCluster.create(
        catalog,
        source,
        n_workers=n_workers,
        cache_capacity_bytes=kwargs.pop("cache_capacity_bytes", 96 * MIB),
        page_size=kwargs.pop("page_size", 1 * MIB),
        target_split_size=kwargs.pop("target_split_size", 8 * MIB),
        cache_enabled=cache_enabled,
        metadata_cache_enabled=cache_enabled,
        **kwargs,
    )


def calibrate_compute_tails(
    queries: list[QueryProfile],
    *,
    band: tuple[float, float] = (0.10, 0.30),
    seed: int = 7,
    **cluster_kwargs,
) -> list[QueryProfile]:
    """Set each query's compute tail so its I/O share lands in ``band``.

    The paper does not publish per-query CPU costs; what Figure 9 encodes
    is each query's *I/O share* -- the fraction of execution the warm cache
    can remove, reported as ~10-30 %.  We measure each query's cold scan
    wall on a non-cache cluster, then size the downstream compute so the
    I/O share matches a per-query draw from the published band.  What the
    benchmark then verifies is the non-trivial part: that the warm cache
    actually eliminates almost all of that I/O time, query by query.
    """
    from repro.sim.rng import RngStream

    probe = make_cluster(cache_enabled=False, **cluster_kwargs)
    calibrated: list[QueryProfile] = []
    for query in queries:
        scan_only = QueryProfile(
            query_id=query.query_id, scans=query.scans, compute_seconds=0.0
        )
        io_wall = probe.coordinator.run_query(scan_only).wall_seconds
        share = RngStream(seed, f"calib/{query.query_id}").rng.uniform(*band)
        compute = io_wall * (1.0 / share - 1.0)
        calibrated.append(
            QueryProfile(
                query_id=query.query_id, scans=query.scans,
                compute_seconds=float(compute),
            )
        )
    return calibrated


def run_cold_vs_warm(queries: list[QueryProfile], **cluster_kwargs) -> ColdWarmResult:
    """Run the query set on a non-cache cluster and a pre-warmed cache
    cluster (the Figure 9 protocol)."""
    cold_cluster = make_cluster(cache_enabled=False, **cluster_kwargs)
    warm_cluster = make_cluster(cache_enabled=True, **cluster_kwargs)
    warm_cluster.coordinator.run_queries(queries)  # pre-load the cache
    cold = cold_cluster.coordinator.run_queries(queries)
    warm = warm_cluster.coordinator.run_queries(queries)
    return ColdWarmResult(
        query_ids=[q.query_id for q in queries],
        cold_walls=[r.wall_seconds for r in cold],
        warm_walls=[r.wall_seconds for r in warm],
        warm_cluster=warm_cluster,
        cold_cluster=cold_cluster,
    )
