"""Section 7 ablation: cache page size -- read amplification vs requests.

"A larger cache page size, while reducing the number of read requests to
remote storage, increases read amplification.  Conversely, smaller cache
page sizes reduce data fetched but increase the metadata memory footprint
and the number of storage requests. ... a cache page size of 1 MB strikes
an optimal balance."

We replay the paper's fragmented-read distribution (>50 % of reads <10 KB)
through caches sized at 25 % of the dataset (so eviction makes wasted
prefetch real) with page sizes from 64 KiB to 64 MiB.  The combined cost
is the total modelled remote I/O time -- per-request overhead plus
bandwidth -- which is exactly the API-cost vs bandwidth-cost trade the
paper describes; it is U-shaped with its minimum at 1 MiB.
"""

import numpy as np
import pytest

from harness import emit_report
from repro.analysis import Table, format_bytes
from repro.core import CacheConfig, LocalCacheManager
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.fragments import FragmentedReadGenerator

KIB = 1024
MIB = 1024 * KIB
PAGE_SIZES = [64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB]
FILE_SIZE = 64 * MIB
N_FILES = 24
N_READS = 6_000
CACHE_FRACTION = 0.25
BASE_LATENCY = 0.03
BANDWIDTH = 120e6


def run_experiment():
    rng = RngStream(9, "page-size")
    generator = FragmentedReadGenerator(rng.child("sizes"))
    file_ids = [f"wh/t/part-{i}" for i in range(N_FILES)]
    # Zipf-shaped file popularity, matching the skew of Section 2.2
    popularity = 1.0 / (1.0 + np.arange(N_FILES)) ** 1.2
    requests = generator.requests(
        N_READS, file_ids, FILE_SIZE, popularity=popularity
    )
    results = []
    for page_size in PAGE_SIZES:
        source = NullDataSource(base_latency=BASE_LATENCY, bandwidth=BANDWIDTH)
        for file_id in file_ids:
            source.add_file(file_id, FILE_SIZE)
        cache = LocalCacheManager(
            CacheConfig.small(
                int(N_FILES * FILE_SIZE * CACHE_FRACTION), page_size=page_size
            )
        )
        requested_bytes = 0
        for request in requests:
            cache.read(request.file_id, request.offset, request.length, source)
            requested_bytes += request.length
        remote_latency = (
            source.request_count * BASE_LATENCY + source.bytes_served / BANDWIDTH
        )
        results.append(
            {
                "page_size": page_size,
                "remote_requests": source.request_count,
                "amplification": source.bytes_served / requested_bytes,
                "remote_latency": remote_latency,
                "hit_ratio": cache.metrics.hit_ratio,
            }
        )
    return results


@pytest.mark.benchmark(group="ablation_page_size")
def test_ablation_page_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["page size", "remote requests", "read amplification",
         "total remote I/O (s)", "hit ratio"],
        title="Section 7 -- page size: requests vs read amplification",
    )
    for r in results:
        table.add_row(
            [
                format_bytes(r["page_size"]),
                r["remote_requests"],
                f"{r['amplification']:.2f}x",
                f"{r['remote_latency']:.1f}",
                f"{r['hit_ratio']:.2f}",
            ]
        )
    emit_report("ablation_page_size", table.render())

    by_size = {r["page_size"]: r for r in results}
    # the two monotone arms of the trade-off, as Section 7 states:
    for small, large in zip(PAGE_SIZES, PAGE_SIZES[1:]):
        assert (
            by_size[small]["remote_requests"] >= by_size[large]["remote_requests"]
        )
        assert by_size[small]["amplification"] <= by_size[large]["amplification"]
    # and the paper's conclusion: 1 MiB minimizes the combined cost
    best = min(results, key=lambda r: r["remote_latency"])
    assert best["page_size"] == 1 * MIB
    assert by_size[1 * MIB]["remote_latency"] < by_size[64 * KIB]["remote_latency"]
    assert by_size[1 * MIB]["remote_latency"] < by_size[64 * MIB]["remote_latency"]
