"""Table 1: production traffic of Uber's HDFS clusters.

Paper cells (four DataNodes over ~20 h):

    Total reads (M)        13.5    12.8     8.5    14.3
    Total writes (K)        3.3     4.7     4.6      45
    Reads / writes       4091.0  2723.4  1847.8   317.8
    Top-10K-block share     89%     94%     99%     99%

We regenerate the table from calibrated Zipfian traces, scaled down 100x in
volume (ratios and concentration targets preserved exactly).
"""

import pytest

from harness import emit_report, pct
from repro.analysis import Table
from repro.sim.rng import RngStream
from repro.workload.traces import TraceGenerator, stats_of, table1_hosts

PAPER_RATIOS = {"host1": 4091.0, "host2": 2723.4, "host3": 1847.8, "host4": 317.8}
PAPER_SHARES = {"host1": 0.89, "host2": 0.94, "host3": 0.99, "host4": 0.99}
SCALE = 0.01


def run_experiment():
    root = RngStream(2024, "table1")
    rows = []
    for spec in table1_hosts(scale=SCALE):
        trace = TraceGenerator(spec, root.child(spec.name)).generate()
        stats = stats_of(trace)
        rows.append(
            {
                "host": spec.name,
                "reads": stats.total_reads,
                "writes": stats.total_writes,
                "ratio": stats.read_write_ratio,
                "share": stats.top_k_share(spec.top_k),
                "top_k": spec.top_k,
            }
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_hdfs_traffic(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["host", "reads", "writes", "reads/writes", "top-K share",
         "paper ratio", "paper share"],
        title=f"Table 1 -- HDFS DataNode traffic (scaled {SCALE:g}x)",
    )
    for row in rows:
        table.add_row(
            [
                row["host"],
                row["reads"],
                row["writes"],
                f"{row['ratio']:.1f}",
                pct(row["share"]),
                f"{PAPER_RATIOS[row['host']]:.1f}",
                pct(PAPER_SHARES[row["host"]]),
            ]
        )
    emit_report("table1_hdfs_traffic", table.render())

    for row in rows:
        # scaled volumes keep the published read/write ratio
        assert row["ratio"] == pytest.approx(PAPER_RATIOS[row["host"]], rel=0.05)
        # hot-spot concentration lands on the published share
        assert row["share"] == pytest.approx(PAPER_SHARES[row["host"]], abs=0.03)
    # the qualitative claim: read-dominated, heavily concentrated traffic
    assert all(row["ratio"] > 100 for row in rows)
    assert all(row["share"] >= 0.85 for row in rows)
