"""Figure 14 on the event kernel: blocked processes from *measured* occupancy.

The analytic Figure 14 bench derives queue waits from channel bookkeeping;
this smoke runs the same protocol (shortened) on the process-based kernel,
where every block read is a live process queueing at the HDD's FIFO
resource, and compares the two engines side by side.  The shape assertion
is the paper's: disabling the cache makes blocked processes jump by
multiples.  The comparison table is the CI artifact.
"""

import numpy as np
import pytest

from harness import REPORT_DIR, emit_report, pct
from hdfs_harness import MIB, build_datanode, replay_trace
from repro.analysis import Table, reduction
from repro.obs.profiler import KernelProfiler
from repro.sim.kernel import SimMode

DURATION = 10 * 60.0
DISABLE_AT = 5 * 60.0
READS_PER_SECOND = 80.0
WRITES_PER_SECOND = 5.0


def run_mode(mode: SimMode, *, profile: bool = False):
    profilers = []
    setup = build_datanode(
        cache_capacity_bytes=12 * MIB, admission_threshold=3, mode=mode,
        profiler_factory=(
            (lambda clock: profilers.append(KernelProfiler(clock)) or profilers[-1])
            if profile else None
        ),
    )
    replay_trace(
        setup,
        duration_seconds=DURATION,
        reads_per_second=READS_PER_SECOND,
        zipf_s=1.15,
        disable_cache_at=DISABLE_AT,
        writes_per_second=WRITES_PER_SECOND,
    )
    if profile and profilers:
        # the README flamegraph walkthrough renders this artifact:
        #   repro-perf-viz speedscope bench_reports/fig14_kernel_profile.folded
        profile_doc = profilers[0].finalize()
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / "fig14_kernel_profile.folded").write_text(
            profile_doc.folded_wait_states() + "\n", encoding="utf-8"
        )
        # per-process rows dropped: one row per replayed block read would
        # be ~20 MB of artifact for no flamegraph value
        (REPORT_DIR / "fig14_kernel_profile.json").write_text(
            profile_doc.to_json(include_host=True, include_processes=False)
            + "\n", encoding="utf-8"
        )
    blocked = setup.datanode.device.blocked_per_bucket(60.0)
    base = min(blocked) if blocked else 0
    return [blocked.get(base + minute, 0) for minute in range(int(DURATION // 60))]


@pytest.mark.benchmark(group="fig14")
def test_fig14_kernel_smoke(benchmark):
    kernel_series = benchmark.pedantic(
        lambda: run_mode(SimMode.KERNEL, profile=True), rounds=1, iterations=1
    )
    analytic_series = run_mode(SimMode.ANALYTIC)

    disable_minute = int(DISABLE_AT // 60)
    table = Table(
        ["minute", "blocked (kernel)", "blocked (analytic)"],
        title="Figure 14 smoke -- kernel (measured occupancy) vs analytic",
    )
    for minute in range(len(kernel_series)):
        table.add_row([minute, kernel_series[minute], analytic_series[minute]])

    def steady(series):
        with_cache = series[1:disable_minute]
        without_cache = series[disable_minute + 1:]
        return float(np.mean(with_cache)), float(np.mean(without_cache))

    kernel_with, kernel_without = steady(kernel_series)
    analytic_with, analytic_without = steady(analytic_series)
    kernel_cut = reduction(kernel_without, kernel_with)
    table.add_row(["mean (cache on)", f"{kernel_with:.0f}", f"{analytic_with:.0f}"])
    table.add_row(
        ["mean (cache off)", f"{kernel_without:.0f}", f"{analytic_without:.0f}"]
    )
    table.add_row(["kernel reduction", pct(kernel_cut), ""])
    emit_report("fig14_kernel_smoke", table.render())

    # the paper's shape, from live queue depth: cached blocked processes
    # are a small fraction of uncached
    assert kernel_without > 4 * kernel_with
    assert 0.5 <= kernel_cut <= 0.99
    # both engines agree the cache removes most of the blocking
    analytic_cut = reduction(analytic_without, analytic_with)
    assert abs(kernel_cut - analytic_cut) < 0.2
