"""Benchmark-suite pytest config: importability + mandatory SimClock.

The benchmarks share helpers in ``benchmarks/harness.py``; adding the
directory to ``sys.path`` keeps ``from harness import ...`` working no
matter where pytest is invoked from.

The autouse fixture below makes SimClock injection *mandatory* for every
benchmark: the module time source that stamps ``PageInfo`` objects built
without an explicit ``created_at`` is replaced by a guard that raises, so
a scenario that would silently mix wall-clock timestamps into virtual
time fails loudly instead.  Scenarios install their own clock with
``installed_time_source(clock.now)`` (see ``test_chaos_soak.run_soak``),
which scopes over the guard and restores it on exit.
"""

import sys
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
for path in (str(_HERE), str(_HERE.parent / "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.core import page  # noqa: E402  (needs the sys.path fix above)


def _wall_clock_forbidden() -> float:
    raise RuntimeError(
        "benchmark read the wall clock: simulation entry points must "
        "inject a SimClock -- wrap the scenario in "
        "installed_time_source(clock.now) (determinism invariant DET001)"
    )


@pytest.fixture(autouse=True)
def _mandatory_sim_clock():
    page.set_time_source(_wall_clock_forbidden)
    try:
        yield
    finally:
        page.reset_time_source()
