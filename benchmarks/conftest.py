"""Benchmark-suite pytest config: make the repo root importable.

The benchmarks share helpers in ``benchmarks/harness.py``; adding the
directory to ``sys.path`` keeps ``from harness import ...`` working no
matter where pytest is invoked from.
"""

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for path in (str(_HERE), str(_HERE.parent / "src")):
    if path not in sys.path:
        sys.path.insert(0, path)
