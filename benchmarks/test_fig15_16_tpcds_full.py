"""Figures 15 and 16 (Appendix A): the full TPC-DS run, Q1-Q99.

Same protocol as Figure 9, extended to all 99 queries: Figure 15 covers
Q1-Q49, Figure 16 covers Q50-Q99.
"""

import numpy as np
import pytest

from harness import emit_report, pct
from presto_harness import calibrate_compute_tails, run_cold_vs_warm
from repro.analysis import Table
from repro.workload.tpcds import tpcds_queries


def run_experiment():
    return run_cold_vs_warm(calibrate_compute_tails(tpcds_queries()))


@pytest.mark.benchmark(group="fig15_16")
def test_fig15_16_tpcds_full(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    reductions = result.reductions()

    for figure, lo, hi in (("fig15", 1, 49), ("fig16", 50, 99)):
        table = Table(
            ["query", "non-cache (s)", "warm cache (s)", "reduction"],
            title=f"Figure {figure[3:]} -- TPC-DS Q{lo}-Q{hi} execution time",
        )
        for qid, cold, warm, reduction in zip(
            result.query_ids, result.cold_walls, result.warm_walls, reductions
        ):
            number = int(qid[1:])
            if lo <= number <= hi:
                table.add_row([qid, f"{cold:.3f}", f"{warm:.3f}", pct(reduction)])
        emit_report(f"{figure}_tpcds_full", table.render())

    mean_reduction = float(np.mean(reductions))
    summary = (
        f"TPC-DS Q1-Q99 summary: mean reduction {pct(mean_reduction)}, "
        f"median {pct(float(np.median(reductions)))}, "
        f"min {pct(min(reductions))}, max {pct(max(reductions))}, "
        f"warm hit ratio "
        f"{result.warm_cluster.coordinator.cluster_hit_ratio():.3f}"
    )
    emit_report("fig15_16_summary", summary)

    # every query benefits, with the aggregate in the paper's band
    assert all(r > 0 for r in reductions)
    assert 0.08 <= mean_reduction <= 0.40
    # at least three quarters of queries land within a generous 5-45% band
    in_band = sum(1 for r in reductions if 0.05 <= r <= 0.45)
    assert in_band / len(reductions) >= 0.75
