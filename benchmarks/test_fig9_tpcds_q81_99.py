"""Figure 9: TPC-DS Query 81-99 execution time, with vs without cache.

The paper: "a reduction in query execution times of Query 81 to Query 99,
ranging from approximately 10% to 30% when data is pre-loaded into the
cache" (TPC-DS SF100, Parquet on S3, 4 workers).
"""

import numpy as np
import pytest

from harness import emit_report, pct
from presto_harness import calibrate_compute_tails, run_cold_vs_warm
from repro.analysis import Table
from repro.workload.tpcds import tpcds_queries


def run_experiment():
    queries = [q for q in tpcds_queries() if 81 <= int(q.query_id[1:]) <= 99]
    return run_cold_vs_warm(calibrate_compute_tails(queries))


@pytest.mark.benchmark(group="fig9")
def test_fig9_tpcds_q81_99(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    reductions = result.reductions()
    table = Table(
        ["query", "non-cache (s)", "warm cache (s)", "reduction"],
        title="Figure 9 -- TPC-DS Q81-Q99 execution time (paper: ~10-30% faster)",
    )
    for qid, cold, warm, reduction in zip(
        result.query_ids, result.cold_walls, result.warm_walls, reductions
    ):
        table.add_row([qid, f"{cold:.3f}", f"{warm:.3f}", pct(reduction)])
    table.add_row(
        ["mean", f"{np.mean(result.cold_walls):.3f}",
         f"{np.mean(result.warm_walls):.3f}", pct(float(np.mean(reductions)))]
    )
    emit_report("fig9_tpcds_q81_99", table.render())

    # shape: the warm cache wins on every query
    assert all(r > 0 for r in reductions)
    # and the typical speedup sits in the paper's ~10-30% band
    mean_reduction = float(np.mean(reductions))
    assert 0.08 <= mean_reduction <= 0.40
    assert 0.05 <= float(np.median(reductions)) <= 0.40
    # the warm cluster served the bulk of pages locally
    assert result.warm_cluster.coordinator.cluster_hit_ratio() > 0.45
