"""Figure 14: blocked processes (I/O throttling) with and without the cache.

The paper: "Upon disabling the cache at timestamp 70, there is a rapid
increase in blocked processes, reaching up to approximately five thousand.
During this one-hour period, the local cache reduces the number of blocked
processes by an average of 86%."

We replay a saturating read trace against one DataNode whose HDD is the
bottleneck; the cache is switched off 70 minutes in.  Blocked processes are
requests that found the HDD's only channel busy (processes in
uninterruptible sleep on the real node), bucketed per minute.
"""

import numpy as np
import pytest

from harness import emit_report, pct
from hdfs_harness import MIB, build_datanode, replay_trace
from repro.analysis import Table, reduction

DURATION = 130 * 60.0
DISABLE_AT = 70 * 60.0
READS_PER_SECOND = 80.0
WRITES_PER_SECOND = 5.0  # background ingest the cache cannot absorb


def run_experiment():
    setup = build_datanode(cache_capacity_bytes=12 * MIB, admission_threshold=3)
    replay_trace(
        setup,
        duration_seconds=DURATION,
        reads_per_second=READS_PER_SECOND,
        zipf_s=1.15,
        disable_cache_at=DISABLE_AT,
        writes_per_second=WRITES_PER_SECOND,
    )
    return setup


@pytest.mark.benchmark(group="fig14")
def test_fig14_blocked_processes(benchmark):
    setup = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    blocked = setup.datanode.device.blocked_per_bucket(60.0)
    base_minute = min(blocked) if blocked else 0
    series = {}
    for minute in range(int(DURATION // 60)):
        series[minute] = blocked.get(base_minute + minute, 0)

    table = Table(
        ["minute", "blocked processes"],
        title="Figure 14 -- blocked processes per minute (cache off at t=70)",
    )
    for minute in range(0, int(DURATION // 60), 10):
        table.add_row([minute, series[minute]])

    disable_minute = int(DISABLE_AT // 60)
    # steady-state windows on each side (skip warm-up and the transition)
    with_cache = [series[m] for m in range(10, disable_minute)]
    without_cache = [series[m] for m in range(disable_minute + 2, len(series))]
    mean_with = float(np.mean(with_cache))
    mean_without = float(np.mean(without_cache))
    cut = reduction(mean_without, mean_with)
    table.add_row(["mean (cache on)", f"{mean_with:.0f}"])
    table.add_row(["mean (cache off)", f"{mean_without:.0f}"])
    table.add_row(["reduction", f"{pct(cut)} (paper: 86%)"])
    emit_report("fig14_blocked_processes", table.render())

    # shape: disabling the cache causes a rapid, large increase
    assert mean_without > 4 * mean_with
    # the cache cuts blocked processes by roughly the paper's 86%
    assert 0.70 <= cut <= 0.99
    # magnitude: around five thousand blocked processes per minute at peak
    assert 3000 < max(series.values()) < 9000