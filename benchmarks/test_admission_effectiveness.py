"""Section 5.1's two admission-effectiveness claims.

1. Presto local cache with static filter rules: "At Uber, after such
   filtering, less than 10% of requests require remote storage access."
2. HDFS local cache with sliding-window admission: "For the requests which
   fulfill the admission policy, only around 1% of them require slower
   storage access."
"""

import pytest

from harness import emit_report, pct
from repro.analysis import Table
from repro.core import CacheConfig, CacheScope, LocalCacheManager
from repro.core.admission import BucketTimeRateLimit, FilterAdmissionPolicy
from repro.sim.clock import SimClock
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.zipf import ZipfSampler

KIB = 1024
MIB = 1024 * KIB


def run_presto_filter_experiment():
    """Zipfian requests against filtered tables; onboarded tables cached."""
    source = NullDataSource(base_latency=0.004)
    n_tables, files_per_table = 20, 8
    file_ids, scopes = [], []
    for t in range(n_tables):
        for f in range(files_per_table):
            file_id = f"wh/table_{t:02d}/part-{f}"
            source.add_file(file_id, 4 * MIB)
            file_ids.append(file_id)
            scopes.append(CacheScope.for_partition("wh", f"table_{t:02d}", "ds=0"))
    # platform owners onboard the hot tables (the paper's static rules)
    rules = [{"table": f"wh.table_{t:02d}"} for t in range(10)]
    cache = LocalCacheManager(
        CacheConfig.small(256 * MIB, page_size=1 * MIB),
        admission=FilterAdmissionPolicy.from_json(rules),
    )
    rng = RngStream(5, "admission/presto")
    # requests are Zipf over files, and the hot (onboarded) tables receive
    # the overwhelming share of traffic -- that is why they were onboarded
    sampler = ZipfSampler(len(file_ids), 1.4, rng)
    remote_requests = 0
    total = 20_000
    for pick in sampler.sample(total):
        index = int(pick)
        result = cache.read(
            file_ids[index], 0, 64 * KIB, source, scope=scopes[index]
        )
        if result.bytes_from_remote > 0:
            remote_requests += 1
    return remote_requests / total


def run_hdfs_rate_limit_experiment():
    """Sliding-window admission: of admitted requests, how many still go
    to slow storage?"""
    source = NullDataSource(base_latency=0.004)
    n_blocks = 2000
    for b in range(n_blocks):
        source.add_file(f"blk_{b}", 1 * MIB)
    clock = SimClock()
    limiter = BucketTimeRateLimit(threshold=4, window_buckets=10)
    cache = LocalCacheManager(
        CacheConfig.small(512 * MIB, page_size=256 * KIB), clock=clock
    )
    rng = RngStream(6, "admission/hdfs")
    sampler = ZipfSampler(n_blocks, 1.2, rng)
    total = 40_000
    admitted = 0
    admitted_with_remote = 0
    picks = sampler.sample(total)
    times = rng.child("times").rng.random(total) * 3600.0
    times.sort()
    for i in range(total):
        clock.advance_to(float(times[i]))
        block = f"blk_{int(picks[i])}"
        if not limiter.record_and_check(block, clock.now()):
            continue  # non-cache path; not an admitted request
        admitted += 1
        result = cache.read(block, 0, 128 * KIB, source)
        if result.bytes_from_remote > 0:
            admitted_with_remote += 1
    return admitted_with_remote / admitted, admitted / total


def run_experiment():
    presto_remote_fraction = run_presto_filter_experiment()
    hdfs_slow_fraction, hdfs_admit_fraction = run_hdfs_rate_limit_experiment()
    return presto_remote_fraction, hdfs_slow_fraction, hdfs_admit_fraction


@pytest.mark.benchmark(group="admission")
def test_admission_effectiveness(benchmark):
    presto_remote, hdfs_slow, hdfs_admitted = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = Table(
        ["claim", "measured", "paper"],
        title="Section 5.1 -- admission strategy effectiveness",
    )
    table.add_row(["Presto filters: requests needing remote",
                   pct(presto_remote), "<10%"])
    table.add_row(["HDFS rate limit: admitted requests hitting slow storage",
                   pct(hdfs_slow), "~1%"])
    table.add_row(["HDFS rate limit: fraction of requests admitted",
                   pct(hdfs_admitted), "-"])
    emit_report("admission_effectiveness", table.render())

    assert presto_remote < 0.10
    assert hdfs_slow < 0.03
    # the rate limiter must actually filter (not admit everything)
    assert hdfs_admitted < 0.95
