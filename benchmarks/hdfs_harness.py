"""Shared harness for the HDFS DataNode benches (Figures 13 and 14).

One DataNode serving a Zipfian block-read trace:

- the node's HDD is the dense, bandwidth-starved SKU of Section 2.2 (its
  single channel is where blocked processes pile up);
- the embedded local cache (SSD) admits hot blocks through
  ``BucketTimeRateLimit``;
- the replay advances the virtual clock to each access's timestamp, so
  device queueing, rate-limiter windows, and per-minute series are all
  physically consistent.

Volumes are scaled far below production (32 KiB blocks instead of 128 MiB)
so the simulation holds the cached bytes in memory; the *rates* are chosen
to put the HDD just past saturation without the cache, which is the regime
both figures measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import BucketTimeRateLimit
from repro.hdfs_cache import CachedDataNode
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, SimMode, Timeout
from repro.sim.rng import RngStream
from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.hdfs import Block, BlockId, DataNode
from repro.workload.zipf import ZipfSampler

KIB = 1024
MIB = 1024 * KIB

BLOCK_SIZE = 32 * KIB
N_BLOCKS = 1200

# A deliberately bandwidth-starved HDD: dense capacity, one actuator.
HDD = DeviceProfile(
    name="dense-hdd", read_bandwidth=60e6, write_bandwidth=50e6,
    seek_latency=0.020, channels=1,
)


@dataclass(slots=True)
class DataNodeSetup:
    clock: SimClock
    datanode: DataNode
    cached: CachedDataNode
    kernel: Kernel | None = None


@dataclass(slots=True)
class ReplayStats:
    """What one trace replay observed (for mode-equivalence checks)."""

    latencies: list[float]
    cache_hits: int = 0

    @property
    def reads(self) -> int:
        return len(self.latencies)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.reads if self.reads else 0.0


def build_datanode(
    *, cache_capacity_bytes: int = 8 * MIB,
    admission_threshold: int = 3,
    seed: int = 2024,
    mode: SimMode = SimMode.ANALYTIC,
    profiler_factory=None,
) -> DataNodeSetup:
    """A DataNode pre-loaded with N_BLOCKS finalized blocks.

    With ``mode=SimMode.KERNEL`` the node is bound to an event kernel:
    replayed reads run as concurrent processes that queue at the HDD/SSD
    for real, and blocked-process counts come from measured occupancy.
    ``profiler_factory(clock)`` (kernel mode only) builds a scheduler
    profiler on the setup's clock and attaches it before any spawn.
    """
    clock = SimClock()
    device = StorageDevice(HDD, clock)
    datanode = DataNode("dn-bench", device=device, clock=clock)
    payload = b"\x5a" * BLOCK_SIZE
    for block_id in range(N_BLOCKS):
        datanode.store_block(Block(identity=BlockId(block_id, 1), data=payload))
    # ingest happened "before" the measurement window
    clock.advance(3600.0)
    device.reset_stats()
    cached = CachedDataNode(
        datanode,
        clock=clock,
        cache_capacity_bytes=cache_capacity_bytes,
        page_size=64 * KIB,
        rate_limiter=BucketTimeRateLimit(
            threshold=admission_threshold, window_buckets=10
        ),
    )
    kernel = None
    if mode is SimMode.KERNEL:
        kernel = Kernel(clock)
        if profiler_factory is not None:
            kernel.attach_profiler(profiler_factory(clock))
        cached.attach_kernel(kernel)
    return DataNodeSetup(
        clock=clock, datanode=datanode, cached=cached, kernel=kernel
    )


def replay_trace(
    setup: DataNodeSetup,
    *,
    duration_seconds: float,
    reads_per_second: float,
    zipf_s: float = 1.1,
    seed: int = 7,
    disable_cache_at: float | None = None,
    writes_per_second: float = 0.0,
    write_size: int = 2 * MIB,
) -> ReplayStats:
    """Replay a Zipfian read trace against the cached DataNode.

    ``disable_cache_at`` switches the cache off mid-replay (the Figure 14
    protocol: "upon disabling the cache at timestamp 70...").
    ``writes_per_second`` adds background ingest writes to the HDD -- load
    the cache cannot absorb, which is why production DataNodes keep a
    residual blocked-process floor even with the cache on.  Timestamps are
    relative to the replay start.

    When the setup was built with ``mode=SimMode.KERNEL`` each access is a
    kernel process spawned at its arrival time: reads (and background
    writes) overlap, queue FIFO at the devices, and their latencies are
    *measured* rather than summed.  The trace itself -- block ids,
    arrival times, sizes, offsets -- is bit-identical across both modes.
    """
    rng = RngStream(seed, "hdfs-trace")
    n_reads = int(duration_seconds * reads_per_second)
    n_writes = int(duration_seconds * writes_per_second)
    sampler = ZipfSampler(N_BLOCKS, zipf_s, rng.child("blocks"))
    blocks = sampler.sample(n_reads)
    read_times = rng.child("arrivals").rng.random(n_reads) * duration_seconds
    write_times = rng.child("writes").rng.random(n_writes) * duration_seconds
    sizes = rng.child("sizes").rng.lognormal(9.3, 0.8, size=n_reads)  # ~11KiB median
    events = sorted(
        [(float(t), "r", i) for i, t in enumerate(read_times)]
        + [(float(t), "w", i) for i, t in enumerate(write_times)]
    )
    start = setup.clock.now()
    stats = ReplayStats(latencies=[])
    if setup.kernel is not None:
        _replay_kernel(
            setup, events, start, stats,
            rng=rng, sizes=sizes, blocks=blocks,
            disable_cache_at=disable_cache_at, write_size=write_size,
        )
        return stats
    disabled = False
    for t, kind, i in events:
        setup.clock.advance_to(start + t)
        if disable_cache_at is not None and not disabled and t >= disable_cache_at:
            setup.cached.set_enabled(False)
            disabled = True
        if kind == "w":
            setup.datanode.device.write(write_size)
            continue
        size = int(min(max(sizes[i], 1024), BLOCK_SIZE))
        identity = BlockId(int(blocks[i]), 1)
        offset = 0 if size >= BLOCK_SIZE else int(
            rng.rng.integers(0, BLOCK_SIZE - size)
        )
        result = setup.cached.read_block(identity, offset, size)
        stats.latencies.append(result.latency)
        if result.from_cache:
            stats.cache_hits += 1
    return stats


def _replay_kernel(
    setup: DataNodeSetup,
    events: list[tuple[float, str, int]],
    start: float,
    stats: ReplayStats,
    *,
    rng: RngStream,
    sizes,
    blocks,
    disable_cache_at: float | None,
    write_size: int,
) -> None:
    """Drive the trace through the event kernel.

    A single driver process walks the sorted events, sleeping between
    arrivals and spawning one process per access -- so only in-flight
    accesses hold memory, and offset draws happen in the same order as the
    analytic loop (the traces match exactly).
    """
    kernel = setup.kernel

    def read_proc(identity: BlockId, offset: int, size: int):
        result = yield from setup.cached.read_block_proc(identity, offset, size)
        stats.latencies.append(result.latency)
        if result.from_cache:
            stats.cache_hits += 1

    def write_proc():
        yield from setup.datanode.device.write_proc(write_size)

    def driver():
        disabled = False
        for t, kind, i in events:
            target = start + t
            now = setup.clock.now()
            if target > now:
                yield Timeout(target - now)
            if (
                disable_cache_at is not None
                and not disabled
                and t >= disable_cache_at
            ):
                setup.cached.set_enabled(False)
                disabled = True
            if kind == "w":
                kernel.spawn(write_proc(), name=f"ingest-write/{i}")
                continue
            size = int(min(max(sizes[i], 1024), BLOCK_SIZE))
            identity = BlockId(int(blocks[i]), 1)
            offset = 0 if size >= BLOCK_SIZE else int(
                rng.rng.integers(0, BLOCK_SIZE - size)
            )
            kernel.spawn(
                read_proc(identity, offset, size), name=f"block-read/{i}"
            )

    kernel.spawn(driver(), name="trace-driver")
    kernel.run()
