"""Figure 2: popularity rank vs Zipfian distribution on a Presto node.

The paper plots file-access frequency against popularity rank on log-log
axes and reports a Zipfian factor of up to 1.39.  We sample accesses from
Zipf(1.39) over a file catalog, re-fit the exponent from the observed
rank-frequency curve, and check the fit recovers the factor with a strong
log-log linear fit.
"""

import numpy as np
import pytest

from harness import emit_report
from repro.analysis import Table
from repro.sim.rng import RngStream
from repro.workload.zipf import ZipfSampler, fit_zipf_exponent

PAPER_FACTOR = 1.39
N_FILES = 20_000
N_ACCESSES = 500_000


def run_experiment():
    sampler = ZipfSampler(N_FILES, PAPER_FACTOR, RngStream(2024, "fig2"))
    samples = sampler.sample(N_ACCESSES)
    counts = np.bincount(samples, minlength=N_FILES)
    fit = fit_zipf_exponent(counts, min_count=3)
    ranked = np.sort(counts)[::-1]
    return fit, ranked


@pytest.mark.benchmark(group="fig2")
def test_fig2_zipf_popularity(benchmark):
    fit, ranked = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["popularity rank", "access count"],
        title=(
            f"Figure 2 -- rank-frequency of file accesses "
            f"(fitted s={fit.s:.3f}, paper s=1.39, R^2={fit.r_squared:.4f})"
        ),
    )
    for rank in (1, 3, 10, 30, 100, 300, 1000, 3000, 10000):
        if rank <= ranked.size:
            table.add_row([rank, int(ranked[rank - 1])])
    emit_report("fig2_zipf_popularity", table.render())

    # the fitted exponent recovers the paper's Zipfian factor
    assert fit.s == pytest.approx(PAPER_FACTOR, abs=0.15)
    # and the distribution is genuinely Zipf-like (log-log linear)
    assert fit.r_squared > 0.95
    # heavy skew: the top 1% of files carry the majority of accesses
    top_1pct = int(ranked[: N_FILES // 100].sum())
    assert top_1pct / N_ACCESSES > 0.5
