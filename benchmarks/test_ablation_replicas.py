"""Section 7 ablation: cache replica count with remote fallback.

"Increasing the number of replicas can alleviate pressure on hot spots but
may inadvertently lead to increased latency in locating an unoccupied cache
node.  In practice ... we adopted a strategy that limits the number of
cache replicas to a maximum of two.  In cases where both replicas are
unavailable ... the system defaults to retrieving data from remote storage.
This hybrid approach ... has demonstrated greater robustness and lower
latency in practice compared to simply increasing the number of replicas."

A hot-spot workload (Zipf tables, multi-split hot files) on an 8-worker
cluster.  The experiment shows exactly the paper's two findings:

1. going from one replica to two relieves the hot spot (fewer forced
   remote fallbacks, lower scan latency), and
2. going past two buys essentially nothing -- the second replica already
   absorbs the spill -- while every extra replica adds occupancy-probe
   work to hot-file scheduling.
"""

import numpy as np
import pytest

from harness import emit_report, pct
from production_harness import MIB, build_production_catalog, production_stream
from repro.analysis import Table
from repro.presto import PrestoCluster

REPLICA_COUNTS = [1, 2, 4, 8]
WARMUP = 80
PROBE_LATENCY = 0.01


def run_one(max_replicas: int):
    # multi-split files (8 MiB files, 2 MiB splits) concentrate a hot
    # file's splits on its ring worker, so the busy threshold actually
    # forces spill across the replica set
    catalog, source = build_production_catalog(
        n_tables=12, partitions_per_table=24, file_size=8 * MIB,
    )
    queries = production_stream(
        catalog, n_queries=240, table_zipf=1.1, queries_per_day=20,
        io_wall_scale=0.15,
    )
    cluster = PrestoCluster.create(
        catalog, source, n_workers=8,
        cache_capacity_bytes=16 * MIB, page_size=256 * 1024,
        target_split_size=2 * MIB,
        max_replicas=max_replicas,
        max_splits_per_node=8,
        probe_latency=PROBE_LATENCY,
    )
    walls = [cluster.coordinator.run_query(q).stats.input_wall for q in queries]
    fallbacks = sum(
        q.cache_bypassed_splits for q in cluster.coordinator.aggregator.queries()
    )
    total_splits = sum(
        q.splits for q in cluster.coordinator.aggregator.queries()
    )
    return {
        "hit_ratio": cluster.coordinator.cluster_hit_ratio(),
        "mean_input_wall": float(np.mean(walls[WARMUP:])),
        "fallback_fraction": fallbacks / total_splits,
    }


def run_experiment():
    return {r: run_one(r) for r in REPLICA_COUNTS}


@pytest.mark.benchmark(group="ablation_replicas")
def test_ablation_replicas(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["max replicas", "cluster hit ratio", "mean inputWall (s)",
         "remote-fallback splits"],
        title="Section 7 -- cache replicas + remote fallback",
    )
    for count in REPLICA_COUNTS:
        r = results[count]
        table.add_row(
            [count, pct(r["hit_ratio"]), f"{r['mean_input_wall']:.3f}",
             pct(r["fallback_fraction"])]
        )
    emit_report("ablation_replicas", table.render())

    # finding 1: the second replica relieves the hot spot
    assert results[2]["fallback_fraction"] < results[1]["fallback_fraction"]
    assert results[2]["mean_input_wall"] < results[1]["mean_input_wall"]
    # finding 2: "simply increasing the number of replicas" past two buys
    # essentially nothing -- two replicas + remote fallback already capture
    # the benefit (within 3%)
    assert (
        results[2]["mean_input_wall"] <= results[8]["mean_input_wall"] * 1.03
    )
    assert results[2]["fallback_fraction"] <= 0.05
