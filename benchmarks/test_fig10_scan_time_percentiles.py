"""Figure 10: Uber production -- query time spent reading files.

The paper measures the ``inputWall`` metric of ScanFilterProjectOperator
before and after enabling Presto local cache on onboarded tables:
P90 reduced by 67 %, P50 by 64 %.

We replay a production-like stream (Zipf-popular tables, hot recent
partitions, daily partition churn) on two clusters -- cache off and cache
on -- and compare steady-state inputWall percentiles.
"""

import pytest

from harness import emit_report, pct
from production_harness import (
    MIB,
    build_production_catalog,
    make_production_cluster,
    production_stream,
)
from repro.analysis import Table, percentile, reduction

PAPER = {50: 0.64, 90: 0.67}
WARMUP = 100  # steady-state measurement starts after this many queries


def run_experiment():
    catalog, source = build_production_catalog(
        n_tables=16, partitions_per_table=30
    )
    queries = production_stream(
        catalog, n_queries=300, table_zipf=0.9, queries_per_day=10
    )
    capacity = 16 * MIB
    off = make_production_cluster(
        catalog, source, cache_enabled=False, cache_capacity_bytes=capacity
    )
    on = make_production_cluster(
        catalog, source, cache_enabled=True, cache_capacity_bytes=capacity
    )
    before = [off.coordinator.run_query(q).stats.input_wall for q in queries]
    after = [on.coordinator.run_query(q).stats.input_wall for q in queries]
    return before[WARMUP:], after[WARMUP:], on


@pytest.mark.benchmark(group="fig10")
def test_fig10_scan_time_percentiles(benchmark):
    before, after, cluster = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = Table(
        ["percentile", "before cache (s)", "after cache (s)",
         "reduction", "paper"],
        title="Figure 10 -- inputWall (scan time) before/after enabling cache",
    )
    reductions = {}
    for q in (50, 90):
        b, a = percentile(before, q), percentile(after, q)
        reductions[q] = reduction(b, a)
        table.add_row(
            [f"P{q}", f"{b:.4f}", f"{a:.4f}", pct(reductions[q]),
             pct(PAPER[q])]
        )
    table.add_row(
        ["hit ratio", "-", f"{cluster.coordinator.cluster_hit_ratio():.3f}",
         "-", "-"]
    )
    emit_report("fig10_scan_time_percentiles", table.render())

    # shape: both percentiles drop by roughly two thirds
    assert 0.45 <= reductions[50] <= 0.80
    assert 0.45 <= reductions[90] <= 0.80
    # the tail improves at least as much as the median (the paper's P90
    # reduction exceeds its P50 reduction)
    assert reductions[90] >= reductions[50] - 0.05
