"""Kernel perf trajectory: the ROADMAP's scheduler throughput ladder.

ROADMAP item 1 wants `repro.sim.kernel` an order of magnitude faster; this
harness is the baseline every speedup PR diffs against.  A self-contained
kernel workload -- a feeder pushing requests into a :class:`Channel`, a
16-worker pool contending on a capacity-4 device resource and a
capacity-8 remote resource, hot keys hitting the fast path -- runs at
1K/10K/100K requests (plus a 1M-request *scale rung* in full mode,
recorded under the bench document's ``scale`` section and held to a
constant-memory budget) and records:

- **work** (deterministic, byte-stable at fixed seed): events fired,
  requests completed, virtual seconds, hit ratio, process counts.  CI
  byte-compares this section against the committed seed.
- **host** (machine-dependent): events/sec, requests/sec, peak RSS
  (``ru_maxrss``) and per-rung ``tracemalloc`` peak, read only through
  :mod:`repro.sim.hostclock`.  CI checks these against the seed within a
  wide ratio band (``repro.tools.perf_viz check-bench``).

The profiler contract is asserted alongside: a NOOP-profiled run changes
no simulation results, a fully profiled double-run produces a
byte-identical virtual profile, and wait-state attribution telescopes to
100% of every process's lifetime.

``KERNEL_PERF_QUICK=1`` drops the 100K rung and emits to
``BENCH_kernel_quick`` so a dev-loop run never dirties the committed
3-rung seed.

Run explicitly (benchmarks are not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_perf.py -q
"""

import json
import os
import resource
import tracemalloc

import numpy as np
import pytest
from harness import REPORT_DIR, emit_json, emit_report

from repro.core.metrics import MetricsRegistry
from repro.obs.profiler import NOOP_PROFILER, KernelProfiler
from repro.obs.sampler import TelemetrySampler, format_telemetry
from repro.sim import hostclock
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, Timeout
from repro.sim.rng import RngStream
from repro.sim.sanitizer import DeterminismHarness

QUICK = bool(os.environ.get("KERNEL_PERF_QUICK"))

SEED = 20240808
LADDER = (1_000, 10_000) if QUICK else (1_000, 10_000, 100_000)
# the constant-memory scale rung (full mode only): 10x the top ladder
# rung, recorded under the bench document's "scale" section and held to
# a tracemalloc-peak budget relative to the 100K rung
SCALE_RUNG = 1_000_000

N_WORKERS = 16
DEVICE_SLOTS = 4
REMOTE_SLOTS = 8
INTERARRIVAL = 0.001      # feeder pushes one request per virtual ms
HIT_SERVICE = 0.0002      # cached read off the device
MISS_SERVICE = 0.005      # remote fetch
HOT_FRACTION = 0.7        # fraction of requests that hit
_HOT_CHUNK = 1 << 16      # multiple of 8 so packed chunks concatenate


def run_rung(n_requests: int, seed: int, *, clock=None, profiler=None,
             registry=None, sampler_interval=None):
    """One ladder rung; returns ``(work_dict, kernel, sampler)``.

    ``work_dict`` contains only deterministic fields -- two calls with the
    same ``(n_requests, seed)`` must return equal dicts regardless of the
    attached profiler or the host machine.  A caller that wants a real
    profile passes the shared ``clock`` it built the profiler on.
    """
    clock = clock if clock is not None else SimClock()
    kernel = Kernel(clock)
    if profiler is not None:
        kernel.attach_profiler(profiler)
    registry = registry if registry is not None else MetricsRegistry()
    rng = RngStream(seed, f"kernel-perf/{n_requests}")
    # hot-key classification, bit-packed: chunked draws produce the exact
    # sequence one monolithic ``random(n)`` call would (Generator.random
    # fills sequentially), so the work section is unchanged, while peak
    # memory is O(n/8) bytes instead of an O(8n)-byte float64 temporary --
    # that is what lets the 1M rung hold the constant-memory assertion.
    # ``bytes`` indexing is also ~3x faster than numpy scalar indexing.
    hot = b"".join(
        np.packbits(
            rng.rng.random(min(_HOT_CHUNK, n_requests - start)) < HOT_FRACTION
        ).tobytes()
        for start in range(0, n_requests, _HOT_CHUNK)
    )

    device = kernel.resource(DEVICE_SLOTS, name="ssd")
    remote = kernel.resource(REMOTE_SLOTS, name="remote")
    queue = kernel.channel(name="requests")
    done = [0]

    sampler = None
    if sampler_interval is not None:
        sampler = TelemetrySampler(
            kernel, registry, interval=sampler_interval, capacity=512
        )
        sampler.start()

    def feeder():
        pause = Timeout(INTERARRIVAL)  # immutable: one instance, reused
        for i in range(n_requests):
            yield pause
            queue.put(i)
        for __ in range(N_WORKERS):
            queue.put(None)
        if sampler is not None:
            sampler.stop()

    def worker():
        # hoisted handles: the loop body should benchmark the kernel, not
        # the registry's string-keyed lookups
        hits = registry.counter("get_hits")
        misses = registry.counter("get_misses")
        depth_gauge = registry.gauge("device_queue_depth")
        blocked_gauge = registry.gauge("blocked_processes")
        hit_pause = Timeout(HIT_SERVICE)
        miss_pause = Timeout(MISS_SERVICE)
        while True:
            item = yield queue.get()
            if item is None:
                return
            if hot[item >> 3] & (128 >> (item & 7)):
                pool, pause, counter = device, hit_pause, hits
            else:
                pool, pause, counter = remote, miss_pause, misses
            req = pool.request()
            yield req
            try:
                yield pause
            finally:
                pool.release(req)
            counter.inc()
            depth_gauge.set(device.queue_depth)
            blocked_gauge.set(device.waiting + remote.waiting)
            done[0] += 1

    for i in range(N_WORKERS):
        kernel.spawn(worker(), name=f"worker-{i}")
    kernel.spawn(feeder(), name="feeder")
    kernel.run_all()

    work = {
        "requests": done[0],
        "events": kernel.events_fired,
        "virtual_seconds": round(clock.now(), 9),
        "hit_ratio": round(registry.hit_ratio, 9),
        "processes_spawned": kernel.processes_spawned,
        "processes_completed": kernel.processes_completed,
    }
    assert done[0] == n_requests
    return work, kernel, sampler


def run_profiled_rung(n_requests: int, seed: int):
    """A rung with a real profiler sharing the kernel clock."""
    clock = SimClock()
    profiler = KernelProfiler(clock)
    work, kernel, __ = run_rung(n_requests, seed, clock=clock,
                                profiler=profiler)
    return work, kernel, profiler


def measure_rung(n_requests: int, seed: int):
    """Timing pass + memory pass; returns ``(work, host)`` for one rung."""
    t0 = hostclock.host_perf_now()
    work, kernel, __ = run_rung(n_requests, seed)
    elapsed = hostclock.host_perf_now() - t0

    tracemalloc.start()
    run_rung(n_requests, seed)
    __, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    host = {
        "wall_seconds": round(elapsed, 6),
        "events_per_sec": round(kernel.events_fired / elapsed, 1),
        "requests_per_sec": round(n_requests / elapsed, 1),
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "tracemalloc_peak_kb": round(traced_peak / 1024, 1),
    }
    return work, host


_MEASURED: dict[int, tuple] = {}


def measured(n_requests: int):
    """:func:`measure_rung` cached per rung for the test session, so the
    artifact test and the constant-memory assertion share one 1M run."""
    if n_requests not in _MEASURED:
        _MEASURED[n_requests] = measure_rung(n_requests, SEED)
    return _MEASURED[n_requests]


class TestKernelPerfLadder:
    def test_ladder_and_bench_artifact(self):
        """Run the ladder, emit BENCH_kernel.json + the report sections."""
        ladder_work = {}
        ladder_host = {}
        for n in LADDER:
            work, host = measured(n)
            ladder_work[str(n)] = work
            ladder_host[str(n)] = host

        payload = {
            "schema": "bench-kernel/1",
            "mode": "quick" if QUICK else "full",
            "work": {
                "seed": SEED,
                "workers": N_WORKERS,
                "ladder": ladder_work,
            },
            "host": {"ladder": ladder_host},
        }
        if not QUICK:
            # the 1M scale rung lives in its own section so the standard
            # ladder's work dict stays byte-comparable across PRs that
            # only touch the scale rung (and vice versa)
            scale_work, scale_host = measured(SCALE_RUNG)
            payload["scale"] = {
                "work": {"ladder": {str(SCALE_RUNG): scale_work}},
                "host": {"ladder": {str(SCALE_RUNG): scale_host}},
            }
        emit_json("BENCH_kernel_quick" if QUICK else "BENCH_kernel", payload)

        # profiled + sampled run at the smallest rung: the artifacts the
        # CI job uploads (profile JSON, folded stacks, telemetry JSONL)
        clock = SimClock()
        profiler = KernelProfiler(clock)
        registry = MetricsRegistry()
        registry.enable_gauge_history(512)
        __, kernel, sampler = run_rung(
            LADDER[0], SEED, clock=clock, profiler=profiler,
            registry=registry, sampler_interval=0.05,
        )
        profile = profiler.finalize()
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / "kernel_profile.json").write_text(
            profile.to_json(include_host=True) + "\n", encoding="utf-8"
        )
        (REPORT_DIR / "kernel_profile.folded").write_text(
            profile.folded_wait_states() + "\n", encoding="utf-8"
        )
        (REPORT_DIR / "telemetry.jsonl").write_text(
            sampler.to_jsonl() + "\n", encoding="utf-8"
        )

        lines = [
            f"seed={SEED} workers={N_WORKERS} "
            f"device_slots={DEVICE_SLOTS} remote_slots={REMOTE_SLOTS}",
            "",
            f"{'requests':>10} {'events':>10} {'virt s':>10} {'hit':>8} "
            f"{'events/s':>12} {'req/s':>12} {'rss KB':>10} {'py-peak KB':>11}",
        ]
        scale_rows = ([(scale_work, scale_host)] if not QUICK else [])
        for w, h in [
            (ladder_work[str(n)], ladder_host[str(n)]) for n in LADDER
        ] + scale_rows:
            lines.append(
                f"{w['requests']:>10} {w['events']:>10} "
                f"{w['virtual_seconds']:>10.3f} {w['hit_ratio']:>8.4f} "
                f"{h['events_per_sec']:>12.0f} {h['requests_per_sec']:>12.0f} "
                f"{h['peak_rss_kb']:>10} {h['tracemalloc_peak_kb']:>11.1f}"
            )
        lines.append("")
        lines.append(f"wait-state attribution at {LADDER[0]} requests "
                     "(virtual seconds):")
        for ptype, states in sorted(profile.wait_states().items()):
            lines.append(
                f"  {ptype:<18} ready={states['ready']:.3f} "
                f"blocked={states['blocked']:.3f} "
                f"sleeping={states['sleeping']:.3f}"
            )
        emit_report("kernel_perf", "\n".join(lines))
        emit_report("telemetry", format_telemetry(sampler))

        for n in LADDER:
            assert ladder_work[str(n)]["requests"] == n
            assert ladder_work[str(n)]["events"] > n  # >1 event per request
            assert 0.5 < ladder_work[str(n)]["hit_ratio"] < 0.9
            assert ladder_host[str(n)]["events_per_sec"] > 0

    @pytest.mark.skipif(QUICK, reason="scale rung runs in full mode only")
    def test_scale_rung_constant_memory(self):
        """The scaling-ladder proof: 10x the requests, ~flat Python heap.

        The kernel holds O(workers) live state (two bounded lanes, no
        per-event garbage) and the harness O(n/8) bit-packed hot flags, so
        the tracemalloc peak at 1M requests must stay within 2x of the
        100K rung.  This is the fleet-scale fitness bar: request count
        must buy wall time linearly, never memory.
        """
        __, host_100k = measured(100_000)
        scale_work, scale_host = measured(SCALE_RUNG)
        assert scale_work["requests"] == SCALE_RUNG
        assert scale_work["processes_completed"] == scale_work["processes_spawned"]
        peak, budget = (scale_host["tracemalloc_peak_kb"],
                        2.0 * host_100k["tracemalloc_peak_kb"])
        assert peak <= budget, (
            f"1M-rung python peak {peak:.1f} KB exceeds 2x the 100K rung "
            f"({budget:.1f} KB): per-request state is leaking into the lanes"
        )

    def test_work_section_byte_stable(self):
        """Same seed, same rung -> byte-identical work JSON."""
        a, __, __ = run_rung(1_000, SEED)
        b, __, __ = run_rung(1_000, SEED)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_diverges(self):
        a, __, __ = run_rung(1_000, SEED)
        c, __, __ = run_rung(1_000, SEED + 1)
        assert a != c


class TestProfilerContract:
    """The acceptance criteria the profiler must uphold on a real workload."""

    def test_noop_profiler_changes_no_results(self):
        bare, __, __ = run_rung(1_000, SEED)
        noop, kernel, __ = run_rung(1_000, SEED, profiler=NOOP_PROFILER)
        assert bare == noop
        assert kernel._profiling is False

    def test_full_profiler_changes_no_results(self):
        bare, __, __ = run_rung(1_000, SEED)
        profiled, __, __ = run_profiled_rung(1_000, SEED)
        assert bare == profiled

    def test_profiled_double_run_virtual_profile_byte_identical(self):
        docs = []
        for __ in range(2):
            __, __, profiler = run_profiled_rung(1_000, SEED)
            profile = profiler.finalize()
            docs.append(profile.to_json(include_host=False))
        assert docs[0] == docs[1]

    def test_wait_states_cover_every_lifetime(self):
        __, kernel, profiler = run_profiled_rung(2_000, SEED)
        profile = profiler.finalize()
        rows = profile.per_process()
        assert len(rows) == kernel.processes_spawned
        for row in rows:
            states = row["states"]
            total = (states["ready"] + states["running"]
                     + states["blocked"] + states["sleeping"])
            # exact: lifetime is defined as this sum (same floats)
            assert total == row["lifetime"]
            # and the sum telescopes back to the observed lifespan
            assert row["end"] is not None
            assert abs(row["lifetime"] - (row["end"] - row["birth"])) < 1e-9

    def test_noop_overhead_under_two_percent(self):
        """Attaching the NOOP profiler must not slow the kernel.

        The guarded hook sites leave the unprofiled hot path untouched, so
        the two timings sample the same code; interleaved min-of-N keeps
        machine noise out of the comparison.  <2% is the ISSUE's bound.
        """
        n = 400

        def once(attach_noop: bool) -> float:
            t0 = hostclock.host_perf_now()
            run_rung(n, SEED,
                     profiler=NOOP_PROFILER if attach_noop else None)
            return hostclock.host_perf_now() - t0

        for __ in range(3):  # warm both variants before sampling
            once(False)
            once(True)
        bare = noop = None
        for __ in range(3):
            samples = [(once(False), once(True)) for __ in range(12)]
            bare = min(s[0] for s in samples)
            noop = min(s[1] for s in samples)
            if noop <= bare * 1.02:
                return
        assert noop <= bare * 1.02, (
            f"NOOP profiler overhead {100 * (noop / bare - 1):.2f}% "
            f"exceeds 2% (bare={bare:.4f}s noop={noop:.4f}s)"
        )


class TestKernelPerfDeterminism:
    @pytest.mark.determinism
    def test_sanitizer_double_run_profile_hash_matches(self):
        """The CI sanitizer gate: a profiled rung replayed twice from one
        seed must fold identical virtual profiles (and identical work
        results) into the event trail -- host fields excluded."""

        def scenario(trace):
            work, __, profiler = run_profiled_rung(1_000, SEED)
            profile = profiler.finalize()
            trace.record(
                "kernel-perf", work["virtual_seconds"], "ladder",
                detail=json.dumps(work, sort_keys=True),
            )
            trace.record(
                "virtual-profile", work["virtual_seconds"], "profiler",
                detail=json.dumps(profile.virtual_report(), sort_keys=True),
            )
            trace.record(
                "folded", work["virtual_seconds"], "profiler",
                detail=profile.folded_wait_states(),
            )
            return work

        report = DeterminismHarness(scenario).check()
        assert report.deterministic
