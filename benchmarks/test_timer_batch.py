"""Microbenchmark: ``Kernel.call_after_many`` vs. the call_after loop.

Satellite of the "one core, two transports" PR: batched timer insertion
exists so bulk arrival injection (trace replay, load-gen fan-out) does
not pay m heap pushes.  This rung shows two things:

- the batch path is not slower than the loop (weak, non-flaky bound --
  hosts vary; CI only needs "no regression", not a victory margin);
- both paths drain to the *same* fire order, so the speedup is free.

Results land in ``BENCH_timer_batch.json``: a deterministic ``work``
section (event counts, order hash) and a machine-dependent ``host``
section (insert rates), same split as ``BENCH_kernel``.

Run explicitly (benchmarks are not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_timer_batch.py -q
"""

import hashlib

from harness import emit_json

from repro.sim import hostclock
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStream

SEED = 20240809
BATCH = 50_000
REPEATS = 3


def _delays(n: int = BATCH) -> list[float]:
    rng = RngStream(SEED, "timer-batch")
    return [float(d) for d in rng.rng.uniform(0.0, 60.0, size=n)]


def _drain_order_hash(kernel: Kernel, log: list) -> str:
    kernel.run_all()
    digest = hashlib.blake2b(digest_size=16)
    for tag in log:
        digest.update(tag.to_bytes(4, "big"))
    return digest.hexdigest()


def _run(batch: bool):
    delays = _delays()
    kernel = Kernel(SimClock())
    log: list = []
    items = [
        (delay, (lambda t: (lambda: log.append(t)))(tag))
        for tag, delay in enumerate(delays)
    ]
    start = hostclock.host_perf_now()
    if batch:
        kernel.call_after_many(items)
    else:
        for delay, callback in items:
            kernel.call_after(delay, callback)
    insert_seconds = hostclock.host_perf_now() - start
    return insert_seconds, _drain_order_hash(kernel, log), len(log)


class TestTimerBatchBench:
    def test_batch_matches_loop_order_and_does_not_regress(self):
        loop_best = min(_run(batch=False)[0] for _ in range(REPEATS))
        batch_seconds, batch_hash, batch_fired = _run(batch=True)
        batch_best = min(
            [batch_seconds] + [_run(batch=True)[0] for _ in range(REPEATS - 1)]
        )
        loop_seconds, loop_hash, loop_fired = _run(batch=False)

        assert batch_fired == loop_fired == BATCH
        assert batch_hash == loop_hash  # identical fire order

        loop_rate = BATCH / loop_best
        batch_rate = BATCH / batch_best
        emit_json(
            "BENCH_timer_batch",
            {
                "work": {
                    "batch_size": BATCH,
                    "fire_order_hash": batch_hash,
                    "seed": SEED,
                },
                "host": {
                    "loop_inserts_per_sec": round(loop_rate, 1),
                    "batch_inserts_per_sec": round(batch_rate, 1),
                    "batch_speedup": round(batch_rate / loop_rate, 3),
                },
            },
        )
        # weak non-flaky bound: the batch path must not be meaningfully
        # slower than the loop on any host
        assert batch_rate >= 0.5 * loop_rate, (
            f"batched insertion regressed: {batch_rate:.0f}/s vs "
            f"loop {loop_rate:.0f}/s"
        )

    def test_incremental_path_small_batch_on_big_heap(self):
        # m * 8 < heap size: exercises the per-entry push branch
        kernel = Kernel(SimClock())
        log: list = []
        for index in range(1000):
            kernel.call_after(float(index), lambda i=index: log.append(i))
        kernel.call_after_many(
            [(0.25, lambda: log.append(-1)), (1.25, lambda: log.append(-2))]
        )
        kernel.run_all()
        assert log.index(-1) == log.index(0) + 1
        assert log.index(-2) == log.index(1) + 1
