"""Section 4.1 ablation: eviction policies on a skewed OLAP trace.

The evictor "orchestrates multiple cache eviction strategies, such as FIFO,
random, and LRU ... an interface for the integration of alternative
policies" (LFU and Clock exercise that interface).  On the paper's Zipfian
access pattern, recency/frequency-aware policies must beat FIFO and random.
"""

import pytest

from harness import emit_report, pct
from repro.analysis import Table
from repro.core import CacheConfig, LocalCacheManager
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.zipf import ZipfSampler

KIB = 1024
MIB = 1024 * KIB
POLICIES = ["lru", "fifo", "random", "lfu", "clock", "2q", "slru"]
N_FILES = 3000
FILE_SIZE = 256 * KIB
N_READS = 60_000
CACHE_CAPACITY = 64 * MIB  # ~8% of the 750 MiB footprint


def run_experiment():
    rng = RngStream(13, "eviction")
    sampler = ZipfSampler(N_FILES, 1.1, rng.child("zipf"))
    picks = sampler.sample(N_READS)
    offsets = rng.child("offsets").rng.integers(
        0, FILE_SIZE - 32 * KIB, size=N_READS
    )
    results = {}
    for policy in POLICIES:
        source = NullDataSource(base_latency=0.004)
        for f in range(N_FILES):
            source.add_file(f"f{f}", FILE_SIZE)
        config = CacheConfig.small(CACHE_CAPACITY, page_size=64 * KIB)
        config.eviction_policy = policy
        cache = LocalCacheManager(config, rng=RngStream(13, f"cache/{policy}"))
        for i in range(N_READS):
            cache.read(f"f{int(picks[i])}", int(offsets[i]), 32 * KIB, source)
        results[policy] = cache.metrics.hit_ratio
    return results


@pytest.mark.benchmark(group="ablation_eviction")
def test_ablation_eviction(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["policy", "page hit ratio"],
        title="Section 4.1 -- eviction policy on a Zipf(1.1) trace",
    )
    for policy in sorted(results, key=results.get, reverse=True):
        table.add_row([policy, pct(results[policy])])
    emit_report("ablation_eviction", table.render())

    # recency/frequency-aware policies beat insertion-order and random
    assert results["lru"] > results["fifo"]
    assert results["lru"] > results["random"]
    assert results["lfu"] >= results["lru"] - 0.02  # LFU shines on static Zipf
    # clock approximates LRU
    assert abs(results["clock"] - results["lru"]) < 0.05
    # every policy gets a healthy hit ratio on this skewed trace
    assert all(ratio > 0.3 for ratio in results.values())
