"""A production-like Presto query stream (Uber/Meta case studies).

Unlike the TPC-DS batch (every query distinct, uniform coverage), the
production streams of Sections 6.1.4 are dominated by repeated dashboards
and ad-hoc queries against a handful of hot tables and recent partitions --
the temporal/spatial locality the local cache exploits.  The stream
generator draws, per query:

- a table from a Zipf-popularity law over the catalog,
- a recent-partition window (hot data is new data),
- a scan shape (columns, selectivity) from the table's typical usage,
- a compute tail sized to the target I/O share.

Cache capacity is deliberately smaller than the working set so steady-state
hit ratios are production-like rather than ~100 %.
"""

from __future__ import annotations

from repro.presto import PrestoCluster, QueryProfile, ScanProfile, TableScan
from repro.presto.catalog import Catalog, build_table
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.zipf import ZipfSampler

MIB = 1024 * 1024


def build_production_catalog(
    *, n_tables: int = 12, partitions_per_table: int = 24,
    files_per_partition: int = 2, file_size: int = 2 * MIB,
) -> tuple[Catalog, NullDataSource]:
    """A warehouse of date-partitioned tables over a remote-HDFS-like
    source (Uber's Presto reads from on-premises HDFS, ~4 ms TTFB)."""
    catalog = Catalog()
    source = NullDataSource(base_latency=0.004, bandwidth=400e6)
    for index in range(n_tables):
        table = build_table(
            "warehouse",
            f"table_{index:02d}",
            n_partitions=partitions_per_table,
            files_per_partition=files_per_partition,
            file_size=file_size,
            n_columns=16,
            n_row_groups=8,
        )
        catalog.add_table(table)
        for __, data_file in table.all_files():
            source.add_file(data_file.file_id, data_file.size)
    return catalog, source


def production_stream(
    catalog: Catalog,
    *,
    n_queries: int = 240,
    seed: int = 11,
    table_zipf: float = 1.1,
    io_share_band: tuple[float, float] = (0.3, 0.7),
    io_wall_scale: float = 1.0,
    queries_per_day: int = 0,
    tail_io_bias: float = 0.0,
) -> list[QueryProfile]:
    """Draw a production-like query stream against ``catalog``.

    ``io_share_band`` sizes each query's compute tail relative to a rough
    estimate of its cold scan wall (refined empirically by callers that
    need an exact balance); ``io_wall_scale`` adjusts that estimate for the
    cluster's latency model.  ``queries_per_day`` > 0 advances the hot
    partition window every that-many queries, modelling new days of data
    arriving (compulsory misses that keep steady-state hit ratios
    production-like).  ``tail_io_bias`` in [0, 1] pulls big scans toward
    the top of the I/O-share band: production tail latency is dominated by
    I/O-bound scans (which is why the paper's P95 improves more than its
    P50), and this knob encodes that correlation.
    """
    tables = sorted(t.qualified_name for t in catalog.tables())
    rng_root = RngStream(seed, "production")
    table_sampler = ZipfSampler(len(tables), table_zipf, rng_root.child("tables"))
    queries: list[QueryProfile] = []
    for number in range(n_queries):
        rng = rng_root.child(f"q{number}").rng
        table_name = tables[int(table_sampler.sample(1)[0])]
        table = catalog.table(table_name)
        n_parts = len(table.partitions)
        # recent partitions are hot: window anchored at the newest day
        window = max(int(rng.integers(1, max(n_parts // 4, 2))), 1)
        fraction = window / n_parts
        day = number // queries_per_day if queries_per_day > 0 else 0
        columns = int(rng.integers(2, 8))
        selectivity = float(rng.uniform(0.3, 1.0))
        profile = ScanProfile(
            columns_read=columns, row_group_selectivity=selectivity
        )
        scan = TableScan(
            table=table_name, partition_fraction=fraction, profile=profile,
            partition_offset=day,
        )
        # rough cold-scan-wall estimate: requests x per-request latency
        files = window * len(next(iter(table.partitions.values())).files)
        kept_groups = max(int(8 * selectivity), 1)
        est_io = files * kept_groups * columns * 0.03 * io_wall_scale
        lo, hi = io_share_band
        draw = float(rng.uniform(0.0, 1.0))
        if tail_io_bias > 0:
            # larger scans skew toward the I/O-bound end of the band
            size_norm = min(window / max(n_parts // 4, 1), 1.0)
            draw = (1.0 - tail_io_bias) * draw + tail_io_bias * size_norm
        share = lo + (hi - lo) * draw
        compute = est_io * (1.0 / share - 1.0)
        queries.append(
            QueryProfile(
                query_id=f"prod-{number}", scans=(scan,),
                compute_seconds=compute,
            )
        )
    return queries


def make_production_cluster(
    catalog: Catalog,
    source: NullDataSource,
    *,
    cache_enabled: bool,
    cache_capacity_bytes: int,
    n_workers: int = 4,
) -> PrestoCluster:
    return PrestoCluster.create(
        catalog,
        source,
        n_workers=n_workers,
        cache_capacity_bytes=cache_capacity_bytes,
        page_size=1 * MIB,
        target_split_size=2 * MIB,
        cache_enabled=cache_enabled,
        metadata_cache_enabled=cache_enabled,
    )
