"""Golden event-order fixtures: the two-lane scheduler fires the OLD order.

The two-lane kernel (DESIGN.md §13) split same-instant resumes off the
timer heap onto a FIFO ready deque.  Its hard constraint was that the
split changes *nothing* observable: every event still fires in exact
``(time, seq)`` order.  ``golden_event_order.json`` pins the
:class:`~repro.sim.sanitizer.EventTrace` rolling hashes of the quick
chaos soak and the quick churn soak as captured on the single-heap
scheduler immediately before the two-lane change landed; this module
replays both scenarios through :class:`DeterminismHarness` and demands
the identical hash and event count.

Unlike the per-PR sanitizer gates (which only prove a *double run* of
today's kernel agrees with itself), these fixtures prove today's kernel
agrees with the kernel of record -- a scheduler reordering that is
internally deterministic but differently ordered fails here and nowhere
else.

The scenarios pin every knob explicitly (seed, request counts, churn
arrival rates), so the hashes are independent of the ``*_SOAK_QUICK``
environment switches.

Run explicitly (benchmarks are not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_event_order_golden.py -q
"""

import json
from pathlib import Path

import pytest
import test_chaos_soak as chaos_soak
import test_churn_soak as churn_soak

from repro.sim.sanitizer import DeterminismHarness

GOLDEN = json.loads(
    (Path(__file__).with_name("golden_event_order.json"))
    .read_text(encoding="utf-8")
)

_REPIN_HINT = (
    "the scheduler fired a different event sequence than the pinned "
    "pre-two-lane golden order; if this is an intentional scenario change, "
    "re-capture both the hash and the event count in "
    "benchmarks/golden_event_order.json (see its comment field)"
)


def _assert_matches(report, spec):
    assert report.deterministic, "double run disagreed with itself"
    assert report.hash_first == report.hash_second
    assert report.events_first == spec["events"], (
        f"event count {report.events_first} != pinned {spec['events']}: "
        f"{_REPIN_HINT}"
    )
    assert report.hash_first == spec["rolling_hash"], (
        f"rolling hash {report.hash_first} != pinned "
        f"{spec['rolling_hash']}: {_REPIN_HINT}"
    )


@pytest.mark.determinism
class TestGoldenEventOrder:
    def test_chaos_quick_soak_matches_pinned_hash(self):
        spec = GOLDEN["scenarios"]["chaos_quick"]

        def scenario(trace):
            result = chaos_soak.run_soak(
                spec["seed"], n_requests=spec["n_requests"]
            )
            trace.record_all(result["chaos_events"])
            trace.record_all(result["breaker_events"])
            trace.record(
                "soak-summary", chaos_soak.SOAK_SECONDS, "tier",
                detail=(
                    f"hit={result['final_hit_ratio']}"
                    f"|errors={result['errors']}"
                    f"|latency={result['latency_sum']}"
                    f"|failovers={result['failovers']}"
                ),
            )
            return result["counters"]

        _assert_matches(DeterminismHarness(scenario).check(), spec)

    def test_churn_quick_soak_matches_pinned_hash(self, monkeypatch):
        spec = GOLDEN["scenarios"]["churn_quick"]
        # arrival rates are module globals switched by CHURN_SOAK_QUICK;
        # pin them to the fixture's values so the hash is env-independent
        monkeypatch.setattr(churn_soak, "QUIET_RATE", spec["quiet_rate"])
        monkeypatch.setattr(churn_soak, "BURST_RATE", spec["burst_rate"])
        monkeypatch.setattr(churn_soak, "STORM_RATE", spec["storm_rate"])

        def scenario(trace):
            result = churn_soak.run_churn_soak(
                spec["seed"], max_queries=spec["max_queries"]
            )
            for at, action, node in result["membership_events"]:
                trace.record(action, at, node)
            trace.record(
                "soak-summary", churn_soak.SOAK_SECONDS, "cluster",
                detail=(
                    f"hit={result['final_hit_ratio']}"
                    f"|pages={result['page_requests']}"
                    f"|remap={result['remapped_keys']}"
                    f"|shed={result['shed']}"
                ),
            )
            return result["admission"]

        _assert_matches(DeterminismHarness(scenario).check(), spec)
