"""Sections 6.1.1 / 7 ablation: file-metadata caching.

"Parsing complex column-oriented data files can consume as much as 30% of
CPU resources ... caching deserialized metadata objects can reduce CPU
usage by up to 40%."

We run the same parse-heavy split stream through workers with and without
the metadata cache and compare CPU time; the parse share of the baseline's
CPU and the with-cache CPU reduction must land near the paper's numbers.
"""

import pytest

from harness import emit_report, pct
from repro.analysis import Table, reduction
from repro.presto.metadata_cache import MetadataCache
from repro.presto.operators import (
    INPUT_HANDLING_FIXED,
    INPUT_HANDLING_PER_MB,
    METADATA_PARSE_COST,
    ScanFilterProjectOperator,
    ScanProfile,
)
from repro.presto.split import Split
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.zipf import ZipfSampler

KIB = 1024
MIB = 1024 * KIB
N_FILES = 200
FILE_SIZE = 2 * MIB
N_SPLITS = 5_000


def run_one(with_metadata_cache: bool) -> tuple[float, float]:
    source = NullDataSource(base_latency=0.004)
    for f in range(N_FILES):
        source.add_file(f"wh/t/part-{f}", FILE_SIZE)
    metadata_cache = MetadataCache() if with_metadata_cache else None
    operator = ScanFilterProjectOperator(None, metadata_cache, source)
    sampler = ZipfSampler(
        N_FILES, 1.1, RngStream(17, f"metadata/{with_metadata_cache}")
    )
    profile = ScanProfile(columns_read=3, row_group_selectivity=0.5)
    total_cpu = 0.0
    parse_cpu = 0.0
    for pick in sampler.sample(N_SPLITS):
        split = Split(
            file_id=f"wh/t/part-{int(pick)}", offset=0, length=FILE_SIZE,
            schema="wh", table="t", partition="p",
            n_columns=16, n_row_groups=8,
        )
        result = operator.execute(split, profile)
        # scan-side CPU = footer parsing + filter/project + per-chunk
        # decode/handling (the handling model charges input_wall, but the
        # work is CPU -- decompression and decoding in the reader)
        decode_cpu = (
            result.requests * INPUT_HANDLING_FIXED
            + (result.bytes_scanned / MIB) * INPUT_HANDLING_PER_MB
        )
        total_cpu += result.cpu_time + decode_cpu
    if metadata_cache is not None:
        parse_cpu = metadata_cache.misses * METADATA_PARSE_COST
    else:
        parse_cpu = N_SPLITS * METADATA_PARSE_COST
    return total_cpu, parse_cpu


def run_experiment():
    without_cpu, without_parse = run_one(with_metadata_cache=False)
    with_cpu, __ = run_one(with_metadata_cache=True)
    return without_cpu, without_parse, with_cpu


@pytest.mark.benchmark(group="ablation_metadata_cache")
def test_ablation_metadata_cache(benchmark):
    without_cpu, without_parse, with_cpu = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    parse_share = without_parse / without_cpu
    cpu_cut = reduction(without_cpu, with_cpu)
    table = Table(
        ["metric", "measured", "paper"],
        title="Sections 6.1.1/7 -- metadata caching vs CPU time",
    )
    table.add_row(["parse share of CPU (no metadata cache)",
                   pct(parse_share), "up to ~30%"])
    table.add_row(["CPU reduction with metadata cache",
                   pct(cpu_cut), "up to ~40%"])
    table.add_row(["CPU without cache (s)", f"{without_cpu:.1f}", "-"])
    table.add_row(["CPU with cache (s)", f"{with_cpu:.1f}", "-"])
    emit_report("ablation_metadata_cache", table.render())

    # metadata parsing is a large slice of scan-side CPU...
    assert 0.15 <= parse_share <= 0.45
    # ...and caching deserialized objects removes most of it
    assert 0.10 <= cpu_cut <= 0.45
    assert with_cpu < without_cpu
