"""Section 5.1 ablation: admission policy comparison.

Caching everything is not free: at petabyte scale, writing every touched
byte into the SSD churns the cache (admission + eviction traffic) without
improving the hit ratio, because cold data evicts hot data.  This ablation
replays one skewed trace through four admission strategies -- admit-all,
static filters, ``BucketTimeRateLimit``, and the shadow-set rule -- and
compares hit ratio against cache write (churn) traffic.
"""

import pytest

from harness import emit_report, pct
from repro.analysis import Table, format_bytes
from repro.core import CacheConfig, CacheScope, LocalCacheManager
from repro.core.admission import (
    AdmitAll,
    BucketTimeRateLimit,
    FilterAdmissionPolicy,
    ShadowCache,
)
from repro.sim.clock import SimClock
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.workload.zipf import ZipfSampler

KIB = 1024
MIB = 1024 * KIB
N_TABLES = 40
FILES_PER_TABLE = 50
N_READS = 40_000
CACHE_CAPACITY = 96 * MIB
FILE_SIZE = 1 * MIB


def make_policies():
    # the filter onboards the hottest quarter of tables, as platform
    # owners do in production
    rules = [{"table": f"wh.table_{t:02d}"} for t in range(N_TABLES // 4)]
    return {
        "admit_all": AdmitAll(),
        "filter(hot tables)": FilterAdmissionPolicy.from_json(rules),
        "rate_limit(3/10min)": BucketTimeRateLimit(threshold=3, window_buckets=10),
        "shadow(seen-before)": ShadowCache(window_buckets=10, bucket_seconds=60),
    }


def run_experiment():
    rng = RngStream(21, "admission-ablation")
    # tables ranked by popularity; files within a table share its rank
    table_sampler = ZipfSampler(N_TABLES, 1.2, rng.child("tables"))
    table_picks = table_sampler.sample(N_READS)
    file_picks = rng.child("files").rng.integers(0, FILES_PER_TABLE, size=N_READS)
    offsets = rng.child("offsets").rng.integers(
        0, FILE_SIZE - 64 * KIB, size=N_READS
    )
    times = rng.child("times").rng.random(N_READS) * 7200.0
    times.sort()

    results = {}
    for name, policy in make_policies().items():
        clock = SimClock()
        source = NullDataSource(base_latency=0.004)
        for t in range(N_TABLES):
            for f in range(FILES_PER_TABLE):
                source.add_file(f"wh/table_{t:02d}/part-{f}", FILE_SIZE)
        cache = LocalCacheManager(
            CacheConfig.small(CACHE_CAPACITY, page_size=256 * KIB),
            clock=clock, admission=policy,
            rng=RngStream(21, f"cache/{name}"),
        )
        for i in range(N_READS):
            clock.advance_to(float(times[i]))
            table = int(table_picks[i])
            file_id = f"wh/table_{table:02d}/part-{int(file_picks[i])}"
            scope = CacheScope.for_partition(
                "wh", f"table_{table:02d}", f"p{int(file_picks[i]) % 4}"
            )
            cache.read(file_id, int(offsets[i]), 64 * KIB, source, scope=scope)
        counters = cache.metrics.counters()
        results[name] = {
            "hit_ratio": cache.metrics.hit_ratio,
            "cache_writes": counters["puts"],
            "evicted_bytes": counters["evicted_bytes"],
            "remote_bytes": counters["bytes_read_remote"],
        }
    return results


@pytest.mark.benchmark(group="ablation_admission")
def test_ablation_admission(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["admission policy", "hit ratio", "cache writes (pages)",
         "evicted bytes", "remote bytes"],
        title="Section 5.1 -- admission policies: hit ratio vs churn",
    )
    for name, r in results.items():
        table.add_row(
            [name, pct(r["hit_ratio"]), r["cache_writes"],
             format_bytes(r["evicted_bytes"]), format_bytes(r["remote_bytes"])]
        )
    emit_report("ablation_admission", table.render())

    admit_all = results["admit_all"]
    rate_limit = results["rate_limit(3/10min)"]
    shadow = results["shadow(seen-before)"]
    filtered = results["filter(hot tables)"]
    # selective admission slashes cache-write churn...
    assert rate_limit["cache_writes"] < 0.8 * admit_all["cache_writes"]
    assert shadow["cache_writes"] < admit_all["cache_writes"]
    assert filtered["cache_writes"] < admit_all["cache_writes"]
    # ...while keeping (or improving) most of the hit ratio: the churn the
    # paper's strategies avoid is one-shot data that never pays back
    assert rate_limit["hit_ratio"] > 0.7 * admit_all["hit_ratio"]
    assert shadow["hit_ratio"] > 0.7 * admit_all["hit_ratio"]
