"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper: it runs the
corresponding simulation once (via ``benchmark.pedantic``), prints the same
rows/series the paper reports, writes them to ``bench_reports/`` so the
output survives pytest's capture, and asserts the *shape* of the result
(who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

REPORT_DIR = Path(__file__).resolve().parent.parent / "bench_reports"


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under ``bench_reports/<name>.txt``."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable artifact as ``bench_reports/<name>.json``.

    Keys are sorted and floats should be pre-rounded by the caller so the
    file is byte-stable across runs (CI diffs it against the committed
    seed)."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def pct(fraction: float) -> str:
    """``0.671 -> '67.1%'``."""
    return f"{fraction * 100:.1f}%"
