"""Churn soak: a flash-crowd query stream replayed through a 120-worker
Presto cluster while an AZ-style correlated failure cools a third of the
fleet's caches.

This is the end-to-end robustness assertion the cluster-lifecycle
subsystem builds toward: with consistent hashing (lazy data movement --
the crashed nodes keep their ring seats), rebalancer-driven cache warmup
on restore, and a coordinator admission controller applying the overload
ladder (admit -> queue -> degrade -> shed), a cluster that loses an AZ
mid-storm must (a) recover its hit ratio to within five points of the
pre-churn steady state, measurably fast, and (b) hold a strictly better
churn-phase p99 than the same cluster with admission control off.

Scenario (virtual time, one simulated hour):

- 120 workers cache a 48-partition / 192-file table (256 KiB files,
  64 KiB pages) fed by a null object store; each worker's cache is
  smaller than its key share, so the cluster runs in the paper's
  capacity-constrained regime (steady-state hit ratio < 1);
- background queries arrive as a two-state bursty process and scan a
  Zipf-popular window of 4 partitions each;
- at t=1500 s every third worker crashes *and loses its SSD contents*;
  the group restarts together at t=1800 s, inside the 900 s offline
  timeout, so zero ring seats expire -- but the restored caches are cold
  and the rebalancer has to re-warm them;
- simultaneously a flash crowd hammers one fixed 4-partition window
  (every dashboard refreshing the same new data) for the whole outage --
  the hot files' owner workers are the bottleneck the admission
  controller has to protect.

``CHURN_SOAK_QUICK=1`` keeps the same cluster and churn schedule but
replays a quieter arrival process -- the CI setting.  The full run
replays > 1 M page requests.

Run explicitly (benchmarks are not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_churn_soak.py -q
"""

import os

import pytest
from harness import emit_json, emit_report

from repro.cluster import (
    AdmissionController,
    ChurnDriver,
    ClusterLifecycle,
    ShardRebalancer,
    correlated_failure,
    hit_ratio_recovery,
    phase_p99,
)
from repro.core.config import MIB
from repro.core.page import installed_time_source
from repro.presto import PrestoCluster, QueryProfile, ScanProfile, TableScan
from repro.presto.catalog import Catalog, build_table
from repro.resilience.health import NodeHealthTracker
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, Timeout
from repro.sim.rng import RngStream
from repro.sim.sanitizer import DeterminismHarness
from repro.storage.remote import NullDataSource
from repro.tools.report import format_membership
from repro.workload.arrivals import bursty_arrivals, poisson_arrivals
from repro.workload.zipf import ZipfSampler

QUICK = bool(os.environ.get("CHURN_SOAK_QUICK"))

SEED = 20240808

SOAK_SECONDS = 3600.0
WINDOW = 150.0  # hit-ratio accounting granularity (24 windows per hour)

N_WORKERS = 120
WORKER_CONCURRENCY = 1
N_PARTITIONS = 48
FILES_PER_PARTITION = 4
FILE_SIZE = 256 * 1024
PAGE_SIZE = 64 * 1024
PARTITIONS_PER_QUERY = 4
SPLITS_PER_QUERY = PARTITIONS_PER_QUERY * FILES_PER_PARTITION
# per-worker SSD smaller than its key share: ~1.6 primary files each but
# room for 4 pages (one file) -- the cluster thrashes, like production
CACHE_CAPACITY = 4 * PAGE_SIZE

OFFLINE_TIMEOUT = 900.0
CHURN_AT = 1500.0
DOWNTIME = 300.0
# churn phase for p99 accounting: crash window plus one re-warm window
CHURN_END = CHURN_AT + DOWNTIME + 2 * WINDOW
# the AZ: every third worker, SSDs lost with the containers
AZ_NODES = tuple(f"worker-{i}" for i in range(0, N_WORKERS, 3))

# bursty background: storms of ~1 min over a quiet base rate
QUIET_RATE, BURST_RATE = (0.2, 2.0) if QUICK else (2.0, 20.0)
MEAN_QUIET, MEAN_BURST = 240.0, 60.0
# the flash crowd: a fixed-window dashboard storm for the whole outage
STORM_RATE = 8.0 if QUICK else 20.0
STORM_OFFSET = 0  # every storm query scans the same 4 partitions

# degrade-to-remote stays a genuine last resort (in-flight backlog at
# 90 % of the fleet's executor slots): this scenario's bottleneck is the
# hot files' owner slots, and cache-bypassed queries make slot queues
# *longer*, so tripping the rung early would trade a thrash problem the
# cluster does not have for a latency problem it does (measured: churn
# p99 370 s with degrade at 60 % occupancy vs 53 s without)
ADMISSION = dict(
    max_concurrent=24,
    max_queue_depth=48,
    degrade_occupancy=0.9,
)


def _query(index: int, offset: int) -> QueryProfile:
    return QueryProfile(
        query_id=f"q{index:05d}",
        scans=(
            TableScan(
                table="lake.events",
                partition_fraction=PARTITIONS_PER_QUERY / N_PARTITIONS,
                profile=ScanProfile(columns_read=8, row_group_selectivity=1.0),
                partition_offset=offset,
            ),
        ),
        compute_seconds=0.02,
    )


def _build_arrivals(seed: int, max_queries: int | None):
    root = RngStream(seed, "churn-soak")
    background = bursty_arrivals(
        QUIET_RATE,
        BURST_RATE,
        SOAK_SECONDS,
        root.child("arrivals"),
        mean_quiet_seconds=MEAN_QUIET,
        mean_burst_seconds=MEAN_BURST,
    )
    offsets = ZipfSampler(N_PARTITIONS, 1.05, root.child("zipf")).sample(
        background.size
    )
    # the flash crowd rides the outage: everyone refreshes one dashboard
    storm = CHURN_AT + poisson_arrivals(
        STORM_RATE, DOWNTIME, root.child("storm")
    )
    merged = sorted(
        [(float(t), int(offsets[i])) for i, t in enumerate(background)]
        + [(float(t), STORM_OFFSET) for t in storm]
    )
    arrivals = [
        (t, _query(i, offset)) for i, (t, offset) in enumerate(merged)
    ]
    if max_queries is not None:
        arrivals = arrivals[:max_queries]
    return arrivals


def run_churn_soak(
    seed: int, *, admission_on: bool = True, max_queries: int | None = None
) -> dict:
    """One soak run under mandatory SimClock injection (DET001)."""
    clock = SimClock()
    with installed_time_source(clock.now):
        return _run(clock, seed, admission_on, max_queries)


def _run(
    clock: SimClock, seed: int, admission_on: bool, max_queries: int | None
) -> dict:
    catalog = Catalog()
    table = build_table(
        "lake",
        "events",
        n_partitions=N_PARTITIONS,
        files_per_partition=FILES_PER_PARTITION,
        file_size=FILE_SIZE,
        n_columns=8,
        n_row_groups=4,
    )
    catalog.add_table(table)
    source = NullDataSource(base_latency=0.08, bandwidth=200e6)
    file_ids = []
    for __, file in table.all_files():
        source.add_file(file.file_id, file.size)
        file_ids.append(file.file_id)

    health = NodeHealthTracker(clock=clock)
    cluster = PrestoCluster.create(
        catalog,
        source,
        n_workers=N_WORKERS,
        cache_capacity_bytes=CACHE_CAPACITY,
        page_size=PAGE_SIZE,
        target_split_size=FILE_SIZE,
        clock=clock,
        health=health,
        offline_timeout=OFFLINE_TIMEOUT,
    )
    cluster.membership.track_keys(file_ids)

    kernel = Kernel(clock)
    cluster.attach_kernel(kernel)
    rebalancer = ShardRebalancer(strategy="prefetch", max_keys_per_event=512)
    lifecycle = ClusterLifecycle(
        cluster, kernel=kernel, rebalancer=rebalancer, health=health
    )
    schedule = correlated_failure(
        AZ_NODES, at=CHURN_AT, downtime=DOWNTIME, lose_cache=True
    )
    driver = ChurnDriver(
        lifecycle, schedule, expire_interval=300.0, horizon=CHURN_END
    )
    kernel.spawn(driver.proc(), name="churn-driver")

    admission = None
    if admission_on:
        admission = AdmissionController(
            kernel,
            occupancy_fn=cluster.coordinator.live_occupancy,
            # "full" = in-flight splits cover every executor slot the
            # fleet offers; beyond that, new admits bypass the cache
            occupancy_capacity=N_WORKERS * WORKER_CONCURRENCY,
            **ADMISSION,
        )

    # windowed cumulative (hits, misses) snapshots, sampled in virtual time
    snapshots: list[tuple[float, int, int]] = []

    def sample() -> tuple[int, int]:
        workers = list(cluster.workers.values())
        hits = sum(w.metrics.counter("get_hits").value for w in workers)
        misses = sum(w.metrics.counter("get_misses").value for w in workers)
        return hits, misses

    def monitor():
        elapsed = 0.0
        while elapsed < SOAK_SECONDS - 1e-9:
            yield Timeout(WINDOW)
            elapsed += WINDOW
            hits, misses = sample()
            snapshots.append((clock.now(), hits, misses))

    kernel.spawn(monitor(), name="hit-ratio-monitor")

    arrivals = _build_arrivals(seed, max_queries)
    results = cluster.coordinator.run_concurrent_kernel(
        arrivals,
        kernel=kernel,
        worker_concurrency=WORKER_CONCURRENCY,
        admission=admission,
    )

    # windowed hit ratios from snapshot deltas; windows with no cache
    # traffic (e.g. after the last query completes) are dropped rather
    # than reported as zero
    windows: list[tuple[float, float]] = []
    prev_hits = prev_misses = 0
    for end, hits, misses in snapshots:
        d_hits = hits - prev_hits
        d_total = (hits + misses) - (prev_hits + prev_misses)
        if d_total:
            windows.append((end, round(d_hits / d_total, 6)))
        prev_hits, prev_misses = hits, misses

    latency_samples = [
        (round(arrival + r.wall_seconds, 6), round(r.wall_seconds, 6))
        for (arrival, __), r in zip(arrivals, results)
        if not r.shed
    ]
    hits, misses = sample()
    page_requests = hits + misses
    return {
        "queries": len(results),
        "shed": sum(1 for r in results if r.shed),
        "degraded": sum(1 for r in results if r.degraded),
        "page_requests": page_requests,
        "final_hit_ratio": round(hits / page_requests, 6)
        if page_requests
        else 0.0,
        "windows": windows,
        "latency_samples": latency_samples,
        "membership_events": list(cluster.membership.events),
        "membership_states": cluster.membership.states(),
        "remapped_keys": cluster.membership.remapped_keys,
        "expired": [
            node
            for __, action, node in cluster.membership.events
            if action == "expire"
        ],
        "churn_applied": driver.applied,
        "warmup_files": rebalancer.metrics.counter("warmup_files").value,
        "warmup_bytes": rebalancer.metrics.counter("warmup_bytes").value,
        "admission": admission.summary() if admission is not None else None,
        "health": health.snapshot(),
    }


class TestChurnSoak:
    def test_hit_ratio_recovers_and_admission_beats_open_door(self):
        on = run_churn_soak(SEED, admission_on=True)
        off = run_churn_soak(SEED, admission_on=False)

        # the scenario actually bit: the whole AZ crashed and came back,
        # keys moved to fallback owners and were warmed
        crashes = [e for e in on["membership_events"] if e[1] == "crash"]
        restores = [e for e in on["membership_events"] if e[1] == "restore"]
        assert len(crashes) == len(AZ_NODES)
        assert len(restores) == len(AZ_NODES)
        assert on["expired"] == []  # back inside the offline timeout
        assert all(
            state == "online" for state in on["membership_states"].values()
        )
        assert on["remapped_keys"] > 0
        assert on["warmup_files"] > 0

        # SLO 1: windowed hit ratio recovers to within 5 points of the
        # pre-churn steady state, and stays there
        recovery = hit_ratio_recovery(
            on["windows"], churn_start=CHURN_AT, tolerance=0.05
        )
        assert recovery.recovered, (
            f"hit ratio never re-reached baseline-{recovery.tolerance}: "
            f"baseline={recovery.baseline:.3f} floor={recovery.floor:.3f}"
        )
        assert recovery.recovery_seconds is not None

        # SLO 2: churn-phase p99 is strictly better with admission control
        # on than off (shed queries excluded -- they got an immediate no)
        p99_on = phase_p99(
            on["latency_samples"], churn_start=CHURN_AT, churn_end=CHURN_END
        )
        p99_off = phase_p99(
            off["latency_samples"], churn_start=CHURN_AT, churn_end=CHURN_END
        )
        assert p99_on.churn_count > 0 and p99_off.churn_count > 0
        assert p99_on.churn < p99_off.churn, (
            f"admission control did not improve churn-phase p99: "
            f"on={p99_on.churn:.3f}s off={p99_off.churn:.3f}s"
        )

        # the overload ladder observably fired in the admission run
        summary = on["admission"]
        assert summary["admitted"] > 0
        assert summary["queued"] > 0

        requests_per_sec = on["page_requests"] / SOAK_SECONDS
        lines = [
            f"mode               : {'quick' if QUICK else 'full'}"
            f" ({on['queries']} queries over {SOAK_SECONDS:.0f} simulated s)",
            f"workers            : {N_WORKERS}"
            f" (AZ failure: {len(AZ_NODES)} nodes, caches lost,"
            f" down [{CHURN_AT:.0f}, {CHURN_AT + DOWNTIME:.0f}) s)",
            f"page requests      : {on['page_requests']}"
            f" ({requests_per_sec:.1f}/simulated s)",
            f"membership events  : {len(on['membership_events'])}"
            f" ({len(crashes)} crashes, {len(restores)} restores,"
            f" 0 expired)",
            f"remapped keys      : {on['remapped_keys']}",
            f"warmed files       : {on['warmup_files']}"
            f" ({on['warmup_bytes'] / MIB:.1f} MiB prefetched)",
            f"admission          : {summary['admitted']} admitted,"
            f" {summary['queued']} queued, {summary['degraded']} degraded,"
            f" {summary['shed']} shed",
            f"hit-ratio baseline : {recovery.baseline:.3f}"
            f" (floor {recovery.floor:.3f} during churn)",
            f"recovery time      : {recovery.recovery_seconds:.0f} s"
            f" (tolerance {recovery.tolerance:.2f})",
            f"p99 pre-churn      : on={p99_on.pre:.3f}s off={p99_off.pre:.3f}s",
            f"p99 during churn   : on={p99_on.churn:.3f}s"
            f" off={p99_off.churn:.3f}s  <- admission control",
            f"p99 post-recovery  : on={p99_on.post:.3f}s off={p99_off.post:.3f}s",
            "",
            "window  end (s)   cluster hit ratio",
        ]
        for end, ratio in on["windows"]:
            flag = ""
            if CHURN_AT < end <= CHURN_END:
                flag = "  <- churn"
            lines.append(f"        {end:>7.0f} {ratio:>12.3f}{flag}")
        emit_report("churn_soak", "\n".join(lines))
        emit_report(
            "cluster_membership",
            format_membership(on["health"], on["membership_states"]),
        )
        emit_json(
            "BENCH_churn",
            {
                "mode": "quick" if QUICK else "full",
                "seed": SEED,
                "workers": N_WORKERS,
                "queries": on["queries"],
                "page_requests": on["page_requests"],
                "requests_per_sec_simulated": round(requests_per_sec, 3),
                "hit_ratio_baseline": round(recovery.baseline, 6),
                "hit_ratio_floor": round(recovery.floor, 6),
                "recovery_seconds": round(recovery.recovery_seconds, 3),
                "p99_churn_admission_on": round(p99_on.churn, 6),
                "p99_churn_admission_off": round(p99_off.churn, 6),
                "p99_pre_admission_on": round(p99_on.pre, 6),
                "p99_post_admission_on": round(p99_on.post, 6),
                "shed": summary["shed"],
                "queued": summary["queued"],
                "degraded": summary["degraded"],
            },
        )


class TestChurnSoakDeterminism:
    N = 300  # shortened stream: determinism needs coverage, not scale

    def test_same_seed_identical_results(self):
        a = run_churn_soak(SEED, max_queries=self.N)
        b = run_churn_soak(SEED, max_queries=self.N)
        assert a == b

    def test_different_seed_diverges(self):
        a = run_churn_soak(SEED, max_queries=self.N)
        c = run_churn_soak(SEED + 1, max_queries=self.N)
        assert a != c

    @pytest.mark.determinism
    def test_sanitizer_double_run_hashes_match(self):
        """The CI sanitizer gate: the quick churn scenario replayed twice
        from one seed must produce identical rolling hashes over the
        (membership event, virtual timestamp) trail."""

        def scenario(trace):
            result = run_churn_soak(SEED, max_queries=self.N)
            for at, action, node in result["membership_events"]:
                trace.record(action, at, node)
            trace.record(
                "soak-summary",
                SOAK_SECONDS,
                "cluster",
                detail=(
                    f"hit={result['final_hit_ratio']}"
                    f"|pages={result['page_requests']}"
                    f"|remap={result['remapped_keys']}"
                    f"|shed={result['shed']}"
                ),
            )
            return result["admission"]

        report = DeterminismHarness(scenario).check()
        assert report.deterministic
        assert report.hash_first == report.hash_second
        assert report.events_first > len(AZ_NODES)  # joins + crash/restore
