"""Meta's production results (Section 6.1.4).

"In one of Meta's internal use cases, the query latency P50 was reduced by
around 33%, and P95 was reduced by around 49% ... Additionally, there was a
57% reduction in total data scanned from remote storage."

We replay a production-like stream (the tail dominated by I/O-bound scans,
as in interactive analytics) with and without the cache, comparing
steady-state end-to-end latency percentiles and cumulative remote bytes.
"""

import pytest

from harness import emit_report, pct
from production_harness import (
    MIB,
    build_production_catalog,
    make_production_cluster,
    production_stream,
)
from repro.analysis import Table, percentile, reduction
from repro.presto import PrestoCluster

PAPER = {"p50": 0.33, "p95": 0.49, "bytes": 0.57}
WARMUP = 100


def run_experiment():
    catalog, source = build_production_catalog(
        n_tables=16, partitions_per_table=30
    )
    queries = production_stream(
        catalog, n_queries=300, table_zipf=0.9, queries_per_day=30,
        io_share_band=(0.3, 0.9), io_wall_scale=0.15, tail_io_bias=0.95,
    )
    capacity = 32 * MIB
    off = make_production_cluster(
        catalog, source, cache_enabled=False, cache_capacity_bytes=capacity
    )
    on = PrestoCluster.create(
        catalog, source, n_workers=4, cache_capacity_bytes=capacity,
        page_size=64 * 1024, target_split_size=2 * MIB,
        cache_enabled=True, metadata_cache_enabled=True,
    )
    before = [off.coordinator.run_query(q).wall_seconds for q in queries]
    after = [on.coordinator.run_query(q).wall_seconds for q in queries]
    on_remote = sum(
        s.bytes_from_remote
        for s in on.coordinator.aggregator.queries()[WARMUP:]
    )
    off_remote = sum(
        s.bytes_from_remote
        for s in off.coordinator.aggregator.queries()[WARMUP:]
    )
    return before[WARMUP:], after[WARMUP:], on_remote, off_remote


@pytest.mark.benchmark(group="meta_production")
def test_meta_production_latency(benchmark):
    before, after, on_remote, off_remote = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    p50 = reduction(percentile(before, 50), percentile(after, 50))
    p95 = reduction(percentile(before, 95), percentile(after, 95))
    byte_red = reduction(off_remote, on_remote)
    table = Table(
        ["metric", "without cache", "with cache", "reduction", "paper"],
        title="Meta production (Section 6.1.4) -- query latency & remote scan",
    )
    table.add_row(["latency P50 (s)", f"{percentile(before, 50):.3f}",
                   f"{percentile(after, 50):.3f}", pct(p50), pct(PAPER['p50'])])
    table.add_row(["latency P95 (s)", f"{percentile(before, 95):.3f}",
                   f"{percentile(after, 95):.3f}", pct(p95), pct(PAPER['p95'])])
    table.add_row(["remote bytes", f"{off_remote:,}", f"{on_remote:,}",
                   pct(byte_red), pct(PAPER['bytes'])])
    emit_report("meta_production_latency", table.render())

    # shape: P50 cut by roughly a third, tail cut more than the median,
    # and remote scan volume roughly halved
    assert 0.20 <= p50 <= 0.45
    assert 0.30 <= p95 <= 0.60
    assert p95 > p50
    assert 0.45 <= byte_red <= 0.72
