"""Section 6.1.2 ablation: soft-affinity vs random split scheduling.

"Conventionally ... the scheduler's primary objective was to evenly
distribute tasks by randomly assigning splits to workers.  This approach,
however, proved to be inefficient for caching as it led to frequent
admission and eviction of data from each worker's local cache."

Same query stream, same per-worker cache, two schedulers.  Soft-affinity
must deliver the higher steady-state hit ratio and the lower scan time.
"""

import numpy as np
import pytest

from harness import emit_report, pct
from production_harness import (
    MIB,
    build_production_catalog,
    production_stream,
)
from repro.analysis import Table
from repro.presto import PrestoCluster

WARMUP = 80


def run_one(scheduler: str):
    catalog, source = build_production_catalog(
        n_tables=12, partitions_per_table=24
    )
    queries = production_stream(
        catalog, n_queries=240, table_zipf=0.9, queries_per_day=20,
        io_wall_scale=0.15,
    )
    cluster = PrestoCluster.create(
        catalog, source, n_workers=4,
        cache_capacity_bytes=12 * MIB, page_size=256 * 1024,
        target_split_size=2 * MIB, scheduler=scheduler,
    )
    input_walls = [
        cluster.coordinator.run_query(q).stats.input_wall for q in queries
    ]
    steady = input_walls[WARMUP:]
    return {
        "hit_ratio": cluster.coordinator.cluster_hit_ratio(),
        "mean_input_wall": float(np.mean(steady)),
        "evictions": sum(
            w.metrics.counter("evictions").value
            for w in cluster.workers.values()
        ),
    }


def run_experiment():
    return {name: run_one(name) for name in ("soft_affinity", "random")}


@pytest.mark.benchmark(group="ablation_soft_affinity")
def test_ablation_soft_affinity(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        ["scheduler", "cluster hit ratio", "mean inputWall (s)", "evictions"],
        title="Section 6.1.2 -- soft-affinity vs random split scheduling",
    )
    for name, r in results.items():
        table.add_row(
            [name, pct(r["hit_ratio"]), f"{r['mean_input_wall']:.3f}",
             r["evictions"]]
        )
    emit_report("ablation_soft_affinity", table.render())

    affinity, random_ = results["soft_affinity"], results["random"]
    # soft-affinity wins on hit ratio and scan time
    assert affinity["hit_ratio"] > random_["hit_ratio"]
    assert affinity["mean_input_wall"] < random_["mean_input_wall"]
    # and random placement churns the caches harder
    assert random_["evictions"] > affinity["evictions"]
