"""``replint``: repo-specific static analysis that gates CI.

Every number this reproduction reports (hit ratios, blocked-process
counts, chaos-soak recovery curves) is only meaningful because the
simulation is bit-for-bit deterministic.  That property is enforced by
convention -- :class:`~repro.sim.clock.SimClock`,
:class:`~repro.sim.rng.RngStream`, the injectable page time source -- and
conventions rot.  This package is the tooling that keeps them honest:

- :mod:`repro.devtools.rules` -- the pattern rule set (``DET*``
  determinism, ``ERR*`` error accounting, ``MET*`` metric hygiene,
  ``SIM*`` simulation purity, ``API*``/``LOG*`` general hygiene),
- :mod:`repro.devtools.kernelcheck` -- flow-aware concurrency rules
  over kernel process generators (``KRN001``-``KRN004``: stale shared
  writes across yield points, leaked resource/process handles,
  processes that never run, blocking host calls in the kernel),
- :mod:`repro.devtools.graph` -- the project import graph plus
  architecture contracts declared as data (``ARC001``-``ARC003``:
  forbidden layer imports, unsanctioned deferred imports, module
  cycles),
- :mod:`repro.devtools.driver` -- a single-parse AST driver that runs
  every applicable rule over every file and honours inline
  ``replint: disable=<ID>`` suppressions (unused ones are findings,
  ``SUP001``),
- :mod:`repro.devtools.config` -- per-rule path scoping and per-path
  allowlists (an allowlist entry is a *documented exception*, not an
  escape hatch),
- :mod:`repro.devtools.baseline` -- fingerprint-based baselines so the
  gate can be adopted before every legacy finding is fixed,
- :mod:`repro.devtools.reporters` -- human (text) and machine (JSON,
  SARIF 2.1.0) output,
- :mod:`repro.devtools.lint` -- the CLI:
  ``python -m repro.devtools.lint src tests benchmarks``
  (``--changed-only`` for the pre-commit loop, ``--format sarif
  --output replint.sarif`` for the CI artifact).

The analyzer is gated by its own corpus: seeded bugs under
``tests/devtools/replint_fixtures/`` must be found exactly, and the
real tree must stay clean with suppressions ignored
(``tests/devtools/test_corpus.py``).

The runtime half of the suite -- the determinism sanitizer that replays a
scenario twice and diffs the event-sequence hash -- lives in
:mod:`repro.sim.sanitizer`; CI runs both.
"""

from repro.devtools.config import LintConfig
from repro.devtools.driver import LintDriver
from repro.devtools.findings import Finding
from repro.devtools.rules import ALL_RULES, Rule

__all__ = ["ALL_RULES", "Finding", "LintConfig", "LintDriver", "Rule"]
