"""``replint``: repo-specific static analysis that gates CI.

Every number this reproduction reports (hit ratios, blocked-process
counts, chaos-soak recovery curves) is only meaningful because the
simulation is bit-for-bit deterministic.  That property is enforced by
convention -- :class:`~repro.sim.clock.SimClock`,
:class:`~repro.sim.rng.RngStream`, the injectable page time source -- and
conventions rot.  This package is the tooling that keeps them honest:

- :mod:`repro.devtools.rules` -- the rule set (``DET*`` determinism,
  ``ERR*`` error accounting, ``MET*`` metric hygiene, ``SIM*`` simulation
  purity, ``API*``/``LOG*`` general hygiene),
- :mod:`repro.devtools.driver` -- a single-parse AST driver that runs
  every applicable rule over every file,
- :mod:`repro.devtools.config` -- per-rule path scoping and per-path
  allowlists (an allowlist entry is a *documented exception*, not an
  escape hatch),
- :mod:`repro.devtools.baseline` -- fingerprint-based baselines so the
  gate can be adopted before every legacy finding is fixed,
- :mod:`repro.devtools.reporters` -- human (text) and machine (JSON)
  output,
- :mod:`repro.devtools.lint` -- the CLI:
  ``python -m repro.devtools.lint src tests benchmarks``.

The runtime half of the suite -- the determinism sanitizer that replays a
scenario twice and diffs the event-sequence hash -- lives in
:mod:`repro.sim.sanitizer`; CI runs both.
"""

from repro.devtools.config import LintConfig
from repro.devtools.driver import LintDriver
from repro.devtools.findings import Finding
from repro.devtools.rules import ALL_RULES, Rule

__all__ = ["ALL_RULES", "Finding", "LintConfig", "LintDriver", "Rule"]
