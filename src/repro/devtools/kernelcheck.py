"""Flow-aware lint over kernel process generators (the ``KRN`` rule family).

PR 4/5 moved the read path onto generator-coroutine processes driven by
:mod:`repro.sim.kernel`.  The classic discrete-event bugs there are
invisible to per-file syntactic checks because they live in the *control
flow around yield points*:

- ``KRN001`` -- a shared attribute written from a value that was read
  before a yield: between the read and the write the kernel ran other
  processes, so the write can clobber a concurrent update (the static
  twin of :class:`repro.sim.sanitizer.WriteWriteConflictDetector`'s
  lost-update check);
- ``KRN002`` -- a resource slot (``Resource.request()``) or a spawned
  handle (``kernel.spawn``/``timer``) acquired and then carried across a
  yield with no ``try``/``finally``/``except`` that releases it: if the
  process is cancelled at that yield the slot leaks or the spawned
  process runs on as an orphan (``any_of`` losers are deliberately not
  reaped by the kernel);
- ``KRN003`` -- a process generator called without ``yield from`` (the
  call builds a generator and silently never runs it) or a yield of a
  non-waitable literal;
- ``KRN004`` -- wall-clock or real-I/O calls inside a process body,
  which re-couple virtual time to the host.

The analysis is a deliberately simple CFG approximation: each function's
*own* statements (nested ``def``/``class`` bodies excluded) linearized in
source order, with yield points as barriers.  That linearization is exact
for straight-line code and conservative for loops (a yield later in the
loop body is treated as after, not before, earlier statements) -- see
DESIGN.md section 11 for the model and its limits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from itertools import chain as _chain
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.rules import Rule, _attr_chain

#: bare-name constructors whose result is a kernel waitable
_WAITABLE_FACTORIES = {"Timeout", "Timer", "Event", "Request", "any_of", "all_of"}
#: method calls whose result is a kernel waitable (chan.get(), res.request())
_WAITABLE_METHODS = {"get", "request", "timer", "event"}
#: generator helpers a process delegates to with ``yield from``
_REPLAY_HELPERS = {"replay_plan"}
_PROC_SUFFIX = "_proc"
#: method calls that hand back a handle the process must reap
_HANDLE_METHODS = {"spawn", "spawn_at", "timer"}
#: method names that settle a held handle/slot
_RELEASE_METHODS = {"release", "cancel", "abandon"}

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _own_statements(func: ast.AST) -> list[ast.stmt]:
    """The function's own statements, source order, nested defs excluded."""
    collected: list[ast.stmt] = []

    def visit(body: list) -> None:
        for stmt in body:
            collected.append(stmt)
            if isinstance(stmt, _NESTED_SCOPES):
                continue
            for field in ("body", "orelse", "finalbody"):
                visit(getattr(stmt, field, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)

    visit(getattr(func, "body", []))
    collected.sort(key=lambda s: (s.lineno, s.col_offset))
    return collected


def _stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expression parts executed *at* this statement (headers only for
    compound statements -- their bodies are linearized separately)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, *_NESTED_SCOPES)):
        return []
    return [stmt]


def _walk_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    return _chain.from_iterable(ast.walk(e) for e in _stmt_exprs(stmt))


def _yields_in(stmt: ast.stmt) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_exprs(stmt))


def _callee_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_waitable_expr(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    if isinstance(expr.func, ast.Name):
        return expr.func.id in _WAITABLE_FACTORIES
    if isinstance(expr.func, ast.Attribute):
        return expr.func.attr in _WAITABLE_METHODS
    return False


def is_kernel_process(func: ast.AST) -> bool:
    """Does this function look like a kernel process generator?

    A process either follows the ``*_proc`` naming convention or yields
    something recognizably kernel-shaped (a waitable constructor, a
    ``replay_plan`` delegation, another ``*_proc``).
    """
    statements = _own_statements(func)
    yields = [
        n for stmt in statements for n in _walk_exprs(stmt)
        if isinstance(n, (ast.Yield, ast.YieldFrom))
    ]
    if not yields:
        return False
    name = getattr(func, "name", "")
    if name.endswith(_PROC_SUFFIX):
        return True
    for node in yields:
        if isinstance(node, ast.Yield) and node.value is not None:
            if _is_waitable_expr(node.value):
                return True
        if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
            callee = _callee_name(node.value)
            if callee is not None and (
                callee in _REPLAY_HELPERS or callee.endswith(_PROC_SUFFIX)
            ):
                return True
    return False


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_processes(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for func in iter_functions(tree):
        if is_kernel_process(func):
            yield func


# ---------------------------------------------------------------------------
# KRN001: shared-attribute write across a yield


class StaleSharedWriteRule(Rule):
    """KRN001: don't write shared state from a value read before a yield.

    ``tokens = self.tokens; yield ...; self.tokens = tokens - n`` is the
    lost-update bug: while the process waited, the kernel ran other
    processes that may have updated ``self.tokens``, and the write
    clobbers them.  This is exactly the conflict
    :class:`repro.sim.sanitizer.WriteWriteConflictDetector` reports at
    runtime (same key, same virtual instant, different actor, no
    generation bump) -- caught here before a soak has to execute it.
    Re-reading the attribute after the yield (an optimistic-concurrency
    guard) marks the value fresh and is the sanctioned pattern.
    """

    rule_id = "KRN001"
    description = (
        "no shared-attribute write from a value read before a yield "
        "point (static twin of WriteWriteConflictDetector)"
    )
    include = ("src/repro",)

    def check(self, tree, path, lines):
        for func in iter_processes(tree):
            yield from self._check_process(func, path, lines)

    def _check_process(self, func, path, lines):
        bindings: dict[str, str] = {}   # local name -> shared attr chain
        stale: set[str] = set()         # bound before the latest yield
        for stmt in _own_statements(func):
            loads = {
                c for node in _walk_exprs(stmt)
                if isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                for c in (_attr_chain(node),) if c is not None
            }
            for name, attr in list(bindings.items()):
                if attr in loads:
                    stale.discard(name)  # re-read after the yield: fresh again
            targets: list[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                written = _attr_chain(target)
                if written is None:
                    continue
                value_names = {
                    n.id for n in ast.walk(value)
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                }
                for name in sorted(value_names):
                    if name in stale and bindings.get(name) == written:
                        yield self.finding(
                            path, stmt,
                            f"`{written}` written from `{name}`, which was "
                            f"read from `{written}` before a yield point -- "
                            "a concurrent process may have updated it (lost "
                            "update)",
                            "re-read the shared attribute after the yield, "
                            "or guard the write with a generation stamp as "
                            "WriteWriteConflictDetector expects",
                            lines,
                        )
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                local = stmt.targets[0].id
                read = _attr_chain(stmt.value)
                if read is not None and "." in read:
                    bindings[local] = read
                else:
                    bindings.pop(local, None)
                stale.discard(local)
            if _yields_in(stmt):
                stale |= set(bindings)


# ---------------------------------------------------------------------------
# KRN002: handle/slot acquired but not settled on every path


def _unwrap_acquisition(expr: ast.AST) -> ast.Call | None:
    """The acquiring call in ``x = res.request()`` / ``x = k.spawn(...)``,
    unwrapping a conditional (``res.request() if res else None``)."""
    if isinstance(expr, ast.IfExp):
        return _unwrap_acquisition(expr.body) or _unwrap_acquisition(expr.orelse)
    if not isinstance(expr, ast.Call) or not isinstance(expr.func, ast.Attribute):
        return None
    attr = expr.func.attr
    if attr == "request" and not expr.args and not expr.keywords:
        return expr
    if attr in _HANDLE_METHODS:
        return expr
    return None


def _released_names(try_stmt: ast.Try) -> set[str]:
    """Names settled in the try's ``finally`` or ``except`` bodies, via
    ``name.release()/.cancel()/.abandon()`` or ``owner.release(name)``."""
    released: set[str] = set()
    bodies = [try_stmt.finalbody] + [h.body for h in try_stmt.handlers]
    for stmt in _chain.from_iterable(bodies):
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _RELEASE_METHODS:
                continue
            if isinstance(node.func.value, ast.Name):
                released.add(node.func.value.id)
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    released.add(arg.id)
    return released


class LeakedHandleRule(Rule):
    """KRN002: a held slot or spawned handle must be settled on all paths.

    ``Process.cancel`` throws :class:`~repro.sim.kernel.Cancelled` *at
    the current yield*; only ``finally``/``except`` blocks run.  A
    ``Resource.request()`` slot or a ``kernel.spawn``/``timer`` handle
    held across a yield without such a block therefore leaks when the
    process is cancelled -- the slot is never freed, or the spawned
    process runs on as an orphan (``any_of`` losers are deliberately not
    reaped by the kernel).  Sanctioned shape: acquire inside -- or
    immediately before, with no yield in the gap -- a ``try`` whose
    ``finally`` or ``except`` settles the name.
    """

    rule_id = "KRN002"
    description = (
        "Resource.request()/spawn/timer handles held across a yield are "
        "settled in a try/finally or try/except on every path"
    )
    include = ("src/repro",)

    def check(self, tree, path, lines):
        for func in iter_processes(tree):
            yield from self._check_process(func, path, lines)

    def _check_process(self, func, path, lines):
        statements = _own_statements(func)
        yield_lines = sorted(
            stmt.lineno for stmt in statements if _yields_in(stmt)
        )
        trys = [s for s in statements if isinstance(s, ast.Try)]
        try_released = [( t, _released_names(t)) for t in trys]
        for stmt in statements:
            if (
                not isinstance(stmt, ast.Assign)
                or len(stmt.targets) != 1
                or not isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            call = _unwrap_acquisition(stmt.value)
            if call is None:
                continue
            name = stmt.targets[0].id
            if not any(y > stmt.lineno for y in yield_lines):
                continue  # never carried across a yield: no cancel window
            if self._sanctioned(stmt, name, try_released, yield_lines):
                continue
            kind = (
                "resource slot" if call.func.attr == "request"
                else f"`{call.func.attr}` handle"
            )
            yield self.finding(
                path, stmt,
                f"{kind} `{name}` is carried across a yield with no "
                "try/finally or try/except that settles it; cancellation "
                "at that yield leaks it",
                f"wrap the yields in `try: ... except Cancelled: "
                f"{name}.cancel(); raise` or release `{name}` in a "
                "finally block",
                lines,
            )

    def _sanctioned(self, stmt, name, try_released, yield_lines) -> bool:
        for try_stmt, released in try_released:
            if name not in released:
                continue
            inside = any(
                inner is stmt
                for body_stmt in try_stmt.body
                for inner in ast.walk(body_stmt)
            )
            if inside:
                return True
            if try_stmt.lineno > stmt.lineno and not any(
                stmt.lineno < y < try_stmt.lineno for y in yield_lines
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# KRN003: process generator never iterated / non-waitable yields


@dataclass(frozen=True)
class _CallSite:
    path: str
    lineno: int
    col: int
    snippet: str
    callee: str
    via_yield: bool


class UniteratedProcessRule(Rule):
    """KRN003: calling a process without iterating it silently does nothing.

    ``self.refill_proc(bucket)`` as a statement builds a generator object
    and throws it away -- none of its body runs, no error is raised, the
    refill just never happens.  Inside a process the right forms are
    ``yield from proc(...)`` (inline) or ``kernel.spawn(proc(...))``
    (concurrent); ``yield proc(...)`` hands the kernel a raw generator
    and dies with ``KernelError`` only at runtime, as does yielding a
    non-waitable literal.  Resolution is whole-program: process names are
    collected across every checked file, call sites are matched in
    :meth:`finish`.
    """

    rule_id = "KRN003"
    description = (
        "process generators are iterated (`yield from` / `spawn`), never "
        "called as a bare statement or yielded raw"
    )
    include = ("src/repro",)

    def __init__(self) -> None:
        self._processes: set[str] = set()
        self._plain_defs: set[str] = set()
        self._candidates: list[_CallSite] = []

    def check(self, tree, path, lines):
        local_processes: set[str] = set()
        for func in iter_functions(tree):
            if is_kernel_process(func):
                self._processes.add(func.name)
                local_processes.add(func.name)
            else:
                self._plain_defs.add(func.name)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
            ):
                callee = _callee_name(node.value)
                if callee is not None and (
                    callee in self._processes
                    or callee in local_processes
                    or callee.endswith(_PROC_SUFFIX)
                ):
                    self._candidates.append(self._site(
                        path, node.value, lines, callee, via_yield=False,
                    ))
        for func in iter_processes(tree):
            for stmt in _own_statements(func):
                for node in _walk_exprs(stmt):
                    if not isinstance(node, ast.Yield) or node.value is None:
                        continue
                    value = node.value
                    if isinstance(value, ast.Call):
                        callee = _callee_name(value)
                        if callee is not None and (
                            callee.endswith(_PROC_SUFFIX)
                            or callee in self._processes
                        ):
                            self._candidates.append(self._site(
                                path, value, lines, callee, via_yield=True,
                            ))
                    elif isinstance(
                        value,
                        (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set),
                    ):
                        yield self.finding(
                            path, value,
                            "yield of a non-waitable literal inside a "
                            "kernel process (KernelError at runtime)",
                            "yield a waitable (Timeout, Event, Request, "
                            "any_of/all_of) or delegate with `yield from`",
                            lines,
                        )

    def _site(self, path, node, lines, callee, *, via_yield) -> _CallSite:
        line = node.lineno
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return _CallSite(
            path=path, lineno=line, col=node.col_offset,
            snippet=snippet, callee=callee, via_yield=via_yield,
        )

    def finish(self):
        for site in self._candidates:
            is_process = site.callee in self._processes or (
                site.callee.endswith(_PROC_SUFFIX)
                and site.callee not in self._plain_defs
            )
            if not is_process:
                continue
            if site.via_yield:
                message = (
                    f"`yield {site.callee}(...)` hands the kernel a raw "
                    "generator, not a waitable (KernelError at runtime)"
                )
                hint = (
                    f"use `yield from {site.callee}(...)` to run it "
                    "inline, or `kernel.spawn(...)` to run it concurrently"
                )
            else:
                message = (
                    f"process generator `{site.callee}` called as a bare "
                    "statement: the generator is built and discarded, its "
                    "body never runs"
                )
                hint = (
                    f"use `yield from {site.callee}(...)` inside a process, "
                    f"or `kernel.spawn({site.callee}(...))` to run it "
                    "concurrently"
                )
            yield Finding(
                rule_id=self.rule_id, path=site.path, line=site.lineno,
                col=site.col, message=message, hint=hint,
                snippet=site.snippet,
            )


# ---------------------------------------------------------------------------
# KRN004: blocking host calls inside a process


_BLOCKING_TIME_ATTRS = {
    "sleep", "time", "monotonic", "perf_counter", "time_ns",
    "monotonic_ns", "perf_counter_ns", "process_time", "process_time_ns",
}
_BLOCKING_ROOTS = {"requests", "socket", "urllib", "subprocess", "shutil"}
_BLOCKING_OS_CHAINS = {"os.system", "os.popen", "os.remove", "os.unlink"}
_DATETIME_NOW = {"now", "utcnow", "today"}
_BLOCKING_BARE = {"open", "input"}


class BlockingCallInProcessRule(Rule):
    """KRN004: a kernel process never blocks on the host.

    DET001/SIM001 police wall-clock and real I/O per *file*; this rule
    polices per *process*, where the damage is worse: a ``time.sleep``
    inside a process does not advance virtual time but stalls the whole
    single-threaded kernel, and an ``open``/network call makes replayed
    latency load-dependent.  Processes get their time from ``Timeout``
    and their I/O from deferred replay plans -- nothing else.
    """

    rule_id = "KRN004"
    description = (
        "no wall-clock, sleep, or real-I/O calls inside kernel process "
        "bodies (virtual time comes from Timeout, I/O from replay plans)"
    )
    include = ("src/repro",)
    allow = (
        # The real-transport zone (DESIGN.md §14): the asyncio service and
        # its load generator are wall-clock by design and host no kernel
        # processes.  service/sim_transport.py is deliberately NOT listed --
        # it runs in virtual time and stays under full KRN scrutiny.
        "src/repro/service/protocol.py",
        "src/repro/service/server.py",
        "src/repro/service/client.py",
        "src/repro/tools/load_gen.py",
    )

    def check(self, tree, path, lines):
        for func in iter_processes(tree):
            for stmt in _own_statements(func):
                for node in _walk_exprs(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    reason = self._blocking_reason(node)
                    if reason is not None:
                        yield self.finding(
                            path, node,
                            f"blocking host call `{reason}` inside kernel "
                            "process body",
                            "use `yield Timeout(...)` for time and a "
                            "deferred-I/O replay plan for data movement",
                            lines,
                        )

    def _blocking_reason(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_BARE:
            return f"{func.id}(...)"
        chain = _attr_chain(func)
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        leaf = chain.rsplit(".", 1)[-1]
        if root == "time" and rest in _BLOCKING_TIME_ATTRS:
            return chain
        if root in _BLOCKING_ROOTS:
            return chain
        if chain in _BLOCKING_OS_CHAINS:
            return chain
        if "datetime" in chain.split(".")[:-1] and leaf in _DATETIME_NOW:
            return chain
        return None


KERNEL_RULES: tuple[type[Rule], ...] = (
    StaleSharedWriteRule,
    LeakedHandleRule,
    UniteratedProcessRule,
    BlockingCallInProcessRule,
)
