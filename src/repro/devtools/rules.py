"""The replint rule set.

Each rule is an AST pass over one file (the driver parses once and hands
every rule the same tree).  Rules yield :class:`~repro.devtools.findings.
Finding` objects; a rule that needs whole-repo state (``MET001``) collects
during :meth:`Rule.check` and reports from :meth:`Rule.finish`.

The determinism rules encode the invariant the whole benchmark suite rests
on: virtual time comes from :class:`~repro.sim.clock.SimClock`, randomness
comes from :class:`~repro.sim.rng.RngStream`, and nothing in the simulation
observes real time, real I/O latency, or interpreter hash ordering.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.findings import Finding

SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

_WALL_CLOCK_ATTRS = {
    "time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
    "perf_counter_ns", "process_time", "process_time_ns",
}
_TIME_MODULE_NAMES = {"time", "_time"}
_DATETIME_NOW_ATTRS = {"now", "utcnow", "today"}
_GLOBAL_NP_RANDOM = {
    "seed", "rand", "randn", "randint", "random", "choice", "shuffle",
    "permutation", "uniform", "normal", "random_sample",
}
_BLOCKING_IMPORTS = {"requests", "socket", "urllib", "http", "subprocess"}
_ACCOUNTING_CALL_ATTRS = {"inc", "record_error"}


class Rule:
    """Base class: one lint rule with a stable id and a default scope.

    Subclasses set :attr:`rule_id`, :attr:`description`, and the default
    ``include``/``allow`` path prefixes (overridable via
    :class:`~repro.devtools.config.LintConfig`), and implement
    :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""
    #: path prefixes the rule applies to (repo-relative, posix)
    include: tuple[str, ...] = ("src/repro", "benchmarks", "tests")
    #: path prefixes/files exempt from the rule -- documented exceptions
    allow: tuple[str, ...] = ()

    def check(self, tree: ast.AST, path: str, lines: list[str]) -> Iterator[Finding]:
        """Yield findings for one file.  ``lines`` is the file's source."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finish(self) -> Iterator[Finding]:
        """Yield cross-file findings after every file has been checked."""
        return iter(())

    # -- helpers -------------------------------------------------------------

    def finding(
        self, path: str, node: ast.AST, message: str, hint: str,
        lines: list[str],
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(
            rule_id=self.rule_id, path=path, line=line, col=col,
            message=message, hint=hint, snippet=snippet,
        )


def _attr_chain(node: ast.AST) -> str | None:
    """``np.random.default_rng`` -> ``"np.random.default_rng"``; None if the
    expression is not a plain dotted name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class NoWallClockRule(Rule):
    """DET001: real time must never leak into simulation code.

    Wall-clock reads (``time.time``/``time.monotonic``/``datetime.now``)
    make two runs of the same seed diverge; every timestamp must come from
    a :class:`~repro.sim.clock.SimClock` or an injected time source.  The
    only sanctioned homes of real time are the ``WallClock`` implementation
    itself, the documented ``core/page.py`` time-source shim, and the
    ``sim/hostclock.py`` host-clock API the kernel profiler measures
    host-CPU cost through (host readings never feed simulation decisions).
    """

    rule_id = "DET001"
    description = "no wall-clock reads outside ports/clock.py and sanctioned real-time zones"
    allow = (
        "src/repro/ports/clock.py",    # WallClock is the one wall-time impl
        "src/repro/core/page.py",      # documented set_time_source() shim
        "src/repro/sim/hostclock.py",  # sanctioned host-clock API (profiling)
        "tests/core/test_page.py",     # exercises the shim against real time
        # The real-transport zone (DESIGN.md §14): the asyncio service and
        # its load generator run on wall-clock time by design.
        # service/sim_transport.py is deliberately NOT listed -- it runs in
        # virtual time and stays under full determinism scrutiny.
        "src/repro/service/protocol.py",
        "src/repro/service/server.py",
        "src/repro/service/client.py",
        "src/repro/tools/load_gen.py",
    )

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if chain is None:
                continue
            root, __, rest = chain.partition(".")
            if root in _TIME_MODULE_NAMES and rest in _WALL_CLOCK_ATTRS:
                yield self.finding(
                    path, node,
                    f"wall-clock read `{chain}` in simulation code",
                    "read time from a SimClock (clock.now()) or an injected "
                    "time source; see DESIGN.md 'Determinism invariants'",
                    lines,
                )
            elif (
                rest.rpartition(".")[2] in _DATETIME_NOW_ATTRS
                and ("datetime" in chain.split(".") or "date" in chain.split("."))
            ):
                yield self.finding(
                    path, node,
                    f"wall-clock read `{chain}` in simulation code",
                    "derive timestamps from the scenario's SimClock instead",
                    lines,
                )


class SeededRngRule(Rule):
    """DET002: all randomness flows through named, seeded streams.

    The stdlib ``random`` module and numpy's global/unseeded generators
    are process-global state: any new draw anywhere perturbs every
    consumer, and the seed is invisible to the scenario.  Only
    :class:`~repro.sim.rng.RngStream` may construct generators.
    """

    rule_id = "DET002"
    description = "no `random` module or unseeded numpy generators outside ports/rng.py"
    allow = ("src/repro/ports/rng.py",)

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            path, node,
                            "stdlib `random` module imported",
                            "draw from an RngStream (repro.sim.rng) derived "
                            "from the scenario seed",
                            lines,
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        path, node,
                        "stdlib `random` module imported",
                        "draw from an RngStream (repro.sim.rng) derived "
                        "from the scenario seed",
                        lines,
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if len(parts) >= 2 and parts[-2:] == ["random", "default_rng"]:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            path, node,
                            "unseeded `default_rng()` (entropy from the OS)",
                            "seed it from the scenario's RngStream: "
                            "RngStream(seed, name).rng",
                            lines,
                        )
                elif (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[-1] in _GLOBAL_NP_RANDOM
                ):
                    yield self.finding(
                        path, node,
                        f"numpy global-state RNG call `{chain}`",
                        "use a per-component RngStream generator instead of "
                        "numpy's module-level state",
                        lines,
                    )


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, set/frozenset() call, or set comprehension."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class SetOrderRule(Rule):
    """DET003: set iteration order must not reach output.

    CPython set ordering depends on insertion history and element hashes
    (memory addresses, for objects), so any list/loop built directly from
    a set encodes interpreter state into results.  The heuristic flags the
    three shapes where set order demonstrably flows onward: ``list(set)``
    conversion, ``for``-loops over a set expression that append, and list
    comprehensions over a set expression.  ``sorted(...)`` is the fix and
    never matches.
    """

    rule_id = "DET003"
    description = "no set iteration where ordering reaches output (use sorted())"
    include = ("src/repro",)

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in {"list", "tuple"}
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        path, node,
                        f"`{node.func.id}()` materializes a set in hash order",
                        "wrap in sorted(...) so the order is a function of "
                        "the data, not the interpreter",
                        lines,
                    )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                if any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in {"append", "extend"}
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ) or any(
                    isinstance(inner, (ast.Yield, ast.YieldFrom))
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ):
                    yield self.finding(
                        path, node,
                        "loop over a set feeds an ordered container",
                        "iterate `sorted(the_set)` so downstream order is "
                        "deterministic",
                        lines,
                    )
            elif isinstance(node, ast.ListComp) and any(
                _is_set_expr(gen.iter) for gen in node.generators
            ):
                yield self.finding(
                    path, node,
                    "list comprehension over a set inherits hash order",
                    "comprehend over sorted(the_set) instead",
                    lines,
                )


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [_attr_chain(e) or "" for e in handler.type.elts]
    else:
        names = [_attr_chain(handler.type) or ""]
    return any(
        name.rpartition(".")[2] in {"Exception", "BaseException"}
        for name in names
    )


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    """True if the handler re-raises or visibly accounts the failure."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.AugAssign):          # errors += 1
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCOUNTING_CALL_ATTRS
            ):
                return True
    return False


class AccountedExceptRule(Rule):
    """ERR001: broad excepts must re-raise or account the failure.

    Section 7's lesson is that error *breakdowns* are the most useful
    debugging metric; a bare ``except`` that swallows silently deletes
    exactly that signal.  A broad handler passes only if it re-raises,
    bumps a counter (``.inc()``/``+= 1``), or records the error
    (``record_error``/``observe``/``append`` into an error log).
    """

    rule_id = "ERR001"
    description = "no broad except that swallows without re-raise or counter"
    include = ("src/repro", "benchmarks")

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _is_broad_handler(handler) and not _handler_accounts(handler):
                    yield self.finding(
                        path, handler,
                        "broad except swallows the failure unaccounted",
                        "narrow the exception type, or increment an error "
                        "counter / metrics.record_error() before continuing",
                        lines,
                    )


class MetricNameRule(Rule):
    """MET001: metric names are snake_case and kind-stable repo-wide.

    A ``Counter`` and a ``Gauge`` sharing one name would alias in every
    exporter and roll-up; mixed-case names break the Prometheus export
    convention.  The rule collects every literal name passed to
    ``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` and
    reports (a) names violating ``snake_case`` and (b) names registered
    under two different kinds anywhere in the repo.
    """

    rule_id = "MET001"
    description = "metric names snake_case, one kind per name repo-wide"
    include = ("src/repro", "benchmarks")
    _KINDS = {"counter", "gauge", "histogram"}

    def __init__(self) -> None:
        # name -> kind -> first (path, node-line, snippet) seen
        self._seen: dict[str, dict[str, Finding]] = {}

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KINDS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            kind = node.func.attr
            if not SNAKE_CASE.match(name):
                yield self.finding(
                    path, node,
                    f"metric name {name!r} is not snake_case",
                    "rename to ^[a-z][a-z0-9_]*$ so exports stay uniform",
                    lines,
                )
            placeholder = self.finding(
                path, node,
                f"metric {name!r} registered as {kind} here",
                "", lines,
            )
            self._seen.setdefault(name, {}).setdefault(kind, placeholder)

    def finish(self):
        for name, kinds in sorted(self._seen.items()):
            if len(kinds) <= 1:
                continue
            kind_list = ", ".join(sorted(kinds))
            for kind in sorted(kinds)[1:]:
                first = kinds[kind]
                yield Finding(
                    rule_id=self.rule_id, path=first.path, line=first.line,
                    col=first.col,
                    message=(
                        f"metric name {name!r} registered as multiple kinds "
                        f"({kind_list}) across the repo"
                    ),
                    hint="give each kind its own name; exporters key on "
                         "(name) alone",
                    snippet=first.snippet,
                )


class SimPurityRule(Rule):
    """SIM001: simulation code performs no real blocking I/O.

    A ``sleep`` or a real file/network round-trip re-couples virtual time
    to the host: latency becomes load-dependent and the event order can
    change between runs.  Real I/O is confined to the explicitly
    persistent components (journal, LSM WAL, local page store) and the
    ``tools``/``devtools`` CLIs.
    """

    rule_id = "SIM001"
    description = "no sleep / blocking I/O (open, requests, socket) in sim code"
    include = ("src/repro",)
    allow = (
        "src/repro/tools",              # operator CLIs: files are the point
        "src/repro/devtools",           # the linter reads source files
        "src/repro/core/recovery.py",   # crash-safe scope journal
        "src/repro/core/pagestore/local.py",  # the real-SSD page store
        "src/repro/kv/lsm.py",          # WAL + SSTable persistence
    )

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [a.name for a in node.names]
                    if isinstance(node, ast.Import)
                    else [node.module or ""]
                )
                for name in names:
                    root = name.split(".")[0]
                    if root in _BLOCKING_IMPORTS:
                        yield self.finding(
                            path, node,
                            f"blocking-I/O module `{root}` imported in "
                            "simulation code",
                            "model the interaction through a DataSource / "
                            "Device with virtual latency instead",
                            lines,
                        )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                if chain == "open":
                    yield self.finding(
                        path, node,
                        "real file I/O (`open`) in simulation code",
                        "keep simulation state in memory, or move the "
                        "persistence into an allowlisted store module",
                        lines,
                    )
                elif chain.rpartition(".")[2] == "sleep" and (
                    chain.startswith("time.") or chain == "sleep"
                ):
                    yield self.finding(
                        path, node,
                        f"`{chain}` blocks real time inside the simulation",
                        "schedule a callback on the EventLoop at "
                        "clock.now() + delay instead",
                        lines,
                    )


class NoClockAdvanceRule(Rule):
    """SIM002: domain code never advances the virtual clock itself.

    ``clock.advance()`` / ``clock.advance_to()`` is the *driver's* verb:
    harnesses and the event kernel move time, and everything else
    experiences it.  A storage/presto/hdfs_cache component that advances
    the clock mid-operation silently serializes concurrent requests (the
    latency-summing bug the event kernel exists to remove) and makes its
    timing unreproducible under the kernel engine, where ``yield
    Timeout(...)`` is the only legitimate way to let time pass.
    """

    rule_id = "SIM002"
    description = (
        "no clock.advance()/advance_to() inside repro.presto, "
        "repro.storage, or repro.hdfs_cache domain code"
    )
    include = (
        "src/repro/presto",
        "src/repro/storage",
        "src/repro/hdfs_cache",
    )
    allow = ()

    _ADVANCE_ATTRS = {"advance", "advance_to"}

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._ADVANCE_ATTRS
            ):
                yield self.finding(
                    path, node,
                    f"`.{func.attr}(...)` advances the virtual clock from "
                    "inside domain code",
                    "let the harness (or the event kernel via `yield "
                    "Timeout(...)`) move time; domain code only reads "
                    "clock.now()",
                    lines,
                )


class NoMutableDefaultRule(Rule):
    """API001: no mutable default arguments.

    A ``def f(x, acc=[])`` default is created once and shared across
    calls -- state leaks between scenarios, which is both a correctness
    bug and a determinism hazard (results depend on call history).
    """

    rule_id = "API001"
    description = "no mutable default arguments"
    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in self._MUTABLE_CALLS
            and not default.args
            and not default.keywords
        )

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        path, default,
                        f"mutable default argument in `{node.name}()`",
                        "default to None and construct inside the function",
                        lines,
                    )


class NoPrintRule(Rule):
    """LOG001: no ``print()`` outside the CLIs and the benchmark reporter.

    Stray prints corrupt machine-read reports and hide behind pytest
    capture; the sanctioned output paths are the ``tools``/``devtools``
    CLIs and ``benchmarks/harness.py``'s ``emit_report``.
    """

    rule_id = "LOG001"
    description = "no print() outside tools/, devtools/, and the bench reporter"
    allow = (
        "src/repro/tools",
        "src/repro/devtools",
        "benchmarks/harness.py",        # emit_report: the one reporter
        "src/repro/service/server.py",  # CLI banner + drain summary
    )

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    path, node,
                    "print() in library/test code",
                    "return the value, raise, or record a metric; reports "
                    "go through benchmarks.harness.emit_report",
                    lines,
                )


_SPAN_OPENERS = {"span", "start_span"}
_SPAN_CLOSERS = {"finish", "end_span", "end", "close"}


class SpanLifecycleRule(Rule):
    """TRC001: tracer spans are closed via ``with`` or ``try/finally``.

    A span left open corrupts every analysis downstream of it -- the
    attribution reconciliation, the critical path, and the sanitizer's
    span-leak check all assume the tree is closed when the operation
    returns.  A ``tracer.span(...)`` call is sanctioned only as a
    ``with``-statement context expression, or assigned to a name that some
    ``finally`` block in the same file demonstrably closes
    (``.finish()``/``.end_span()``/``.end()``/``.close()``).  Anything
    else -- a bare expression statement, a span passed straight into
    another call -- leaks on the first exception.
    """

    rule_id = "TRC001"
    description = "tracer spans closed via context manager or try/finally"
    include = ("src/repro",)
    allow = (
        "src/repro/obs/span.py",    # the lifecycle implementation itself
        "src/repro/obs/tracer.py",  # creates and finishes spans by design
    )

    @staticmethod
    def _is_opener(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SPAN_OPENERS
        )

    def check(self, tree, path, lines):
        sanctioned: set[int] = set()
        closed_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._is_opener(item.context_expr):
                        sanctioned.add(id(item.context_expr))
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for inner in ast.walk(stmt):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr in _SPAN_CLOSERS
                            and isinstance(inner.func.value, ast.Name)
                        ):
                            closed_names.add(inner.func.value.id)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and self._is_opener(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in closed_names
            ):
                sanctioned.add(id(node.value))
        for node in ast.walk(tree):
            if self._is_opener(node) and id(node) not in sanctioned:
                yield self.finding(
                    path, node,
                    "span opened without a guaranteed close",
                    "use `with tracer.span(...) as span:` or close the "
                    "assigned span in a finally block",
                    lines,
                )


_RING_MUTATORS = {
    "add_node", "remove_node", "mark_offline", "mark_online", "evict_expired",
}


class RingMutationRule(Rule):
    """CHN001: presto domain code never mutates the hash ring directly.

    Every membership change must flow through the cluster lifecycle API
    (:class:`repro.cluster.membership.ClusterMembership` /
    :class:`repro.cluster.lifecycle.ClusterLifecycle`) so the event is
    counted, timestamped on the virtual clock, measured for remapped
    keys, and propagated to the live executor pool.  A direct
    ``ring.add_node(...)`` from coordinator/scheduler code silently skips
    all of that -- the churn metrics under-report and warmup never fires.
    """

    rule_id = "CHN001"
    description = (
        "no direct ring mutation in repro.presto; membership changes go "
        "through the cluster lifecycle API"
    )
    include = ("src/repro/presto",)
    allow = (
        "src/repro/presto/hashring.py",  # the ring implementation itself
    )

    def check(self, tree, path, lines):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _RING_MUTATORS:
                yield self.finding(
                    path, node,
                    f"direct ring mutation `.{func.attr}(...)` in presto "
                    "domain code",
                    "route the membership change through ClusterMembership "
                    "/ ClusterLifecycle (repro.cluster) so metrics, events, "
                    "and warmup stay complete",
                    lines,
                )


def default_rules() -> list[Rule]:
    """Fresh instances of every rule (MET001, KRN003, and the ARC family
    carry cross-file state).

    The flow-aware rule families live in their own modules and need the
    :class:`Rule` base defined here, so their imports are call-time
    locals -- by the first ``default_rules()`` call both modules load
    cleanly regardless of which one the caller imported first.
    """
    from repro.devtools.graph import (
        DeferredImportHookRule,
        ImportContractRule,
        ImportCycleRule,
    )
    from repro.devtools.kernelcheck import (
        BlockingCallInProcessRule,
        LeakedHandleRule,
        StaleSharedWriteRule,
        UniteratedProcessRule,
    )

    return [
        NoWallClockRule(),
        SeededRngRule(),
        SetOrderRule(),
        AccountedExceptRule(),
        MetricNameRule(),
        SimPurityRule(),
        NoClockAdvanceRule(),
        NoMutableDefaultRule(),
        NoPrintRule(),
        SpanLifecycleRule(),
        RingMutationRule(),
        StaleSharedWriteRule(),
        LeakedHandleRule(),
        UniteratedProcessRule(),
        BlockingCallInProcessRule(),
        ImportContractRule(),
        DeferredImportHookRule(),
        ImportCycleRule(),
    ]


def __getattr__(name: str):
    # ALL_RULES stays importable (`from repro.devtools.rules import
    # ALL_RULES`) but is materialized lazily, after the kernelcheck/graph
    # modules can import the Rule base from this one.
    if name == "ALL_RULES":
        return tuple(type(rule) for rule in default_rules())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
