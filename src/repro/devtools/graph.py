"""Project import graph + architecture contracts (the ``ARC`` rule family).

The per-file rules in :mod:`repro.devtools.rules` cannot see layering: a
single ``import`` statement is only wrong relative to *where the whole
package sits in the dependency order*.  This module builds a project-wide
symbol table (module name -> file) and import graph (module -> import
sites, each classified as top-level, deferred-to-call-time, or
``TYPE_CHECKING``-only), then checks it against :data:`DEFAULT_CONTRACTS`
-- the layering rules of this codebase declared as data:

- ``repro.sim`` is the simulation substrate and imports no domain package;
- ``repro.obs`` sits below everything (tracing must be importable from
  anywhere without dragging in domain code);
- ``repro.devtools`` vets the system and therefore must not import it;
- ``repro.presto`` reaches ``repro.cluster`` only through the sanctioned
  runtime hook (``PrestoCluster.create`` deferring to
  ``repro.cluster.membership``) -- the generalization of the one-off
  CHN001 "no direct ring mutation" rule to the import layer;
- ``repro.errors`` is a leaf module of shared exception types.

Three rules report violations: ``ARC001`` (top-level forbidden import),
``ARC002`` (deferred forbidden import outside a sanctioned hook), and
``ARC003`` (module-level import cycle, found via Tarjan SCC).  Imports
under ``if TYPE_CHECKING:`` are type-only and exempt from all three.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.rules import Rule

_PROJECT_ROOT_PACKAGE = "repro"

_DOMAIN_PACKAGES = (
    "repro.analysis", "repro.cluster", "repro.core", "repro.distributed",
    "repro.format", "repro.fuse", "repro.hdfs_cache", "repro.kv",
    "repro.presto", "repro.resilience", "repro.service", "repro.storage",
    "repro.tools", "repro.workload",
)


def module_name_for(path: str) -> str | None:
    """Repo-relative posix path -> dotted module name, or None.

    ``src/repro/presto/coordinator.py`` -> ``repro.presto.coordinator``;
    package ``__init__.py`` files name the package itself.  Paths outside
    ``src/`` (tests, benchmarks) are not project modules.
    """
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    parts = path[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or parts[0] != _PROJECT_ROOT_PACKAGE:
        return None
    return ".".join(parts)


def dotted_in(module: str, prefix: str) -> bool:
    """Is ``module`` the package ``prefix`` or inside it (dotted prefix)?"""
    return module == prefix or module.startswith(prefix + ".")


@dataclass(frozen=True)
class ImportSite:
    """One import edge: where it points and how it is executed."""

    target: str
    lineno: int
    col: int
    #: inside a function/method body -- executed at call time, not import time
    deferred: bool
    #: under ``if TYPE_CHECKING:`` -- never executed at runtime
    type_checking: bool


class _ImportCollector(ast.NodeVisitor):
    """Walk one module's tree, classifying every import edge."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.sites: list[ImportSite] = []
        self._depth = 0          # nesting inside function bodies
        self._type_checking = 0  # nesting inside `if TYPE_CHECKING:` bodies

    # -- classification context ---------------------------------------------

    def _is_type_checking_test(self, test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking_test(node.test):
            self._type_checking += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    # -- the edges ----------------------------------------------------------

    def _add(self, target: str, node: ast.AST) -> None:
        self.sites.append(
            ImportSite(
                target=target,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                deferred=self._depth > 0,
                type_checking=self._type_checking > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # resolve `from .x import y` against this module's package
            package_parts = self.module.split(".")
            if not self.is_package:
                package_parts = package_parts[:-1]
            drop = node.level - 1
            if drop:
                package_parts = package_parts[:-drop] if drop < len(package_parts) else []
            prefix = ".".join(package_parts)
            base = f"{prefix}.{base}" if base and prefix else (prefix or base)
        if base:
            self._add(base, node)
            for alias in node.names:
                if alias.name != "*":
                    self._add(f"{base}.{alias.name}", node)
        else:
            for alias in node.names:
                self._add(alias.name, node)


class ImportGraph:
    """Symbol table (module -> path) plus classified import edges."""

    def __init__(self) -> None:
        self.paths: dict[str, str] = {}
        self.sites: dict[str, list[ImportSite]] = {}

    def add_module(self, path: str, tree: ast.AST) -> str | None:
        module = module_name_for(path)
        if module is None:
            return None
        collector = _ImportCollector(module, is_package=path.endswith("__init__.py"))
        collector.visit(tree)
        self.paths[module] = path
        self.sites[module] = collector.sites
        return module

    def resolve(self, target: str) -> str | None:
        """Trim ``repro.presto.split.Split`` down to a known module name."""
        name = target
        while name:
            if name in self.paths:
                return name
            name, _, __ = name.rpartition(".")
        return None

    def runtime_edges(self) -> dict[str, set[str]]:
        """module -> imported modules, top-level at import time only."""
        edges: dict[str, set[str]] = {}
        for module, sites in self.sites.items():
            out: set[str] = set()
            for site in sites:
                if site.deferred or site.type_checking:
                    continue
                resolved = self.resolve(site.target)
                if resolved is not None and resolved != module:
                    out.add(resolved)
            edges[module] = out
        return edges

    def cycles(self) -> list[list[str]]:
        """Module-level import cycles: Tarjan SCCs of the runtime edges.

        Returns each cycle as a sorted module list; deterministic order.
        """
        edges = self.runtime_edges()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            # iterative Tarjan: (module, neighbor iterator) work stack
            work = [(node, iter(sorted(edges.get(node, ()))))]
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, neighbors = work[-1]
                advanced = False
                for nxt in neighbors:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[current] = min(low[current], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])
                if low[current] == index[current]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == current:
                            break
                    if len(scc) > 1 or current in edges.get(current, ()):
                        sccs.append(sorted(scc))

        for module in sorted(edges):
            if module not in index:
                strongconnect(module)
        return sorted(sccs)


@dataclass(frozen=True)
class Contract:
    """One layering rule, declared as data.

    ``scope`` names the packages the contract governs (dotted prefixes);
    any import from a scoped module to a ``forbid`` prefix violates it.
    ``exempt`` carves named adapter modules out of the scope -- the
    reviewed seams where a boundary is crossed *on purpose* (e.g. the
    simulated pagestore inside the otherwise sim-free cache core).
    ``runtime_hooks`` are ``(source_module, target_prefix)`` pairs naming
    the *deferred* imports the contract sanctions -- the documented
    runtime seams.  ``TYPE_CHECKING`` imports never count.
    """

    name: str
    description: str
    scope: tuple[str, ...]
    forbid: tuple[str, ...]
    exempt: tuple[str, ...] = ()
    runtime_hooks: tuple[tuple[str, str], ...] = ()

    def governs(self, module: str) -> bool:
        if any(dotted_in(module, prefix) for prefix in self.exempt):
            return False
        return any(dotted_in(module, prefix) for prefix in self.scope)

    def forbids(self, target: str) -> bool:
        return any(dotted_in(target, prefix) for prefix in self.forbid)

    def sanctions(self, module: str, target: str) -> bool:
        return any(
            module == source and dotted_in(target, prefix)
            for source, prefix in self.runtime_hooks
        )


DEFAULT_CONTRACTS: tuple[Contract, ...] = (
    Contract(
        name="sim-substrate-purity",
        description=(
            "repro.sim is the simulation substrate (clock, rng, kernel, "
            "sanitizer); it imports no domain package"
        ),
        scope=("repro.sim",),
        forbid=_DOMAIN_PACKAGES + ("repro.devtools",),
    ),
    Contract(
        name="obs-below-everything",
        description=(
            "repro.obs (tracing) must stay importable from any layer, so "
            "it imports neither domain packages nor the sim substrate at "
            "import time; the kernel instruments (profiler, telemetry "
            "sampler) reach down only through deferred sanctioned hooks"
        ),
        scope=("repro.obs",),
        forbid=_DOMAIN_PACKAGES + ("repro.devtools", "repro.sim"),
        runtime_hooks=(
            # the scheduler profiler classifies sim waitables and reads
            # the sanctioned host clock, both lazily at attach/step time
            ("repro.obs.profiler", "repro.sim"),
            # the telemetry sampler yields kernel Timeouts and buffers
            # points in analysis RingSeries, created on first use
            ("repro.obs.sampler", "repro.sim.kernel"),
            ("repro.obs.sampler", "repro.analysis.timeseries"),
        ),
    ),
    Contract(
        name="devtools-self-contained",
        description=(
            "the static analyzer vets the system, so it must not import "
            "it: repro.devtools depends only on itself and the stdlib"
        ),
        scope=("repro.devtools",),
        forbid=_DOMAIN_PACKAGES + (
            "repro.sim", "repro.obs", "repro.errors", "repro.ports",
        ),
    ),
    Contract(
        name="presto-cluster-hook",
        description=(
            "repro.presto never imports repro.cluster at import time; the "
            "one sanctioned runtime hook is PrestoCluster.create deferring "
            "to repro.cluster.membership"
        ),
        scope=("repro.presto",),
        forbid=("repro.cluster",),
        runtime_hooks=(
            ("repro.presto.coordinator", "repro.cluster.membership"),
        ),
    ),
    Contract(
        name="ports-leaf",
        description=(
            "repro.ports is the hexagonal port vocabulary (clock, rng, "
            "concurrency) and a strict leaf: it imports nothing from repro, "
            "so every layer -- including repro.sim -- may depend on it"
        ),
        scope=("repro.ports",),
        forbid=("repro",),
    ),
    Contract(
        name="cache-core-transport-agnostic",
        description=(
            "the cache core (repro.core / CacheEngine) and the asyncio "
            "service never import the virtual-time substrate repro.sim; "
            "time, randomness, and scheduling arrive via repro.ports.  The "
            "two reviewed adapters that do bridge into the kernel are "
            "core.pagestore.simulated and service.sim_transport"
        ),
        scope=("repro.core", "repro.service"),
        forbid=("repro.sim",),
        exempt=(
            "repro.core.pagestore.simulated",
            "repro.service.sim_transport",
        ),
    ),
    Contract(
        name="errors-leaf",
        description=(
            "repro.errors is the shared exception vocabulary and a strict "
            "leaf: it imports nothing from repro"
        ),
        scope=("repro.errors",),
        forbid=("repro",),
    ),
)


class _GraphRule(Rule):
    """Shared mechanics: collect the graph in check(), report in finish()."""

    include = ("src/repro",)

    def __init__(self, contracts: tuple[Contract, ...] = DEFAULT_CONTRACTS) -> None:
        self.contracts = contracts
        self.graph = ImportGraph()
        self._lines: dict[str, list[str]] = {}

    def check(self, tree: ast.AST, path: str, lines: list[str]) -> Iterator[Finding]:
        if self.graph.add_module(path, tree) is not None:
            self._lines[path] = lines
        return iter(())

    def _finding_at(
        self, path: str, lineno: int, col: int, message: str, hint: str,
    ) -> Finding:
        lines = self._lines.get(path, [])
        snippet = lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
        return Finding(
            rule_id=self.rule_id, path=path, line=lineno, col=col,
            message=message, hint=hint, snippet=snippet,
        )

    def _violations(self, *, deferred: bool) -> Iterator[tuple[Contract, str, ImportSite]]:
        """(contract, source module, site) for every forbidden import edge.

        One ``from x import A, B`` statement produces a site per name;
        violations are deduplicated per (module, line, contract).
        """
        seen: set[tuple[str, int, str]] = set()
        for module in sorted(self.graph.sites):
            for contract in self.contracts:
                if not contract.governs(module):
                    continue
                for site in self.graph.sites[module]:
                    if site.type_checking or site.deferred is not deferred:
                        continue
                    if not contract.forbids(site.target):
                        continue
                    if dotted_in(site.target, _PROJECT_ROOT_PACKAGE) and contract.governs(
                        site.target
                    ):
                        # intra-package imports are the package's own business
                        continue
                    if deferred and contract.sanctions(module, site.target):
                        continue
                    key = (module, site.lineno, contract.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield contract, module, site


class ImportContractRule(_GraphRule):
    """ARC001: top-level imports respect the declared layering contracts.

    The dependency order of the packages is an invariant like any other:
    ``repro.sim`` staying domain-free is what lets the kernel be reused
    under every scenario, and ``repro.devtools`` staying repo-free is
    what lets the linter vet a broken tree.  A contract violation at
    import time couples layers for every user of the module.
    """

    rule_id = "ARC001"
    description = (
        "top-level imports obey the architecture contracts (layering "
        "declared in repro.devtools.graph.DEFAULT_CONTRACTS)"
    )

    def finish(self) -> Iterator[Finding]:
        for contract, module, site in self._violations(deferred=False):
            yield self._finding_at(
                self.graph.paths[module], site.lineno, site.col,
                f"`{module}` imports `{site.target}` at import time; "
                f"contract `{contract.name}` forbids it",
                contract.description,
            )


class DeferredImportHookRule(_GraphRule):
    """ARC002: deferred imports across a forbidden boundary need a hook.

    A function-level import dodges the import-time cycle but still
    couples the layers at runtime.  Each contract names its sanctioned
    runtime hooks (e.g. ``PrestoCluster.create`` ->
    ``repro.cluster.membership``); anything else is a back door.
    """

    rule_id = "ARC002"
    description = (
        "deferred (function-level) imports across a contract boundary "
        "are only allowed through sanctioned runtime hooks"
    )

    def finish(self) -> Iterator[Finding]:
        for contract, module, site in self._violations(deferred=True):
            hooks = "; ".join(
                f"{source} -> {prefix}" for source, prefix in contract.runtime_hooks
            ) or "none declared"
            yield self._finding_at(
                self.graph.paths[module], site.lineno, site.col,
                f"`{module}` defers an import of `{site.target}` across "
                f"the `{contract.name}` boundary without a sanctioned hook",
                f"sanctioned hooks for this contract: {hooks}; add one to "
                "DEFAULT_CONTRACTS (reviewed) or route through the owning "
                "layer",
            )


class ImportCycleRule(_GraphRule):
    """ARC003: no module-level import cycles.

    Python tolerates package-level cycles resolved through deferred
    imports, but a *module-level* cycle makes import order significant:
    whichever module loads first sees a half-initialized partner.  The
    graph here contains none; this rule keeps it that way.
    """

    rule_id = "ARC003"
    description = "no module-level import cycles (Tarjan SCC over runtime edges)"

    def finish(self) -> Iterator[Finding]:
        for cycle in self.graph.cycles():
            anchor = cycle[0]
            members = set(cycle)
            site = next(
                (
                    s for s in self.graph.sites.get(anchor, ())
                    if not s.deferred and not s.type_checking
                    and self.graph.resolve(s.target) in members
                ),
                None,
            )
            lineno = site.lineno if site is not None else 1
            col = site.col if site is not None else 0
            chain = " -> ".join(cycle + [anchor])
            yield self._finding_at(
                self.graph.paths[anchor], lineno, col,
                f"module-level import cycle: {chain}",
                "break the cycle with a deferred import at the sanctioned "
                "seam or by moving the shared type down a layer",
            )
