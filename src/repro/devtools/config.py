"""Per-rule path scoping and allowlists.

Every rule ships a default scope (``include`` prefixes) and a default
allowlist (documented exceptions such as the ``core/page.py`` time-source
shim).  A JSON config file can extend either, or disable a rule outright::

    {
        "DET001": {"allow": ["src/repro/experimental/replay.py"]},
        "disable": ["API001"]
    }

Allowlist entries are matched as path *prefixes* (a directory entry covers
everything under it), on repo-relative posix paths.  Keeping the defaults
in code -- next to the rule they scope -- means an allowlist edit shows up
in review as a diff to a named, documented exception list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.rules import Rule, default_rules


def _matches_prefix(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        path == prefix or path.startswith(prefix.rstrip("/") + "/")
        for prefix in prefixes
    )


@dataclass
class LintConfig:
    """Resolved scoping for one lint run."""

    #: rule_id -> extra allowlist prefixes (merged over rule defaults)
    extra_allow: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: rule_id -> replacement include prefixes (overrides rule defaults)
    include_override: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: rule ids disabled outright
    disabled: frozenset[str] = frozenset()

    @classmethod
    def load(cls, path: str | Path) -> "LintConfig":
        """Parse the JSON config format documented above."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict):
            raise ValueError(f"lint config must be a JSON object, got {type(raw).__name__}")
        extra_allow: dict[str, tuple[str, ...]] = {}
        include_override: dict[str, tuple[str, ...]] = {}
        disabled = frozenset(raw.pop("disable", ()))
        for rule_id, section in raw.items():
            if not isinstance(section, dict):
                raise ValueError(f"config section for {rule_id} must be an object")
            if "allow" in section:
                extra_allow[rule_id] = tuple(section["allow"])
            if "include" in section:
                include_override[rule_id] = tuple(section["include"])
        return cls(
            extra_allow=extra_allow,
            include_override=include_override,
            disabled=disabled,
        )

    # -- queries the driver asks --------------------------------------------

    def rule_enabled(self, rule: Rule) -> bool:
        return rule.rule_id not in self.disabled

    def applies(self, rule: Rule, path: str) -> bool:
        """Is ``path`` in scope for ``rule`` and not allowlisted?"""
        include = self.include_override.get(rule.rule_id, rule.include)
        if not _matches_prefix(path, tuple(include)):
            return False
        allow = rule.allow + self.extra_allow.get(rule.rule_id, ())
        return not _matches_prefix(path, tuple(allow))

    def describe(self) -> list[dict]:
        """Rule table for ``--list-rules``: id, description, scope."""
        rows = []
        for rule in default_rules():
            include = self.include_override.get(rule.rule_id, rule.include)
            allow = rule.allow + self.extra_allow.get(rule.rule_id, ())
            rows.append(
                {
                    "rule": rule.rule_id,
                    "description": rule.description,
                    "enabled": self.rule_enabled(rule),
                    "include": list(include),
                    "allow": list(allow),
                }
            )
        return rows
