"""``replint`` CLI -- the determinism lint gate.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint src --format json
    python -m repro.devtools.lint src tests benchmarks --write-baseline
    python -m repro.devtools.lint --list-rules

Exit codes: 0 clean (no non-baselined findings), 1 findings, 2 usage /
config errors.  CI runs the first form against the committed (empty)
baseline; a single stray ``time.time()`` in ``src/repro/`` fails the job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.devtools.baseline import load_baseline, split_by_baseline, write_baseline
from repro.devtools.config import LintConfig
from repro.devtools.driver import LintDriver
from repro.devtools.reporters import REPORTERS

DEFAULT_BASELINE = ".replint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="Determinism lint for the repro codebase.",
    )
    parser.add_argument(
        "targets", nargs="*", default=[],
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--config", default=None,
        help="JSON config extending per-rule allowlists / scopes",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root for path normalization (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root) if args.root else Path.cwd()

    try:
        config = LintConfig.load(args.config) if args.config else LintConfig()
    except (OSError, ValueError) as exc:
        print(f"replint: bad config: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        for row in config.describe():
            state = "on " if row["enabled"] else "off"
            print(f"{row['rule']}  [{state}]  {row['description']}")
            print(f"         include: {', '.join(row['include'])}")
            if row["allow"]:
                print(f"         allow:   {', '.join(row['allow'])}")
        return 0

    if not args.targets:
        print("replint: no targets given (try: src tests benchmarks)",
              file=sys.stderr)
        return 2

    driver = LintDriver(config=config, root=root)
    findings = driver.run(args.targets)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"replint: wrote {count} finding(s) to {baseline_path}")
        return 0

    try:
        baselined = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return 2
    new, suppressed = split_by_baseline(findings, baselined)

    report = REPORTERS[args.format](
        new, suppressed=len(suppressed), files_checked=driver.files_checked
    )
    print(report)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
