"""``replint`` CLI -- the determinism + architecture lint gate.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint src --format sarif --output replint.sarif
    python -m repro.devtools.lint src --changed-only --diff-base origin/main
    python -m repro.devtools.lint src tests benchmarks --write-baseline
    python -m repro.devtools.lint --list-rules

Exit codes: 0 clean (no non-baselined findings), 1 findings, 2 usage /
config errors.  CI runs the SARIF form against the committed (empty)
baseline; a single stray ``time.time()`` in ``src/repro/`` fails the job.
``--changed-only`` narrows the run to files ``git diff`` (plus untracked
files) reports against ``--diff-base`` -- the fast pre-commit loop.
Whole-program rules (``KRN003``, the ``ARC`` family) still see only the
selected files in that mode; the full run remains the authority.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.devtools.baseline import load_baseline, split_by_baseline, write_baseline
from repro.devtools.config import LintConfig
from repro.devtools.driver import LintDriver
from repro.devtools.reporters import REPORTERS, render_text

DEFAULT_BASELINE = ".replint-baseline.json"


def changed_python_files(root: Path, base: str) -> list[str]:
    """Repo-relative ``.py`` paths changed vs ``base``, plus untracked ones.

    Raises :class:`RuntimeError` when git cannot answer (not a repo, bad
    base ref) -- the CLI maps that to exit code 2.
    """

    def git(*args: str) -> list[str]:
        proc = subprocess.run(
            ["git", *args], cwd=root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise RuntimeError(
                f"git {' '.join(args)} failed: "
                f"{detail[0] if detail else 'unknown error'}"
            )
        return proc.stdout.splitlines()

    names = set(git("diff", "--name-only", base, "--"))
    names.update(git("ls-files", "--others", "--exclude-standard"))
    return sorted(n for n in names if n.endswith(".py"))


def _under_targets(path: str, targets: list[str]) -> bool:
    prefixes = [Path(t).as_posix().rstrip("/") for t in targets]
    return any(path == p or path.startswith(p + "/") for p in prefixes)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="Determinism lint for the repro codebase.",
    )
    parser.add_argument(
        "targets", nargs="*", default=[],
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--config", default=None,
        help="JSON config extending per-rule allowlists / scopes",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root for path normalization (default: cwd)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files git reports changed vs --diff-base "
        "(plus untracked files), intersected with the targets",
    )
    parser.add_argument(
        "--diff-base", default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also write the formatted report to this file "
        "(stdout keeps the text report)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root) if args.root else Path.cwd()

    try:
        config = LintConfig.load(args.config) if args.config else LintConfig()
    except (OSError, ValueError) as exc:
        print(f"replint: bad config: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        for row in config.describe():
            state = "on " if row["enabled"] else "off"
            print(f"{row['rule']}  [{state}]  {row['description']}")
            print(f"         include: {', '.join(row['include'])}")
            if row["allow"]:
                print(f"         allow:   {', '.join(row['allow'])}")
        return 0

    if not args.targets:
        print("replint: no targets given (try: src tests benchmarks)",
              file=sys.stderr)
        return 2

    targets: list[str] = list(args.targets)
    if args.changed_only:
        try:
            changed = changed_python_files(root, args.diff_base)
        except RuntimeError as exc:
            print(f"replint: {exc}", file=sys.stderr)
            return 2
        targets = [
            name for name in changed
            if _under_targets(name, args.targets) and (root / name).exists()
        ]
        if not targets:
            print(
                f"replint: no changed python files under "
                f"{', '.join(args.targets)} (vs {args.diff_base})"
            )
            return 0

    driver = LintDriver(config=config, root=root)
    findings = driver.run(targets)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"replint: wrote {count} finding(s) to {baseline_path}")
        return 0

    try:
        baselined = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return 2
    new, suppressed = split_by_baseline(findings, baselined)

    suppressed_count = len(suppressed) + driver.inline_suppressed
    report = REPORTERS[args.format](
        new, suppressed=suppressed_count, files_checked=driver.files_checked
    )
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        if args.format != "text":
            report = render_text(
                new,
                suppressed=suppressed_count,
                files_checked=driver.files_checked,
            )
    print(report)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
