"""Lint findings: what a rule reports and how a baseline identifies it.

A finding pins a rule violation to ``file:line`` and carries a fix hint so
the CI failure message is actionable without opening the linter's source.
The baseline fingerprint deliberately excludes the line *number* (it hashes
the line's stripped text instead) so that unrelated edits above a baselined
finding do not resurrect it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: stable identifier, e.g. ``DET001``.
        path: repo-relative posix path of the offending file.
        line: 1-based line number.
        col: 0-based column offset.
        message: what is wrong, in one sentence.
        hint: how to fix it (or how to allowlist it, for sanctioned
            exceptions).
        snippet: the stripped source line, used for fingerprinting and
            shown by the text reporter.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def fingerprint(self) -> str:
        """Stable identity for baselining: ``(path, rule, line text)``.

        Two findings of the same rule on identical source lines in one
        file share a fingerprint; a baseline entry therefore suppresses
        all of them, which errs on the forgiving side.
        """
        payload = f"{self.path}::{self.rule_id}::{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
