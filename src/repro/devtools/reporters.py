"""Finding reporters: text for humans, JSON and SARIF for machines.

The text format is the classic ``path:line:col RULE message`` one-liner
(clickable in editors and CI logs) followed by the offending source line
and the fix hint.  The JSON format carries the same fields plus
fingerprints, so a CI annotator or the baseline tool can consume it
without re-running the linter.  The SARIF 2.1.0 format is what GitHub
code scanning ingests -- CI uploads it so findings surface as inline PR
annotations; ``partialFingerprints`` reuses the replint fingerprint, so
GitHub's open/fixed tracking survives line shifts exactly like the
baseline does.
"""

from __future__ import annotations

import json

from repro.devtools.findings import Finding, sort_findings

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: driver-synthesized rules that never appear in default_rules()
_SYNTHETIC_RULES = {
    "PARSE": "file does not parse; no rule has vetted it",
    "SUP001": "inline `replint: disable` comment matches no finding",
}
_SARIF_LEVELS = {"SUP001": "warning"}


def render_text(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    lines: list[str] = []
    for finding in sort_findings(findings):
        lines.append(f"{finding.location()} {finding.rule_id} {finding.message}")
        if finding.snippet:
            lines.append(f"    | {finding.snippet}")
        if finding.hint:
            lines.append(f"    = hint: {finding.hint}")
    summary = (
        f"replint: {len(findings)} finding(s) in {files_checked} file(s)"
    )
    if suppressed:
        summary += f" ({suppressed} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    payload = {
        "findings": [f.to_dict() for f in sort_findings(findings)],
        "summary": {
            "findings": len(findings),
            "suppressed": suppressed,
            "files_checked": files_checked,
        },
    }
    return json.dumps(payload, indent=2)


def render_sarif(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    # local import: reporters must stay importable without dragging the
    # whole rule set in for the text/json paths
    from repro.devtools.rules import default_rules

    descriptions = {r.rule_id: r.description for r in default_rules()}
    descriptions.update(_SYNTHETIC_RULES)
    rule_ids = sorted(descriptions)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in sort_findings(findings):
        message = finding.message
        if finding.hint:
            message += f" ({finding.hint})"
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index.get(finding.rule_id, -1),
                "level": _SARIF_LEVELS.get(finding.rule_id, "error"),
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                                "snippet": {"text": finding.snippet},
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "replintFingerprint/v1": finding.fingerprint(),
                },
            }
        )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": descriptions[rule_id]
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
                "properties": {
                    "findings": len(findings),
                    "suppressed": suppressed,
                    "filesChecked": files_checked,
                },
            }
        ],
    }
    return json.dumps(payload, indent=2)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
