"""Finding reporters: text for humans, JSON for machines.

The text format is the classic ``path:line:col RULE message`` one-liner
(clickable in editors and CI logs) followed by the offending source line
and the fix hint.  The JSON format carries the same fields plus
fingerprints, so a CI annotator or the baseline tool can consume it
without re-running the linter.
"""

from __future__ import annotations

import json

from repro.devtools.findings import Finding, sort_findings


def render_text(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    lines: list[str] = []
    for finding in sort_findings(findings):
        lines.append(f"{finding.location()} {finding.rule_id} {finding.message}")
        if finding.snippet:
            lines.append(f"    | {finding.snippet}")
        if finding.hint:
            lines.append(f"    = hint: {finding.hint}")
    summary = (
        f"replint: {len(findings)} finding(s) in {files_checked} file(s)"
    )
    if suppressed:
        summary += f" ({suppressed} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    files_checked: int = 0,
) -> str:
    payload = {
        "findings": [f.to_dict() for f in sort_findings(findings)],
        "summary": {
            "findings": len(findings),
            "suppressed": suppressed,
            "files_checked": files_checked,
        },
    }
    return json.dumps(payload, indent=2)


REPORTERS = {"text": render_text, "json": render_json}
