"""Baseline files: adopt the gate now, burn down legacy findings later.

A baseline is a JSON list of finding fingerprints (see
:meth:`~repro.devtools.findings.Finding.fingerprint`).  The lint gate
fails only on findings *not* in the baseline, so a new rule can land with
its existing violations recorded and tracked instead of blocking every
unrelated PR.  The committed baseline for this repo is empty -- the one
real finding the suite surfaced (``resilience/hedge.py`` swallowing
backup failures) was fixed rather than baselined -- but the mechanism is
what makes future rules adoptable.

Baselines are written sorted and with context (location, message) so the
file is reviewable, but only the fingerprints are authoritative.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.findings import Finding, sort_findings

FORMAT_VERSION = 1


def load_baseline(path: str | Path) -> frozenset[str]:
    """Return the set of baselined fingerprints (empty if file is absent)."""
    file = Path(path)
    if not file.exists():
        return frozenset()
    raw = json.loads(file.read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{file}: not a replint baseline (want version {FORMAT_VERSION})"
        )
    return frozenset(entry["fingerprint"] for entry in raw.get("findings", []))


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Persist ``findings`` as the new baseline; returns entries written."""
    entries = [
        {
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule_id,
            "location": finding.location(),
            "message": finding.message,
        }
        for finding in sort_findings(findings)
    ]
    payload = {"version": FORMAT_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def split_by_baseline(
    findings: list[Finding], baselined: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """``(new, suppressed)`` partition of ``findings`` against a baseline."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        (suppressed if finding.fingerprint() in baselined else new).append(finding)
    return new, suppressed
