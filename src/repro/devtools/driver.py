"""The lint driver: collect files, parse once, run every applicable rule.

The driver owns the mechanics rules should not care about: walking the
target directories, skipping generated/cache directories, normalizing
paths to repo-relative posix form, parsing each file exactly once, and
collecting per-file plus cross-file (:meth:`Rule.finish`) findings into
one deterministic report.  Syntax errors are findings too (rule
``PARSE``), not crashes -- a file the linter cannot read is a file no rule
has vetted.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding, sort_findings
from repro.devtools.rules import Rule, default_rules

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "repro.egg-info", ".pytest_cache"}


def collect_files(targets: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand file/directory targets into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py" and path.exists():
            files.add(path)
    return sorted(files)


def relative_posix(path: Path, root: Path) -> str:
    """Repo-relative posix path; falls back to absolute for outsiders."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


class LintDriver:
    """One lint run: rules + config over a set of targets."""

    def __init__(
        self,
        *,
        rules: list[Rule] | None = None,
        config: LintConfig | None = None,
        root: Path | None = None,
    ) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.config = config if config is not None else LintConfig()
        self.root = (root if root is not None else Path.cwd()).resolve()
        self.files_checked = 0

    def run(self, targets: Iterable[str | Path]) -> list[Finding]:
        """Lint ``targets``; returns every finding, deterministically ordered."""
        findings: list[Finding] = []
        active = [r for r in self.rules if self.config.rule_enabled(r)]
        self.files_checked = 0
        for file in collect_files(targets, self.root):
            rel = relative_posix(file, self.root)
            applicable = [r for r in active if self.config.applies(r, rel)]
            if not applicable:
                continue
            source = file.read_text(encoding="utf-8")
            lines = source.splitlines()
            self.files_checked += 1
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule_id="PARSE",
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        hint="replint vets nothing in a file it cannot parse",
                        snippet=(exc.text or "").strip(),
                    )
                )
                continue
            for rule in applicable:
                findings.extend(rule.check(tree, rel, lines))
        for rule in active:
            findings.extend(
                finding for finding in rule.finish()
                if self.config.applies(rule, finding.path)
            )
        return sort_findings(findings)
