"""The lint driver: collect files, parse once, run every applicable rule.

The driver owns the mechanics rules should not care about: walking the
target directories, skipping generated/cache directories, normalizing
paths to repo-relative posix form, parsing each file exactly once, and
collecting per-file plus cross-file (:meth:`Rule.finish`) findings into
one deterministic report.  Syntax errors are findings too (rule
``PARSE``), not crashes -- a file the linter cannot read is a file no rule
has vetted.

Inline suppressions: a ``replint: disable=<ID>`` (or ``disable=<ID>,<ID>``)
comment on the offending line silences those rules for that line only.
Every suppression must earn its keep -- one that matches no finding is
itself reported as ``SUP001``, so stale disables cannot accumulate.
``PARSE`` and ``SUP001`` are not suppressible.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding, sort_findings
from repro.devtools.rules import Rule, default_rules

_SKIP_DIRS = {
    "__pycache__", ".git", ".hypothesis", "repro.egg-info", ".pytest_cache",
    "replint_fixtures",  # seeded-bug corpus: linted only as explicit targets
}

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)
_UNSUPPRESSIBLE = {"PARSE", "SUP001"}


def collect_files(targets: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand file/directory targets into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py" and path.exists():
            files.add(path)
    return sorted(files)


def relative_posix(path: Path, root: Path) -> str:
    """Repo-relative posix path; falls back to absolute for outsiders."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """``replint: disable=<ID>[,<ID>...]`` comments -> {lineno: {rule ids}}."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is not None:
            ids = {part.strip() for part in match.group(1).split(",")}
            suppressions[lineno] = ids - {""}
    return suppressions


class LintDriver:
    """One lint run: rules + config over a set of targets.

    ``respect_suppressions=False`` ignores inline ``replint: disable``
    comments -- the mode the corpus/acceptance tests use to prove the
    tree is clean *without* escape hatches.
    """

    def __init__(
        self,
        *,
        rules: list[Rule] | None = None,
        config: LintConfig | None = None,
        root: Path | None = None,
        respect_suppressions: bool = True,
    ) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.config = config if config is not None else LintConfig()
        self.root = (root if root is not None else Path.cwd()).resolve()
        self.respect_suppressions = respect_suppressions
        self.files_checked = 0
        self.inline_suppressed = 0

    def run(self, targets: Iterable[str | Path]) -> list[Finding]:
        """Lint ``targets``; returns every finding, deterministically ordered."""
        findings: list[Finding] = []
        active = [r for r in self.rules if self.config.rule_enabled(r)]
        self.files_checked = 0
        self.inline_suppressed = 0
        # path -> {lineno: ids}; ids still unused shrink as findings match
        suppressions: dict[str, dict[int, set[str]]] = {}
        unused: dict[str, dict[int, set[str]]] = {}
        suppression_lines: dict[str, list[str]] = {}
        for file in collect_files(targets, self.root):
            rel = relative_posix(file, self.root)
            applicable = [r for r in active if self.config.applies(r, rel)]
            if not applicable:
                continue
            source = file.read_text(encoding="utf-8")
            lines = source.splitlines()
            self.files_checked += 1
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule_id="PARSE",
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        hint="replint vets nothing in a file it cannot parse",
                        snippet=(exc.text or "").strip(),
                    )
                )
                continue
            if self.respect_suppressions:
                per_file = parse_suppressions(lines)
                if per_file:
                    suppressions[rel] = per_file
                    unused[rel] = {n: set(ids) for n, ids in per_file.items()}
                    suppression_lines[rel] = lines
            for rule in applicable:
                for finding in rule.check(tree, rel, lines):
                    if not self._suppress(finding, suppressions, unused):
                        findings.append(finding)
        for rule in active:
            for finding in rule.finish():
                if not self.config.applies(rule, finding.path):
                    continue
                if not self._suppress(finding, suppressions, unused):
                    findings.append(finding)
        for rel in sorted(unused):
            file_lines = suppression_lines.get(rel, [])
            for lineno in sorted(unused[rel]):
                for rule_id in sorted(unused[rel][lineno]):
                    snippet = (
                        file_lines[lineno - 1].strip()
                        if 0 < lineno <= len(file_lines) else ""
                    )
                    findings.append(
                        Finding(
                            rule_id="SUP001",
                            path=rel,
                            line=lineno,
                            col=0,
                            message=(
                                f"unused suppression: no {rule_id} finding "
                                "on this line"
                            ),
                            hint="delete the stale `replint: disable` "
                            "comment (or fix the id it names)",
                            snippet=snippet,
                        )
                    )
        return sort_findings(findings)

    def _suppress(
        self,
        finding: Finding,
        suppressions: dict[str, dict[int, set[str]]],
        unused: dict[str, dict[int, set[str]]],
    ) -> bool:
        if finding.rule_id in _UNSUPPRESSIBLE:
            return False
        ids = suppressions.get(finding.path, {}).get(finding.line, ())
        if finding.rule_id not in ids:
            return False
        self.inline_suppressed += 1
        remaining = unused.get(finding.path, {}).get(finding.line)
        if remaining is not None:
            remaining.discard(finding.rule_id)
            if not remaining:
                del unused[finding.path][finding.line]
                if not unused[finding.path]:
                    del unused[finding.path]
        return True
