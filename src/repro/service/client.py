"""Asyncio cache client: pipelined connections, a pool, and a sync facade.

Three layers, innermost first:

- :class:`AsyncCacheClient` -- one connection.  Requests carry ids, so
  many may be in flight at once; a reader task matches response frames
  (arriving in any order) back to their futures.
- :class:`CacheClientPool` -- N connections, round-robin dispatch; the
  unit the load generator drives.
- :class:`RemoteCacheDataSource` -- a *synchronous*
  :class:`~repro.storage.remote.DataSource` facade running the pool on a
  private background event loop.  It raises ``ConnectionError`` /
  ``RemoteReadError`` on transport trouble, exactly the retryable set of
  :class:`~repro.resilience.source.ResilientDataSource` -- so the PR 1
  retry / hedge / circuit-breaker wrappers compose unchanged over real
  sockets.

This module is part of the sanctioned real-time zone (DET001/KRN004
allowlist): latencies reported by the facade are measured wall time, not
modelled time.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from typing import Any

from repro.errors import FileNotFoundInStorageError, RemoteReadError
from repro.service import protocol as wire
from repro.service.protocol import (
    ErrorCode,
    ErrorResponse,
    EvictRequest,
    GetRequest,
    GetResponse,
    HealthRequest,
    LengthRequest,
    ProtocolError,
    PutRequest,
    StatsRequest,
)
from repro.storage.remote import ReadResult


def _raise_for_error(error: ErrorResponse) -> None:
    """Map an error frame onto the repo's exception vocabulary."""
    if error.code is ErrorCode.NOT_FOUND:
        raise FileNotFoundInStorageError(error.message)
    if error.code in (ErrorCode.BAD_REQUEST, ErrorCode.TOO_LARGE):
        raise ValueError(f"cache service rejected request: {error.message}")
    # DRAINING / SERVER_ERROR: transient from the caller's viewpoint --
    # RemoteReadError is in ResilientDataSource's retryable set
    raise RemoteReadError(f"cache service error ({error.code.name}): {error.message}")


class AsyncCacheClient:
    """One pipelined connection to a :class:`~repro.service.server.CacheServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._request_ids = itertools.count(1)
        self._closed = False
        self._reader_task: asyncio.Task | None = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncCacheClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        error: Exception = ConnectionError("cache service connection closed")
        try:
            while True:
                payload = await wire.read_frame(self._reader)
                if payload is None:
                    break
                request_id, response = wire.decode_response(payload)
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError) as exc:
            error = ConnectionError(f"cache service connection failed: {exc!r}")
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, req: wire.Request) -> wire.Response:
        if self._closed:
            raise ConnectionError("cache client is closed")
        request_id = next(self._request_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        frame = wire.encode_request(req, request_id=request_id)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        response = await future
        if isinstance(response, ErrorResponse):
            _raise_for_error(response)
        return response

    # typed convenience verbs ------------------------------------------------

    async def get(self, file_id: str, offset: int, length: int) -> GetResponse:
        response = await self.request(GetRequest(file_id, offset, length))
        assert isinstance(response, GetResponse)
        return response

    async def put(self, file_id: str, page_index: int, data: bytes) -> bool:
        response = await self.request(PutRequest(file_id, page_index, data))
        assert isinstance(response, wire.PutResponse)
        return response.admitted

    async def evict(self, file_id: str, page_index: int | None = None) -> int:
        response = await self.request(EvictRequest(file_id, page_index))
        assert isinstance(response, wire.EvictResponse)
        return response.removed

    async def stats(self) -> dict[str, Any]:
        response = await self.request(StatsRequest(fmt=0))
        assert isinstance(response, wire.StatsResponse)
        return json.loads(response.payload)

    async def stats_prometheus(self) -> str:
        response = await self.request(StatsRequest(fmt=1))
        assert isinstance(response, wire.StatsResponse)
        return response.payload.decode()

    async def health(self) -> dict[str, Any]:
        response = await self.request(HealthRequest())
        assert isinstance(response, wire.HealthResponse)
        return json.loads(response.payload)

    async def file_length(self, file_id: str) -> int:
        response = await self.request(LengthRequest(file_id))
        assert isinstance(response, wire.LengthResponse)
        return response.length

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass  # cancellation is the expected exit here
        if not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass  # peer already gone; closing is the goal


class CacheClientPool:
    """N pipelined connections with round-robin dispatch."""

    def __init__(self, host: str, port: int, *, size: int = 4) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self._clients: list[AsyncCacheClient] = []
        self._rr = itertools.count()

    @classmethod
    async def connect(cls, host: str, port: int, *, size: int = 4) -> "CacheClientPool":
        pool = cls(host, port, size=size)
        pool._clients = [
            await AsyncCacheClient.connect(host, port) for _ in range(size)
        ]
        return pool

    def client(self) -> AsyncCacheClient:
        if not self._clients:
            raise ConnectionError("cache client pool is not connected")
        return self._clients[next(self._rr) % len(self._clients)]

    async def get(self, file_id: str, offset: int, length: int) -> GetResponse:
        return await self.client().get(file_id, offset, length)

    async def put(self, file_id: str, page_index: int, data: bytes) -> bool:
        return await self.client().put(file_id, page_index, data)

    async def evict(self, file_id: str, page_index: int | None = None) -> int:
        return await self.client().evict(file_id, page_index)

    async def stats(self) -> dict[str, Any]:
        return await self.client().stats()

    async def health(self) -> dict[str, Any]:
        return await self.client().health()

    async def file_length(self, file_id: str) -> int:
        return await self.client().file_length(file_id)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()
        self._clients = []


class RemoteCacheDataSource:
    """Synchronous :class:`DataSource` over the cache service.

    The facade owns a private event loop on a daemon thread; every call
    round-trips through it.  ``read`` reports *measured* wall latency --
    callers composing :class:`~repro.resilience.source.ResilientDataSource`
    over this source get real retry/hedge behaviour against real sockets.
    """

    def __init__(
        self, host: str, port: int, *, pool_size: int = 2, timeout: float = 30.0,
    ) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="cache-client-loop", daemon=True
        )
        self._thread.start()
        self._pool: CacheClientPool = self._call(
            CacheClientPool.connect(host, port, size=pool_size)
        )

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            self._timeout
        )

    # DataSource protocol ----------------------------------------------------

    def file_length(self, file_id: str) -> int:
        return self._call(self._pool.file_length(file_id))

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        started = time.perf_counter()
        response = self._call(self._pool.get(file_id, offset, length))
        return ReadResult(response.data, time.perf_counter() - started)

    # lifecycle --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return self._call(self._pool.stats())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._call(self._pool.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self._timeout)
        self._loop.close()

    def __enter__(self) -> "RemoteCacheDataSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
