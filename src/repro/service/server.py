"""The asyncio cache server: one `CacheEngine`, real sockets.

Design (DESIGN.md §14):

- **One engine, many workers.**  The engine is thread-safe (striped page
  locks), so request handlers run on a small thread pool via
  ``run_in_executor`` while the event loop stays free for IO.
- **Per-connection backpressure.**  Each connection admits at most
  ``max_inflight`` concurrent requests; the frame-read loop *stops
  reading* while the window is full, so overload propagates to the
  client's socket buffer instead of growing server queues (the same
  admission-control stance as the simulated coordinator).
- **Graceful drain.**  ``drain()`` stops the listener, lets every
  in-flight request finish and flush, answers late frames with a
  ``DRAINING`` error, then closes connections.  The return value says
  whether the shutdown was clean -- the CI smoke job asserts it.

Wall-clock note: this module is part of the sanctioned real-time zone
(DET001/KRN004 allowlist); everything under the engine still works off
the injected clock port.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.core.engine import CacheEngine
from repro.service import protocol as wire
from repro.service.protocol import (
    ErrorCode,
    EvictRequest,
    EvictResponse,
    GetRequest,
    GetResponse,
    HealthRequest,
    HealthResponse,
    LengthRequest,
    LengthResponse,
    ProtocolError,
    PutRequest,
    PutResponse,
    StatsRequest,
    StatsResponse,
)


class CacheServer:
    """Serve one :class:`CacheEngine` over TCP.

    Args:
        engine: the cache core; must outlive the server.
        host / port: bind address; ``port=0`` picks a free port (see
            :attr:`port` after :meth:`start`).
        max_inflight: per-connection concurrent-request window.
        executor_workers: thread pool size for engine calls.
        ttl_interval: when > 0, runs ``engine.ttl_sweep()`` every that
            many (wall) seconds while the server is up.
    """

    def __init__(
        self,
        engine: CacheEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        executor_workers: int = 8,
        ttl_interval: float = 0.0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.ttl_interval = ttl_interval
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="cache-engine"
        )
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._ttl_task: asyncio.Task | None = None
        self._served = 0
        self._rejected = 0

    # ---------------------------------------------------------------- control

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.ttl_interval > 0:
            self._ttl_task = asyncio.create_task(self._ttl_loop())

    async def drain(self, timeout: float = 30.0) -> dict[str, Any]:
        """Graceful shutdown; returns a summary the caller can assert on."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._ttl_task is not None:
            self._ttl_task.cancel()
            try:
                await self._ttl_task
            except asyncio.CancelledError:
                pass  # cancellation is this loop's normal exit
            self._ttl_task = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        # first let every in-flight request finish and flush its response
        clean = await self._await_tasks(self._inflight, deadline)
        # then retire the connections themselves: closing the transports
        # wakes read loops parked at a frame boundary (they see EOF)
        for writer in list(self._writers):
            self._close_writer(writer)
        clean = await self._await_tasks(self._conn_tasks, deadline) and clean
        self._executor.shutdown(wait=True)
        return {
            "clean": clean,
            "served": self._served,
            "rejected": self._rejected,
        }

    @staticmethod
    async def _await_tasks(tasks: set[asyncio.Task], deadline: float) -> bool:
        """Wait for ``tasks`` until ``deadline``; cancel stragglers.

        Returns True when everything finished on its own (a clean drain).
        """
        pending = {task for task in tasks if not task.done()}
        if not pending:
            return True
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining > 0:
            _done, pending = await asyncio.wait(pending, timeout=remaining)
        if not pending:
            return True
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        return False

    async def _ttl_loop(self) -> None:
        while True:
            await asyncio.sleep(self.ttl_interval)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self.engine.ttl_sweep)

    # ------------------------------------------------------------ connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self.engine.metrics.record_error("service_connection", exc)
        finally:
            self._writers.discard(writer)
            self._close_writer(writer)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        window = asyncio.Semaphore(self.max_inflight)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        while True:
            try:
                payload = await wire.read_frame(reader)
            except ProtocolError as exc:
                self.engine.metrics.record_error("service_frame", exc)
                await self._send(
                    writer, write_lock,
                    wire.encode_response(
                        wire.ErrorResponse(ErrorCode.BAD_REQUEST, str(exc)),
                        request_id=0,
                    ),
                )
                break
            if payload is None:
                break
            # backpressure: the read loop parks here while the window is
            # full, pushing overload back into the kernel socket buffer
            await window.acquire()
            task = asyncio.create_task(
                self._handle_frame(payload, writer, write_lock, window)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            # drain() waits on the server-wide set so idle connections do
            # not hold shutdown hostage while real work is still running
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)

    async def _handle_frame(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        window: asyncio.Semaphore,
    ) -> None:
        try:
            request_id = 0
            try:
                request_id, request = wire.decode_request(payload)
            except ProtocolError as exc:
                self.engine.metrics.record_error("service_decode", exc)
                response: wire.Response = wire.ErrorResponse(
                    ErrorCode.BAD_REQUEST, str(exc)
                )
            else:
                if self._draining:
                    self._rejected += 1
                    response = wire.ErrorResponse(
                        ErrorCode.DRAINING, "server is draining"
                    )
                else:
                    loop = asyncio.get_running_loop()
                    started = time.perf_counter()
                    response = await loop.run_in_executor(
                        self._executor, self._dispatch, request
                    )
                    self._served += 1
                    self.engine.metrics.histogram(
                        "service_request_seconds"
                    ).observe(time.perf_counter() - started)
            await self._send(
                writer, write_lock,
                wire.encode_response(response, request_id=request_id),
            )
        finally:
            window.release()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame: bytes,
    ) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except ConnectionError as exc:
                self.engine.metrics.record_error("service_write", exc)

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        if not writer.is_closing():
            writer.close()

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, request: wire.Request) -> wire.Response:
        """Engine call for one request; runs on the executor thread pool."""
        try:
            if isinstance(request, GetRequest):
                result = self.engine.get(
                    request.file_id, request.offset, request.length
                )
                return GetResponse(
                    data=result.data,
                    fully_cached=result.fully_cached,
                    page_hits=result.page_hits,
                    page_misses=result.page_misses,
                )
            if isinstance(request, PutRequest):
                return PutResponse(
                    self.engine.put(
                        request.file_id, request.page_index, request.data
                    )
                )
            if isinstance(request, EvictRequest):
                return EvictResponse(
                    self.engine.evict(request.file_id, request.page_index)
                )
            if isinstance(request, StatsRequest):
                if request.fmt == 1:
                    return StatsResponse(self.engine.prometheus().encode())
                stats = dict(self.engine.stats())
                stats["server"] = {
                    "served": self._served,
                    "rejected": self._rejected,
                    "connections": len(self._conn_tasks),
                    "draining": self._draining,
                }
                return StatsResponse(
                    json.dumps(stats, sort_keys=True).encode()
                )
            if isinstance(request, HealthRequest):
                health = dict(self.engine.health())
                health["draining"] = self._draining
                return HealthResponse(
                    json.dumps(health, sort_keys=True).encode()
                )
            if isinstance(request, LengthRequest):
                return LengthResponse(self.engine.file_length(request.file_id))
            return wire.ErrorResponse(
                ErrorCode.BAD_REQUEST, f"unhandled request {type(request).__name__}"
            )
        except (KeyError, FileNotFoundError) as exc:
            self.engine.metrics.record_error("service_dispatch", exc)
            return wire.ErrorResponse(ErrorCode.NOT_FOUND, str(exc))
        except ValueError as exc:
            self.engine.metrics.record_error("service_dispatch", exc)
            return wire.ErrorResponse(ErrorCode.BAD_REQUEST, str(exc))
        except Exception as exc:  # the wire gets an error frame, not a reset
            self.engine.metrics.record_error("service_dispatch", exc)
            return wire.ErrorResponse(ErrorCode.SERVER_ERROR, repr(exc))


# -------------------------------------------------------------------- CLI


def build_engine(
    *,
    capacity_mb: int,
    page_kb: int,
    policy: str,
    files: int,
    file_mb: int,
    base_latency_ms: float,
    bandwidth_mb_s: float,
) -> CacheEngine:
    """Engine + synthetic remote for the standalone server / load-gen rig."""
    # deferred: keeps `import repro.service.server` free of repro.storage
    from repro.core.config import CacheConfig
    from repro.ports.clock import WallClock
    from repro.storage.remote import SyntheticDataSource

    source = SyntheticDataSource(
        base_latency=base_latency_ms / 1000.0,
        bandwidth=bandwidth_mb_s * 1024 * 1024,
    )
    for index in range(files):
        source.add_file(f"bench/file-{index:05d}", file_mb * 1024 * 1024)
    config = CacheConfig.small(
        capacity_mb * 1024 * 1024, page_size=page_kb * 1024
    )
    config.eviction_policy = policy
    return CacheEngine(config, source=source, clock=WallClock())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cache-server",
        description="Serve the cache core over TCP (length-prefixed binary "
        "protocol; see repro.service.protocol).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9736)
    parser.add_argument("--capacity-mb", type=int, default=256)
    parser.add_argument("--page-kb", type=int, default=64)
    parser.add_argument("--policy", default="lru")
    parser.add_argument("--files", type=int, default=64,
                        help="synthetic remote files to register")
    parser.add_argument("--file-mb", type=int, default=8)
    parser.add_argument("--base-latency-ms", type=float, default=2.0,
                        help="modelled remote latency floor")
    parser.add_argument("--bandwidth-mb-s", type=float, default=400.0)
    parser.add_argument("--max-inflight", type=int, default=32)
    parser.add_argument("--executor-workers", type=int, default=8)
    parser.add_argument("--ttl-interval", type=float, default=0.0)
    args = parser.parse_args(argv)

    engine = build_engine(
        capacity_mb=args.capacity_mb,
        page_kb=args.page_kb,
        policy=args.policy,
        files=args.files,
        file_mb=args.file_mb,
        base_latency_ms=args.base_latency_ms,
        bandwidth_mb_s=args.bandwidth_mb_s,
    )

    async def _run() -> None:
        server = CacheServer(
            engine,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            executor_workers=args.executor_workers,
            ttl_interval=args.ttl_interval,
        )
        await server.start()
        print(f"repro-cache-server listening on {server.host}:{server.port}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:
            pass  # platform without signal handler support (e.g. Windows loop)
        await stop.wait()
        summary = await server.drain()
        print(f"repro-cache-server drained: {summary}")

    asyncio.run(_run())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
