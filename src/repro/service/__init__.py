"""The real transport: the cache core behind actual sockets (DESIGN.md §14).

This package is the second adapter around :class:`~repro.core.engine.CacheEngine`
(the first being the virtual-time kernel, adapted in
:mod:`repro.service.sim_transport`):

- :mod:`repro.service.protocol` -- the length-prefixed binary wire format
  (GET/PUT/EVICT/STATS/HEALTH/LENGTH, request ids, error frames);
- :mod:`repro.service.server` -- the asyncio TCP server with
  per-connection backpressure and graceful drain;
- :mod:`repro.service.client` -- the asyncio client pool, plus
  :class:`~repro.service.client.RemoteCacheDataSource`, a synchronous
  ``DataSource`` facade so the PR 1 resilience wrappers (retry, hedge,
  breaker) compose over real sockets;
- :mod:`repro.service.sim_transport` -- the kernel adapter that drives the
  same engine in virtual time (and powers the sim-vs-real comparison).

``repro.service`` (except ``sim_transport``) is a sanctioned real-time
zone: DET001/KRN004 allow wall-clock here, and the
``cache-core-transport-agnostic`` contract keeps ``repro.sim`` out.
"""

from repro.service.protocol import (
    ErrorCode,
    Opcode,
    ProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

__all__ = [
    "Opcode",
    "ErrorCode",
    "ProtocolError",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]
