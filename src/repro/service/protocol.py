"""The cache service wire format: small, length-prefixed, binary.

Every message is one *frame*::

    u32  payload length (big-endian, excludes these 4 bytes)
    u8   opcode  (request) / opcode|0x80 (success response) / 0xFF (error)
    u64  request id (echoed verbatim in the response)
    ...  opcode-specific body

Request ids let a client pipeline many requests over one connection and
match responses arriving in any order.  Errors are first-class frames
(:class:`ErrorCode` + UTF-8 message) rather than closed sockets, so a
client can distinguish "page not found" from "server going away".

The codec here is pure bytes-in/bytes-out -- no sockets, no asyncio --
so both the server, the client, and the protocol tests share one
implementation and the doctest below can show a full round trip:

>>> frame = encode_request(GetRequest("f", 0, 4096), request_id=7)
>>> rid, req = decode_request(frame[4:])
>>> rid, req.file_id, req.length
(7, 'f', 4096)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

MAX_FRAME = 16 * 1024 * 1024  # refuse absurd frames before allocating
_HEADER = struct.Struct(">BQ")   # opcode, request id
_LEN = struct.Struct(">I")

_RESPONSE_BIT = 0x80
_ERROR_OPCODE = 0xFF


class ProtocolError(Exception):
    """A frame that cannot be decoded (truncated, bad opcode, oversized)."""


class Opcode(enum.IntEnum):
    GET = 0x01
    PUT = 0x02
    EVICT = 0x03
    STATS = 0x04
    HEALTH = 0x05
    LENGTH = 0x06


class ErrorCode(enum.IntEnum):
    BAD_REQUEST = 1
    NOT_FOUND = 2
    SERVER_ERROR = 3
    DRAINING = 4
    TOO_LARGE = 5


# ---------------------------------------------------------------- requests


@dataclass(frozen=True, slots=True)
class GetRequest:
    file_id: str
    offset: int
    length: int


@dataclass(frozen=True, slots=True)
class PutRequest:
    file_id: str
    page_index: int
    data: bytes


@dataclass(frozen=True, slots=True)
class EvictRequest:
    file_id: str
    page_index: int | None  # None -> evict the whole file


@dataclass(frozen=True, slots=True)
class StatsRequest:
    #: 0 = JSON, 1 = Prometheus exposition text
    fmt: int = 0


@dataclass(frozen=True, slots=True)
class HealthRequest:
    pass


@dataclass(frozen=True, slots=True)
class LengthRequest:
    file_id: str


Request = (
    GetRequest | PutRequest | EvictRequest | StatsRequest | HealthRequest
    | LengthRequest
)


# --------------------------------------------------------------- responses


@dataclass(frozen=True, slots=True)
class GetResponse:
    data: bytes
    fully_cached: bool
    page_hits: int
    page_misses: int


@dataclass(frozen=True, slots=True)
class PutResponse:
    admitted: bool


@dataclass(frozen=True, slots=True)
class EvictResponse:
    removed: int


@dataclass(frozen=True, slots=True)
class StatsResponse:
    payload: bytes  # JSON or Prometheus text, per the request's fmt


@dataclass(frozen=True, slots=True)
class HealthResponse:
    payload: bytes  # JSON health summary


@dataclass(frozen=True, slots=True)
class LengthResponse:
    length: int


@dataclass(frozen=True, slots=True)
class ErrorResponse:
    code: ErrorCode
    message: str


Response = (
    GetResponse | PutResponse | EvictResponse | StatsResponse
    | HealthResponse | LengthResponse | ErrorResponse
)


# ----------------------------------------------------------------- helpers


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"string field too long ({len(raw)} bytes)")
    return struct.pack(">H", len(raw)) + raw


class _Cursor:
    """Sequential reader over one frame payload with bounds checking."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int = 0) -> None:
        self.buf = buf
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.buf):
            raise ProtocolError(
                f"truncated frame: wanted {count} bytes at {self.pos}, "
                f"have {len(self.buf)}"
            )
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]

    def string(self) -> str:
        (n,) = struct.unpack(">H", self.take(2))
        return self.take(n).decode("utf-8")

    def blob(self) -> bytes:
        n = self.u32()
        return self.take(n)

    def done(self) -> None:
        if self.pos != len(self.buf):
            raise ProtocolError(
                f"{len(self.buf) - self.pos} trailing bytes in frame"
            )


def _frame(opcode: int, request_id: int, body: bytes) -> bytes:
    payload_len = _HEADER.size + len(body)
    if payload_len > MAX_FRAME:
        raise ProtocolError(f"frame too large ({payload_len} bytes)")
    return _LEN.pack(payload_len) + _HEADER.pack(opcode, request_id) + body


# ----------------------------------------------------------------- encode


def encode_request(request: Request, *, request_id: int) -> bytes:
    """Serialize one request into a full frame (length prefix included)."""
    if isinstance(request, GetRequest):
        body = _pack_str(request.file_id) + struct.pack(
            ">QI", request.offset, request.length
        )
        return _frame(Opcode.GET, request_id, body)
    if isinstance(request, PutRequest):
        body = (
            _pack_str(request.file_id)
            + struct.pack(">II", request.page_index, len(request.data))
            + request.data
        )
        return _frame(Opcode.PUT, request_id, body)
    if isinstance(request, EvictRequest):
        index = -1 if request.page_index is None else request.page_index
        body = _pack_str(request.file_id) + struct.pack(">q", index)
        return _frame(Opcode.EVICT, request_id, body)
    if isinstance(request, StatsRequest):
        return _frame(Opcode.STATS, request_id, struct.pack(">B", request.fmt))
    if isinstance(request, HealthRequest):
        return _frame(Opcode.HEALTH, request_id, b"")
    if isinstance(request, LengthRequest):
        return _frame(Opcode.LENGTH, request_id, _pack_str(request.file_id))
    raise ProtocolError(f"unknown request type {type(request).__name__}")


def encode_response(
    response: Response, *, request_id: int, opcode: Opcode | None = None,
) -> bytes:
    """Serialize one response into a full frame.

    ``opcode`` is required only for success responses whose type does not
    determine it (it always does today); errors ignore it.
    """
    if isinstance(response, ErrorResponse):
        body = struct.pack(">H", int(response.code)) + _pack_str(
            response.message
        )
        return _frame(_ERROR_OPCODE, request_id, body)
    if isinstance(response, GetResponse):
        body = (
            struct.pack(
                ">BII",
                1 if response.fully_cached else 0,
                response.page_hits,
                response.page_misses,
            )
            + struct.pack(">I", len(response.data))
            + response.data
        )
        return _frame(Opcode.GET | _RESPONSE_BIT, request_id, body)
    if isinstance(response, PutResponse):
        body = struct.pack(">B", 1 if response.admitted else 0)
        return _frame(Opcode.PUT | _RESPONSE_BIT, request_id, body)
    if isinstance(response, EvictResponse):
        body = struct.pack(">I", response.removed)
        return _frame(Opcode.EVICT | _RESPONSE_BIT, request_id, body)
    if isinstance(response, StatsResponse):
        body = struct.pack(">I", len(response.payload)) + response.payload
        return _frame(Opcode.STATS | _RESPONSE_BIT, request_id, body)
    if isinstance(response, HealthResponse):
        body = struct.pack(">I", len(response.payload)) + response.payload
        return _frame(Opcode.HEALTH | _RESPONSE_BIT, request_id, body)
    if isinstance(response, LengthResponse):
        body = struct.pack(">Q", response.length)
        return _frame(Opcode.LENGTH | _RESPONSE_BIT, request_id, body)
    raise ProtocolError(f"unknown response type {type(response).__name__}")


# ----------------------------------------------------------------- decode


def decode_request(payload: bytes) -> tuple[int, Request]:
    """Parse one request payload (frame minus length prefix)."""
    cur = _Cursor(payload)
    opcode = cur.u8()
    request_id = cur.u64()
    try:
        op = Opcode(opcode)
    except ValueError:
        raise ProtocolError(f"unknown request opcode 0x{opcode:02x}") from None
    if op is Opcode.GET:
        file_id = cur.string()
        offset, length = struct.unpack(">QI", cur.take(12))
        request: Request = GetRequest(file_id, offset, length)
    elif op is Opcode.PUT:
        file_id = cur.string()
        page_index, data_len = struct.unpack(">II", cur.take(8))
        request = PutRequest(file_id, page_index, cur.take(data_len))
    elif op is Opcode.EVICT:
        file_id = cur.string()
        index = cur.i64()
        request = EvictRequest(file_id, None if index < 0 else index)
    elif op is Opcode.STATS:
        request = StatsRequest(cur.u8())
    elif op is Opcode.HEALTH:
        request = HealthRequest()
    else:  # Opcode.LENGTH
        request = LengthRequest(cur.string())
    cur.done()
    return request_id, request


def decode_response(payload: bytes) -> tuple[int, Response]:
    """Parse one response payload (frame minus length prefix)."""
    cur = _Cursor(payload)
    opcode = cur.u8()
    request_id = cur.u64()
    if opcode == _ERROR_OPCODE:
        (code,) = struct.unpack(">H", cur.take(2))
        message = cur.string()
        cur.done()
        return request_id, ErrorResponse(ErrorCode(code), message)
    if not opcode & _RESPONSE_BIT:
        raise ProtocolError(f"response frame without response bit: 0x{opcode:02x}")
    try:
        op = Opcode(opcode & ~_RESPONSE_BIT)
    except ValueError:
        raise ProtocolError(f"unknown response opcode 0x{opcode:02x}") from None
    if op is Opcode.GET:
        fully_cached, hits, misses = struct.unpack(">BII", cur.take(9))
        response: Response = GetResponse(cur.blob(), bool(fully_cached), hits, misses)
    elif op is Opcode.PUT:
        response = PutResponse(bool(cur.u8()))
    elif op is Opcode.EVICT:
        response = EvictResponse(cur.u32())
    elif op is Opcode.STATS:
        response = StatsResponse(cur.blob())
    elif op is Opcode.HEALTH:
        response = HealthResponse(cur.blob())
    else:  # Opcode.LENGTH
        response = LengthResponse(cur.u64())
    cur.done()
    return request_id, response


# ------------------------------------------------------------ frame stream


def read_frame_length(prefix: bytes) -> int:
    """Validate a 4-byte length prefix; returns the payload length."""
    if len(prefix) != _LEN.size:
        raise ProtocolError(f"length prefix is {len(prefix)} bytes, want 4")
    (payload_len,) = _LEN.unpack(prefix)
    if payload_len < _HEADER.size:
        raise ProtocolError(f"frame payload too short ({payload_len} bytes)")
    if payload_len > MAX_FRAME:
        raise ProtocolError(f"frame too large ({payload_len} bytes)")
    return payload_len


async def read_frame(reader) -> bytes | None:
    """Read one frame payload from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a torn or oversized frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from exc
    payload_len = read_frame_length(prefix)
    try:
        return await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid frame") from exc
