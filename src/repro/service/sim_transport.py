"""The virtual-time transport: the kernel as one adapter over the cache core.

This is the counterpart of :mod:`repro.service.server` (DESIGN.md §14):
the same :class:`~repro.core.engine.CacheEngine` / ``LocalCacheManager``
core, driven by the discrete-event kernel instead of sockets.  It is one
of the two reviewed modules exempt from the
``cache-core-transport-agnostic`` contract -- the only places where the
core and ``repro.sim`` are allowed to meet.

Two things live here:

- :func:`build_sim_cache` / :func:`build_sim_engine` -- the construction
  path every simulation caller (Presto workers, the distributed cache
  tier, the cached DataNode, ``repro-cachesim``) uses to stand the core
  up in virtual time.  Keeping construction in one place is what makes
  the core's transport-agnosticism auditable.
- :class:`SimTransport` -- a closed-loop driver that replays a request
  sequence through the engine under the kernel with N concurrent client
  processes (deferred-IO collection + replay, device queueing included).
  ``tools/load_gen.py`` runs the *same* key sequence through this and
  through real sockets to produce the sim-vs-real latency-shape
  comparison in ``BENCH_service.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.cache_manager import LocalCacheManager
from repro.core.config import CacheConfig
from repro.core.engine import CacheEngine
from repro.core.pagestore.simulated import SimulatedSsdPageStore
from repro.ports.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.kernel import Kernel, collecting_io, replay_plan

if TYPE_CHECKING:
    from repro.storage.remote import DataSource


def build_sim_cache(
    config: CacheConfig | None = None,
    *,
    clock=None,
    device=None,
    page_store=None,
    admission=None,
    quota=None,
    metrics=None,
    rng=None,
    event_loop: EventLoop | None = None,
) -> LocalCacheManager:
    """Construct the cache core for a virtual-time caller.

    ``device`` is a :class:`~repro.storage.device.StorageDevice`; when
    given, page payloads live behind it in a
    :class:`SimulatedSsdPageStore` so hits cost modelled SSD time
    (Section 4.2).  Either pass ``device`` or an explicit ``page_store``,
    not both.
    """
    if device is not None and page_store is not None:
        raise ValueError("pass either device or page_store, not both")
    if device is not None:
        page_store = SimulatedSsdPageStore(device)
    return LocalCacheManager(
        config,
        clock=clock,
        page_store=page_store,
        admission=admission,
        quota=quota,
        metrics=metrics,
        rng=rng,
        event_loop=event_loop,
    )


def build_sim_engine(
    config: CacheConfig | None = None,
    *,
    source: "DataSource | None" = None,
    kernel: Kernel | None = None,
    clock: SimClock | None = None,
    device=None,
    admission=None,
    quota=None,
    metrics=None,
    rng=None,
) -> CacheEngine:
    """A :class:`CacheEngine` wired for virtual time.

    The kernel (or a bare :class:`SimClock`) supplies the clock port; the
    kernel's timer API is the scheduler port for TTL sweeps.
    """
    if kernel is not None and clock is not None and kernel.clock is not clock:
        raise ValueError("kernel and clock disagree; pass one or the other")
    if kernel is not None:
        clock = kernel.clock
    elif clock is None:
        clock = SimClock()
    scheduler = None
    if kernel is not None:
        scheduler = (
            kernel
            if hasattr(kernel, "schedule_periodic")
            else _KernelScheduler(kernel)
        )
    return CacheEngine(
        config,
        source=source,
        clock=clock,
        scheduler=scheduler,
        page_store=SimulatedSsdPageStore(device) if device is not None else None,
        admission=admission,
        quota=quota,
        metrics=metrics,
        rng=rng,
    )


class _KernelScheduler:
    """Adapt a bare :class:`Kernel` to the ``SchedulerPort`` verb."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel

    def schedule_periodic(self, interval: float, fn):
        return self._kernel.call_periodic(interval, fn)


@dataclass(slots=True)
class SimLoadResult:
    """Outcome of one :meth:`SimTransport.run_closed_loop`."""

    latencies: list[float] = field(default_factory=list)
    page_hits: int = 0
    page_misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_remote: int = 0
    virtual_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.latencies)

    @property
    def hit_ratio(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


class SimTransport:
    """Drive a :class:`CacheEngine` closed-loop under the event kernel.

    ``clients`` concurrent kernel processes each work a round-robin shard
    of the request sequence -- the same sharding the socket load
    generator uses -- so queueing contention at the (kernel-attached)
    page-store device shapes latencies exactly as connection concurrency
    shapes them over real sockets.
    """

    def __init__(self, engine: CacheEngine, kernel: Kernel | None = None) -> None:
        self.engine = engine
        if kernel is None:
            if not isinstance(engine.clock, SimClock):
                raise ValueError(
                    "SimTransport needs an engine on a SimClock "
                    f"(got {type(engine.clock).__name__})"
                )
            kernel = Kernel(engine.clock)
        self.kernel = kernel
        device = getattr(self.engine.manager.page_store, "device", None)
        if device is not None:
            device.attach_kernel(self.kernel)

    def run_closed_loop(
        self,
        requests: Sequence[tuple[str, int, int]],
        *,
        clients: int = 1,
    ) -> SimLoadResult:
        """Replay ``requests`` (``(file_id, offset, length)``) to completion."""
        if clients <= 0:
            raise ValueError(f"clients must be positive, got {clients}")
        outcome = SimLoadResult()
        started = self.kernel.clock.now()

        def client_proc(shard: list[tuple[str, int, int]]):
            for file_id, offset, length in shard:
                t0 = self.kernel.clock.now()
                plan: list = []
                with collecting_io(plan):
                    result = self.engine.get(file_id, offset, length)
                yield from replay_plan(plan)
                outcome.latencies.append(self.kernel.clock.now() - t0)
                outcome.page_hits += result.page_hits
                outcome.page_misses += result.page_misses
                outcome.bytes_from_cache += result.bytes_from_cache
                outcome.bytes_from_remote += result.bytes_from_remote

        for index in range(clients):
            shard = [
                request for pos, request in enumerate(requests)
                if pos % clients == index
            ]
            if shard:
                self.kernel.spawn(client_proc(shard), name=f"sim-client-{index}")
        self.kernel.run_all()
        outcome.virtual_seconds = self.kernel.clock.now() - started
        return outcome
