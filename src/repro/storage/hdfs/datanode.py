"""The DataNode: block storage on an HDD device model.

Blocks live on the node's HDD (the dense, bandwidth-starved SKU of Section
2.2); every read/write is charged to the device model, whose bounded
concurrency produces the queueing ("blocked processes") that Figure 14
measures.  Only finalized blocks are served; an append produces a new
finalized version under a bumped generation stamp, with the old version
retained until the NameNode-driven replacement completes -- giving the
cache the snapshot it isolates on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BlockNotFoundError, DataNodeOfflineError, StaleReadError
from repro.obs.tracer import current_tracer
from repro.sim.kernel import collecting_io, replay_plan
from repro.storage.hdfs.block import Block, BlockId
from repro.storage.device import DeviceProfile, StorageDevice
from repro.sim.clock import Clock, SimClock


@dataclass(frozen=True, slots=True)
class BlockReadResult:
    """A block-range read plus the HDD latency it cost."""

    data: bytes
    latency: float


class DataNode:
    """One DataNode: versioned block replicas on a modelled HDD."""

    def __init__(
        self,
        name: str,
        *,
        device: StorageDevice | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self.device = (
            device
            if device is not None
            else StorageDevice(DeviceProfile.hdd_high_density(), self.clock)
        )
        # bare block_id -> {generation_stamp -> Block}
        self._blocks: dict[int, dict[int, Block]] = {}
        self.restart_count = 0
        self.online = True

    # -- storage ----------------------------------------------------------------

    def store_block(self, block: Block) -> None:
        """Finalize a block replica (data + meta file written to the HDD)."""
        self.device.write(block.length + block.meta.size_bytes)
        self._blocks.setdefault(block.identity.block_id, {})[
            block.identity.generation_stamp
        ] = block

    def has_block(self, identity: BlockId) -> bool:
        return identity.generation_stamp in self._blocks.get(identity.block_id, {})

    def block_length(self, identity: BlockId) -> int:
        self._check_online()
        return self._get(identity).length

    def _check_online(self) -> None:
        if not self.online:
            raise DataNodeOfflineError(f"DataNode {self.name} is offline")

    def _get(self, identity: BlockId) -> Block:
        versions = self._blocks.get(identity.block_id)
        if not versions:
            raise BlockNotFoundError(str(identity))
        block = versions.get(identity.generation_stamp)
        if block is None:
            # the caller holds a stale (or future) generation stamp
            raise StaleReadError(
                f"{identity} not present; live stamps: {sorted(versions)}"
            )
        return block

    def latest_identity(self, block_id: int) -> BlockId:
        versions = self._blocks.get(block_id)
        if not versions:
            raise BlockNotFoundError(f"blk_{block_id}")
        return BlockId(block_id, max(versions))

    # -- reads ---------------------------------------------------------------------

    def read_block(
        self, identity: BlockId, offset: int = 0, length: int | None = None
    ) -> BlockReadResult:
        """Ranged read of one block version off the HDD.

        Reads both the block bytes and (implicitly) the matching meta file
        -- never a mix of versions (Section 6.2.1's all-or-nothing rule is
        guaranteed by versioned storage: a generation stamp addresses one
        immutable (block, meta) pair).
        """
        self._check_online()
        block = self._get(identity)
        if length is None:
            length = block.length - offset
        data = block.data[offset : offset + length]
        tracer = current_tracer()
        with tracer.span("hdd_read", actor=self.name) as span:
            latency = self.device.read(len(data))
            wait = self.device.last_wait
            span.charge("queueing", wait)
            span.charge("remote", latency - wait)
        return BlockReadResult(data=data, latency=latency)

    def read_block_proc(
        self, identity: BlockId, offset: int = 0, length: int | None = None
    ):
        """Kernel-mode ranged read: the calling process *blocks* in the
        HDD's FIFO queue; the returned latency is measured, not derived.

        Requires ``device.attach_kernel(...)``; replay the generator with
        ``yield from`` inside a kernel process.
        """
        if not self.device.kernel_attached:
            raise RuntimeError("read_block_proc requires device.attach_kernel()")
        self._check_online()
        block = self._get(identity)
        if length is None:
            length = block.length - offset
        data = block.data[offset : offset + length]
        tracer = current_tracer()
        with tracer.span("hdd_read", actor=self.name):
            plan: list = []
            with collecting_io(plan):
                self.device.read(len(data))
            # the deferred transfer charges measured queueing/service itself
            latency = yield from replay_plan(plan)
        return BlockReadResult(data=data, latency=latency)

    # -- mutations ------------------------------------------------------------------

    def append_block(self, identity: BlockId, extra: bytes) -> BlockId:
        """Append to a block: new version under a bumped generation stamp.

        The previous version is dropped once the new one is finalized (as
        in HDFS, where the block file is replaced); cache entries keyed by
        the old stamp simply become unreachable and age out.
        """
        block = self._get(identity)
        new_block = block.appended(extra)
        self.store_block(new_block)
        del self._blocks[identity.block_id][identity.generation_stamp]
        return new_block.identity

    def delete_block(self, identity: BlockId) -> bool:
        """Delete every version of the block (HDFS deletes by block, and a
        deleted block's history goes with it)."""
        return self._blocks.pop(identity.block_id, None) is not None

    def restart(self) -> None:
        """Simulate a DataNode process restart (Section 6.2.3: the cache's
        in-memory block mapping is lost; callers must clear their cache)."""
        self.restart_count += 1

    def fail(self) -> None:
        """Crash the node: reads are refused until :meth:`recover`.

        Only the read path is gated -- the chaos scenarios exercise
        degraded *serving*; block placement/writes stay NameNode business.
        """
        self.online = False

    def recover(self) -> None:
        """Bring the node back; its finalized blocks survived on the HDD."""
        self.online = True

    # -- reporting --------------------------------------------------------------------

    def block_count(self) -> int:
        return sum(len(v) for v in self._blocks.values())

    def bytes_stored(self) -> int:
        return sum(
            block.length
            for versions in self._blocks.values()
            for block in versions.values()
        )
