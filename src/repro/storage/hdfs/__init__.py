"""An HDFS subset: the substrate the HDFS local cache embeds into.

Implements just enough of HDFS semantics for the Section 6.2 case study:

- :mod:`~repro.storage.hdfs.block` -- blocks identified by ``(blockId,
  generationStamp)`` with a paired checksum metadata file; appends bump the
  generation stamp.
- :mod:`~repro.storage.hdfs.namenode` -- the namespace: files as block
  sequences, block -> DataNode placement, create/append/delete.
- :mod:`~repro.storage.hdfs.datanode` -- serves block reads off an HDD
  device model (the queue where "blocked processes" accumulate); finalized
  blocks only.
- :mod:`~repro.storage.hdfs.client` -- a DFS client tying the pieces
  together for whole-file and ranged reads.
"""

from repro.storage.hdfs.block import Block, BlockId, BlockMetaFile
from repro.storage.hdfs.client import DfsClient
from repro.storage.hdfs.datanode import DataNode
from repro.storage.hdfs.namenode import FileStatus, NameNode
from repro.storage.hdfs.viewfs import ViewFs

__all__ = [
    "Block",
    "BlockId",
    "BlockMetaFile",
    "NameNode",
    "FileStatus",
    "DataNode",
    "DfsClient",
    "ViewFs",
]
