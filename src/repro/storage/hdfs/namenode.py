"""The NameNode: namespace, block map, and placement.

Holds files as sequences of block IDs, assigns blocks to DataNodes
round-robin with a replication factor, and brokers the mutations the HDFS
local cache must survive: ``append`` (generation bump on the last block)
and ``delete`` (block removal).  Because the NameNode "has already
maintained a metadata table recording the location of each data block"
(Section 6.2.1), clients need no soft-affinity scheduling here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import BlockNotFoundError, FileNotFoundInStorageError
from repro.storage.hdfs.block import Block, BlockId
from repro.storage.hdfs.datanode import DataNode


@dataclass(frozen=True, slots=True)
class FileStatus:
    """What a client learns about a file: its blocks and total length."""

    path: str
    blocks: tuple[BlockId, ...]
    length: int


class NameNode:
    """Namespace + block placement over a set of DataNodes."""

    def __init__(
        self,
        datanodes: list[DataNode],
        *,
        block_size: int = 128 * 1024 * 1024,
        replication: int = 1,
    ) -> None:
        if not datanodes:
            raise ValueError("at least one DataNode is required")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if not 1 <= replication <= len(datanodes):
            raise ValueError(
                f"replication must be in [1, {len(datanodes)}], got {replication}"
            )
        self.datanodes = list(datanodes)
        self.block_size = block_size
        self.replication = replication
        self._files: dict[str, list[BlockId]] = {}
        self._locations: dict[int, list[DataNode]] = {}  # by bare block_id
        self._lengths: dict[int, int] = {}  # metadata table (Section 6.2.1)
        self._block_counter = itertools.count()
        self._placement_cursor = 0

    # -- namespace ----------------------------------------------------------

    def create_file(self, path: str, data: bytes) -> FileStatus:
        """Write a file, splitting into blocks and placing replicas."""
        if path in self._files:
            raise ValueError(f"file already exists: {path}")
        blocks: list[BlockId] = []
        for offset in range(0, max(len(data), 1), self.block_size):
            chunk = data[offset : offset + self.block_size]
            identity = BlockId(next(self._block_counter), generation_stamp=1)
            block = Block(identity=identity, data=chunk)
            for node in self._place():
                node.store_block(block)
                self._locations.setdefault(identity.block_id, []).append(node)
            self._lengths[identity.block_id] = len(chunk)
            blocks.append(identity)
        self._files[path] = blocks
        return self.get_file_status(path)

    def _place(self) -> list[DataNode]:
        chosen = []
        for i in range(self.replication):
            node = self.datanodes[(self._placement_cursor + i) % len(self.datanodes)]
            chosen.append(node)
        self._placement_cursor = (self._placement_cursor + 1) % len(self.datanodes)
        return chosen

    def get_file_status(self, path: str) -> FileStatus:
        try:
            blocks = self._files[path]
        except KeyError:
            raise FileNotFoundInStorageError(path) from None
        length = sum(self._block_length(b) for b in blocks)
        return FileStatus(path=path, blocks=tuple(blocks), length=length)

    def _block_length(self, identity: BlockId) -> int:
        # answered from the NameNode's own metadata table (Section 6.2.1),
        # so file status never depends on DataNode availability
        try:
            return self._lengths[identity.block_id]
        except KeyError:
            raise BlockNotFoundError(str(identity)) from None

    def block_length(self, identity: BlockId) -> int:
        """Metadata-table lookup of one block's length (no DataNode I/O)."""
        return self._block_length(identity)

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # -- block operations ---------------------------------------------------------

    def locate_block(self, identity: BlockId) -> list[DataNode]:
        """DataNodes holding replicas of this block."""
        nodes = self._locations.get(identity.block_id)
        if not nodes:
            raise BlockNotFoundError(str(identity))
        return list(nodes)

    def append_to_file(self, path: str, extra: bytes) -> BlockId:
        """Append to the file's last block; returns its new identity.

        The generation stamp bumps on every replica; the file's block list
        is updated to reference the new version (Section 6.2.3).
        """
        status = self.get_file_status(path)
        if not status.blocks:
            raise ValueError(f"file has no blocks: {path}")
        last = status.blocks[-1]
        new_identity: BlockId | None = None
        for node in self.locate_block(last):
            new_identity = node.append_block(last, extra)
        assert new_identity is not None
        self._lengths[last.block_id] = self._lengths.get(last.block_id, 0) + len(extra)
        self._files[path][-1] = new_identity
        return new_identity

    def delete_file(self, path: str) -> list[BlockId]:
        """Remove a file and its block replicas; returns the removed blocks."""
        try:
            blocks = self._files.pop(path)
        except KeyError:
            raise FileNotFoundInStorageError(path) from None
        for identity in blocks:
            self._lengths.pop(identity.block_id, None)
            for node in self._locations.pop(identity.block_id, []):
                node.delete_block(identity)
        return blocks
