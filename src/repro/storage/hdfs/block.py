"""HDFS blocks: data + checksum metadata, versioned by generation stamps.

Section 6.2.3: "HDFS employs a versioning system where each block is
assigned a *generation stamp*.  Each invocation of the append operation
increments the block's generation stamp."  The HDFS local cache keys cache
entries by ``(blockId, generationStamp)`` for snapshot isolation -- readers
of the old version keep reading old pages while an append is in flight.

A DataNode stores each block as two files: the block file and a metadata
file holding checksums of the block's chunks; "either both ... are read
from the cache, or both from their original locations, never any mix."
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

CHECKSUM_CHUNK = 512  # HDFS checksums data in 512-byte chunks by default


@dataclass(frozen=True, slots=True)
class BlockId:
    """Identity of one block version."""

    block_id: int
    generation_stamp: int

    def __post_init__(self) -> None:
        if self.block_id < 0 or self.generation_stamp < 0:
            raise ValueError(
                f"ids must be >= 0, got {self.block_id}/{self.generation_stamp}"
            )

    def next_generation(self) -> "BlockId":
        """The identity after one append (generation stamp + 1)."""
        return BlockId(self.block_id, self.generation_stamp + 1)

    def cache_key(self) -> str:
        """The snapshot-isolation cache key: ``blk_<id>@gs<stamp>``."""
        return f"blk_{self.block_id}@gs{self.generation_stamp}"

    def __str__(self) -> str:
        return self.cache_key()


@dataclass(frozen=True, slots=True)
class BlockMetaFile:
    """The checksum metadata file paired with a block file."""

    checksums: tuple[int, ...]

    @classmethod
    def for_data(cls, data: bytes) -> "BlockMetaFile":
        sums = tuple(
            zlib.crc32(data[i : i + CHECKSUM_CHUNK])
            for i in range(0, max(len(data), 1), CHECKSUM_CHUNK)
        )
        return cls(checksums=sums)

    def verify(self, data: bytes) -> bool:
        """True if ``data`` matches every chunk checksum."""
        return self == BlockMetaFile.for_data(data)

    @property
    def size_bytes(self) -> int:
        """Approximate on-disk size of the meta file (4 bytes per chunk + header)."""
        return 7 + 4 * len(self.checksums)


@dataclass(slots=True)
class Block:
    """One finalized block replica: data, meta file, and version identity."""

    identity: BlockId
    data: bytes
    meta: BlockMetaFile = field(default=None)  # type: ignore[assignment]
    finalized: bool = True

    def __post_init__(self) -> None:
        if self.meta is None:
            self.meta = BlockMetaFile.for_data(self.data)

    @property
    def length(self) -> int:
        return len(self.data)

    def appended(self, extra: bytes) -> "Block":
        """A new finalized block version with ``extra`` appended and the
        generation stamp bumped (Section 6.2.3 append semantics)."""
        new_data = self.data + extra
        return Block(
            identity=self.identity.next_generation(),
            data=new_data,
            meta=BlockMetaFile.for_data(new_data),
        )

    def verify(self) -> bool:
        return self.meta.verify(self.data)
