"""A DFS client: file-level reads over the NameNode/DataNode pair."""

from __future__ import annotations

from repro.storage.hdfs.block import BlockId
from repro.storage.hdfs.namenode import FileStatus, NameNode
from repro.storage.remote import ReadResult


class DfsClient:
    """Client-side logic: resolve blocks via the NameNode, read from
    DataNodes, reassemble file ranges."""

    def __init__(self, namenode: NameNode) -> None:
        self.namenode = namenode

    def create(self, path: str, data: bytes) -> FileStatus:
        return self.namenode.create_file(path, data)

    def append(self, path: str, extra: bytes) -> BlockId:
        return self.namenode.append_to_file(path, extra)

    def delete(self, path: str) -> list[BlockId]:
        return self.namenode.delete_file(path)

    def file_length(self, path: str) -> int:
        return self.namenode.get_file_status(path).length

    def read(self, path: str, offset: int, length: int) -> ReadResult:
        """Ranged read across block boundaries; latency sums DataNode I/O."""
        status = self.namenode.get_file_status(path)
        if offset < 0 or length < 0:
            raise ValueError(f"offset/length must be >= 0, got {offset}/{length}")
        parts: list[bytes] = []
        latency = 0.0
        position = 0
        remaining_offset = offset
        remaining_length = min(length, max(status.length - offset, 0))
        for identity in status.blocks:
            nodes = self.namenode.locate_block(identity)
            block_length = nodes[0].block_length(identity)
            block_start = position
            position += block_length
            if remaining_length <= 0:
                break
            if remaining_offset >= position:
                continue
            in_block = max(remaining_offset - block_start, 0)
            take = min(block_length - in_block, remaining_length)
            result = nodes[0].read_block(identity, in_block, take)
            parts.append(result.data)
            latency += result.latency
            remaining_offset += take
            remaining_length -= take
        return ReadResult(data=b"".join(parts), latency=latency)

    def read_fully(self, path: str) -> ReadResult:
        return self.read(path, 0, self.file_length(path))
