"""A DFS client: file-level reads over the NameNode/DataNode pair.

The read path is resilience-aware: every block has up to ``replication``
replica locations, and the client walks them with per-node circuit
breakers (open-breaker nodes are skipped without a connection attempt) and
an exponential-backoff retry loop across replica rounds.  Only when every
replica of a block stays unreachable through the retry budget does the
read fail -- the condition the chaos soak asserts never happens while at
least one replica survives.
"""

from __future__ import annotations

from repro.core.metrics import MetricsRegistry
from repro.errors import DataNodeOfflineError, RetriesExhaustedError
from repro.resilience.health import NodeHealthTracker
from repro.resilience.policy import RetryPolicy
from repro.sim.rng import RngStream
from repro.storage.hdfs.block import BlockId
from repro.storage.hdfs.datanode import BlockReadResult, DataNode
from repro.storage.hdfs.namenode import FileStatus, NameNode
from repro.storage.remote import ReadResult


class DfsClient:
    """Client-side logic: resolve blocks via the NameNode, read from
    DataNodes (failing over across replicas), reassemble file ranges."""

    def __init__(
        self,
        namenode: NameNode,
        *,
        retry_policy: RetryPolicy | None = None,
        health: NodeHealthTracker | None = None,
        metrics: MetricsRegistry | None = None,
        rng: RngStream | None = None,
    ) -> None:
        self.namenode = namenode
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(max_attempts=2)
        )
        self.health = health
        self.metrics = metrics if metrics is not None else MetricsRegistry("dfs-client")
        self.rng = rng if rng is not None else RngStream(0, "dfs/retry")

    def create(self, path: str, data: bytes) -> FileStatus:
        return self.namenode.create_file(path, data)

    def append(self, path: str, extra: bytes) -> BlockId:
        return self.namenode.append_to_file(path, extra)

    def delete(self, path: str) -> list[BlockId]:
        return self.namenode.delete_file(path)

    def file_length(self, path: str) -> int:
        return self.namenode.get_file_status(path).length

    # -- replica failover ----------------------------------------------------

    def _read_from_replicas(
        self, nodes: list[DataNode], identity: BlockId, offset: int, length: int
    ) -> BlockReadResult:
        """Read one block range, failing over across replicas.

        Walks the replica list per round, skipping open-breaker nodes;
        between rounds the retry policy charges its backoff as latency.
        """
        policy = self.retry_policy
        extra_latency = 0.0
        last_exc: Exception | None = None
        for round_number in range(1, policy.max_attempts + 1):
            for node in nodes:
                breaker = (
                    self.health.breaker_for(node.name)
                    if self.health is not None
                    else None
                )
                if breaker is not None and not breaker.allow():
                    continue
                try:
                    result = node.read_block(identity, offset, length)
                except DataNodeOfflineError as exc:
                    last_exc = exc
                    self.metrics.counter("failovers").inc()
                    self.metrics.record_error("dfs_read", exc)
                    if self.health is not None:
                        self.health.record_failure(node.name)
                    continue
                if self.health is not None:
                    self.health.record_success(node.name)
                if extra_latency:
                    self.metrics.counter("degraded_serves").inc()
                return BlockReadResult(
                    data=result.data, latency=result.latency + extra_latency
                )
            if round_number < policy.max_attempts:
                self.metrics.counter("retries").inc()
                extra_latency += policy.backoff(round_number, self.rng)
        self.metrics.counter("retry_exhausted").inc()
        raise RetriesExhaustedError(
            f"every replica of {identity} failed across "
            f"{policy.max_attempts} rounds"
        ) from last_exc

    # -- reads ---------------------------------------------------------------

    def read(self, path: str, offset: int, length: int) -> ReadResult:
        """Ranged read across block boundaries; latency sums DataNode I/O."""
        status = self.namenode.get_file_status(path)
        if offset < 0 or length < 0:
            raise ValueError(f"offset/length must be >= 0, got {offset}/{length}")
        parts: list[bytes] = []
        latency = 0.0
        position = 0
        remaining_offset = offset
        remaining_length = min(length, max(status.length - offset, 0))
        for identity in status.blocks:
            nodes = self.namenode.locate_block(identity)
            # block length comes from the NameNode's metadata table, so
            # range planning works even while replicas are down
            block_length = self.namenode.block_length(identity)
            block_start = position
            position += block_length
            if remaining_length <= 0:
                break
            if remaining_offset >= position:
                continue
            in_block = max(remaining_offset - block_start, 0)
            take = min(block_length - in_block, remaining_length)
            result = self._read_from_replicas(nodes, identity, in_block, take)
            parts.append(result.data)
            latency += result.latency
            remaining_offset += take
            remaining_length -= take
        return ReadResult(data=b"".join(parts), latency=latency)

    def read_fully(self, path: str) -> ReadResult:
        return self.read(path, 0, self.file_length(path))
