"""ViewFs: a client-side mount table over multiple HDFS namespaces.

Section 2.1.2: to scale HDFS, "Uber engineers instituted several
enhancements, such as the adoption of View File System (ViewFs)".  ViewFs
federates independent NameNodes behind one namespace: a mount table maps
path prefixes to clusters, and the client routes each operation to the
cluster owning the longest matching mount.
"""

from __future__ import annotations

from repro.errors import FileNotFoundInStorageError
from repro.storage.hdfs.client import DfsClient
from repro.storage.remote import ReadResult


class ViewFs:
    """Longest-prefix-match routing across mounted DFS clients.

    >>> # viewfs = ViewFs({"/warehouse": wh_client, "/logs": logs_client})
    >>> # viewfs.read("/warehouse/orders/part-0", 0, 100)
    """

    def __init__(self, mounts: dict[str, DfsClient]) -> None:
        if not mounts:
            raise ValueError("at least one mount is required")
        self._mounts: dict[str, DfsClient] = {}
        for prefix, client in mounts.items():
            normalized = "/" + prefix.strip("/")
            if normalized in self._mounts:
                raise ValueError(f"duplicate mount {normalized!r}")
            self._mounts[normalized] = client

    def add_mount(self, prefix: str, client: DfsClient) -> None:
        normalized = "/" + prefix.strip("/")
        if normalized in self._mounts:
            raise ValueError(f"duplicate mount {normalized!r}")
        self._mounts[normalized] = client

    def mounts(self) -> list[str]:
        return sorted(self._mounts)

    def resolve(self, path: str) -> tuple[DfsClient, str]:
        """The client owning ``path`` (longest prefix wins) and the path."""
        if not path.startswith("/"):
            path = "/" + path
        best: str | None = None
        for prefix in self._mounts:
            if path == prefix or path.startswith(prefix + "/"):
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            raise FileNotFoundInStorageError(
                f"no mount covers {path!r}; mounts: {self.mounts()}"
            )
        return self._mounts[best], path

    # -- routed operations ---------------------------------------------------

    def create(self, path: str, data: bytes):
        client, path = self.resolve(path)
        return client.create(path, data)

    def append(self, path: str, extra: bytes):
        client, path = self.resolve(path)
        return client.append(path, extra)

    def delete(self, path: str):
        client, path = self.resolve(path)
        return client.delete(path)

    def file_length(self, path: str) -> int:
        client, path = self.resolve(path)
        return client.file_length(path)

    def read(self, path: str, offset: int, length: int) -> ReadResult:
        client, path = self.resolve(path)
        return client.read(path, offset, length)

    def read_fully(self, path: str) -> ReadResult:
        client, path = self.resolve(path)
        return client.read_fully(path)
