"""Simulated storage substrates.

- :mod:`repro.storage.device` -- HDD/SSD device models with bounded
  concurrency; the source of "blocked process" counts (Section 2.2, Fig 14).
- :mod:`repro.storage.object_store` -- S3-like remote object store with
  per-request overhead and optional request-rate throttling.
- :mod:`repro.storage.remote` -- the ``DataSource`` interface the local
  cache reads through, plus synthetic and object-store-backed sources.
- :mod:`repro.storage.hdfs` -- an HDFS subset (NameNode, DataNodes, blocks
  with generation stamps) sufficient for the HDFS local cache case study.
"""

from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.object_store import ObjectStore, ObjectStoreProfile
from repro.storage.remote import (
    DataSource,
    NullDataSource,
    ObjectStoreDataSource,
    ReadResult,
    SyntheticDataSource,
)

__all__ = [
    "DeviceProfile",
    "StorageDevice",
    "ObjectStore",
    "ObjectStoreProfile",
    "DataSource",
    "ReadResult",
    "SyntheticDataSource",
    "NullDataSource",
    "ObjectStoreDataSource",
]
