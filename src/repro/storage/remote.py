"""``DataSource``: the external storage interface the cache reads through.

Figure 3's "data sources" box.  A source serves positional reads and
reports the modelled latency of each; the cache manager charges that
latency on misses (read-through) and on fallback paths (timeouts,
corruption).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import FileNotFoundInStorageError
from repro.obs.tracer import current_tracer
from repro.sim.kernel import (
    Cancelled,
    Timeout,
    charge_wasted_bytes,
    current_kernel,
    defer_io,
    io_collection_active,
)
from repro.storage.object_store import ObjectStore


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Outcome of a positional read against a source or the cache."""

    data: bytes
    latency: float


def _remote_transfer_op(actor: str, nbytes: int, latency: float):
    """Build a replay op experiencing a remote transfer of ``latency`` s.

    Cancellation mid-transfer charges the partial time and accounts the
    bytes already streamed as wasted (the hedge-loser signal).
    """

    def op():
        tracer = current_tracer()
        clock = current_kernel().clock
        with tracer.span("remote_read", actor=actor, size=nbytes) as span:
            started = clock.now()
            try:
                yield Timeout(latency)
            except Cancelled:
                moved = clock.now() - started
                span.charge("remote", moved)
                if latency > 0:
                    charge_wasted_bytes(int(nbytes * moved / latency))
                raise
            span.charge("remote", latency)
        return latency

    return op


@runtime_checkable
class DataSource(Protocol):
    """A remote file namespace supporting ranged reads."""

    def file_length(self, file_id: str) -> int:
        ...

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        ...


class SyntheticDataSource:
    """Deterministic synthetic file contents with a modelled latency.

    Files are registered with a length; contents are generated on demand
    from ``sha256(file_id || block_index)`` so any byte range is
    reproducible without storing petabytes.  Latency follows the
    object-store formula ``base_latency + size / bandwidth``.
    """

    _CHUNK = 64  # one sha256 digest covers 64 bytes via double expansion

    def __init__(
        self, *, base_latency: float = 0.03, bandwidth: float = 120e6
    ) -> None:
        if base_latency < 0:
            raise ValueError("base_latency must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self._lengths: dict[str, int] = {}
        self.request_count = 0
        self.bytes_served = 0

    def add_file(self, file_id: str, length: int) -> None:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        self._lengths[file_id] = length

    def file_length(self, file_id: str) -> int:
        try:
            return self._lengths[file_id]
        except KeyError:
            raise FileNotFoundInStorageError(file_id) from None

    def file_ids(self) -> list[str]:
        return sorted(self._lengths)

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        total = self.file_length(file_id)
        if offset < 0 or length < 0:
            raise ValueError(f"offset/length must be >= 0, got {offset}/{length}")
        end = min(offset + length, total)
        if offset >= total:
            data = b""
        else:
            data = self._generate(file_id, offset, end - offset)
        self.request_count += 1
        self.bytes_served += len(data)
        latency = self.base_latency + len(data) / self.bandwidth
        if io_collection_active():
            defer_io(_remote_transfer_op("synthetic-source", len(data), latency))
            return ReadResult(data=data, latency=0.0)
        return ReadResult(data=data, latency=latency)

    def _generate(self, file_id: str, offset: int, length: int) -> bytes:
        first_chunk = offset // self._CHUNK
        last_chunk = (offset + length - 1) // self._CHUNK
        parts: list[bytes] = []
        for chunk in range(first_chunk, last_chunk + 1):
            seed = hashlib.sha256(f"{file_id}:{chunk}".encode("utf-8")).digest()
            parts.append(seed + hashlib.sha256(seed).digest())
        blob = b"".join(parts)
        start = offset - first_chunk * self._CHUNK
        return blob[start : start + length]


class NullDataSource:
    """Zero-filled synthetic files: the fastest possible source.

    Benchmarks that only measure latency/byte accounting (not content
    correctness) use this to avoid the hashing cost of
    :class:`SyntheticDataSource` while keeping the identical latency model.
    """

    def __init__(
        self, *, base_latency: float = 0.03, bandwidth: float = 120e6
    ) -> None:
        if base_latency < 0:
            raise ValueError("base_latency must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self._lengths: dict[str, int] = {}
        self.request_count = 0
        self.bytes_served = 0

    def add_file(self, file_id: str, length: int) -> None:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        self._lengths[file_id] = length

    def file_length(self, file_id: str) -> int:
        try:
            return self._lengths[file_id]
        except KeyError:
            raise FileNotFoundInStorageError(file_id) from None

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        total = self.file_length(file_id)
        if offset < 0 or length < 0:
            raise ValueError(f"offset/length must be >= 0, got {offset}/{length}")
        size = max(min(offset + length, total) - offset, 0)
        self.request_count += 1
        self.bytes_served += size
        latency = self.base_latency + size / self.bandwidth
        if io_collection_active():
            defer_io(_remote_transfer_op("null-source", size, latency))
            return ReadResult(data=b"\x00" * size, latency=0.0)
        return ReadResult(data=b"\x00" * size, latency=latency)


class ObjectStoreDataSource:
    """Adapts an :class:`~repro.storage.object_store.ObjectStore` to
    :class:`DataSource` (real payloads, modelled latency and throttling)."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        # queueing share (throttle wait) of the last read's latency,
        # forwarded from the store for latency attribution
        self.last_queue_wait = 0.0

    @property
    def store(self) -> ObjectStore:
        return self._store

    def file_length(self, file_id: str) -> int:
        return self._store.object_length(file_id)

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        data, latency = self._store.get_range(file_id, offset, length)
        self.last_queue_wait = self._store.last_throttle_wait
        return ReadResult(data=data, latency=latency)
