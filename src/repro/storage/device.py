"""Block-device models with bounded concurrency and blocked-request accounting.

The paper's HDFS figures hinge on one physical fact: high-density HDDs gain
capacity much faster than bandwidth, so read bursts queue at the device and
processes block on I/O (Section 2.2; Figure 14 counts up to ~5000 blocked
processes per minute).  We model a device as ``channels`` parallel servers
(an HDD has 1, an SSD has many); each request occupies the earliest-free
channel for ``seek + size / bandwidth`` seconds.  A request that arrives
while all channels are busy *waits* -- that wait is exactly the paper's
"blocked process" signal, which :class:`StorageDevice` records per request
so benchmarks can bucket it per minute.

The model has two engines.  The *analytic* engine (the default) needs no
coroutines: given the arrival time from the simulation clock, completion
time follows from channel state.  Attaching a device to a
:class:`~repro.sim.kernel.Kernel` (:meth:`StorageDevice.attach_kernel`)
switches reads and writes issued under deferred-I/O collection to the
*kernel* engine: the device becomes a FIFO :class:`~repro.sim.kernel.
Resource` of ``channels`` slots, requesting processes genuinely block in
its queue, waits are measured from live occupancy, and a cancelled
request accounts the bytes its partial transfer wasted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.tracer import current_tracer
from repro.sim.clock import Clock, SimClock
from repro.sim.kernel import (
    Cancelled,
    Timeout,
    charge_wasted_bytes,
    defer_io,
    io_collection_active,
)

if TYPE_CHECKING:
    from repro.core.metrics import MetricsRegistry
    from repro.sim.kernel import Kernel, Resource


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """Performance envelope of one device.

    Attributes:
        name: label for reports.
        read_bandwidth: sustained read throughput, bytes/second.
        write_bandwidth: sustained write throughput, bytes/second.
        seek_latency: fixed per-request overhead, seconds (HDD seek +
            rotation, or SSD command overhead).
        channels: requests served truly in parallel (queue depth before
            arrivals start waiting).
    """

    name: str
    read_bandwidth: float
    write_bandwidth: float
    seek_latency: float
    channels: int = 1

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.seek_latency < 0:
            raise ValueError("seek_latency must be >= 0")
        if self.channels <= 0:
            raise ValueError("channels must be positive")

    @classmethod
    def hdd_high_density(cls) -> "DeviceProfile":
        """A dense 16+TB HDD: big capacity, one actuator, ~180 MB/s."""
        return cls(
            name="hdd-16tb",
            read_bandwidth=180e6,
            write_bandwidth=160e6,
            seek_latency=8e-3,
            channels=1,
        )

    @classmethod
    def hdd_legacy(cls) -> "DeviceProfile":
        """A 4TB HDD of the older SKU the paper says is being replaced."""
        return cls(
            name="hdd-4tb",
            read_bandwidth=160e6,
            write_bandwidth=140e6,
            seek_latency=9e-3,
            channels=1,
        )

    @classmethod
    def ssd_local(cls) -> "DeviceProfile":
        """A local NVMe SSD: ~2 GB/s, deep internal parallelism."""
        return cls(
            name="nvme-ssd",
            read_bandwidth=2.0e9,
            write_bandwidth=1.2e9,
            seek_latency=80e-6,
            channels=32,
        )


@dataclass(slots=True)
class RequestRecord:
    """One completed request, for offline analysis."""

    arrival: float
    wait: float
    service: float
    size: int
    is_read: bool

    @property
    def latency(self) -> float:
        return self.wait + self.service

    @property
    def completion(self) -> float:
        return self.arrival + self.latency


@dataclass(slots=True)
class DeviceStats:
    """Aggregate counters plus the full request log."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    blocked_requests: int = 0
    total_wait: float = 0.0
    busy_time: float = 0.0
    # kernel mode only: requests abandoned mid-flight (hedge losers,
    # chaos aborts) and the bytes their partial transfers had moved
    cancelled_requests: int = 0
    cancelled_bytes: int = 0
    records: list[RequestRecord] = field(default_factory=list)


class StorageDevice:
    """An analytic queueing model of one device on a simulation clock.

    ``read``/``write`` return the request's total latency (wait + service);
    the caller decides whether to advance the clock by it (synchronous
    callers do; pipelined callers issue several requests at one arrival
    time and take the max).
    """

    def __init__(
        self,
        profile: DeviceProfile,
        clock: Clock | None = None,
        *,
        keep_records: bool = True,
        queueing: bool = True,
        service_bucket: str = "remote",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.stats = DeviceStats()
        self._keep_records = keep_records
        self._queueing = queueing
        # attribution bucket replayed service time is charged to ("remote"
        # for a DataNode's HDD, "cache_ssd" for a cache's SSD)
        self.service_bucket = service_bucket
        # optional registry for the live device_queue_depth /
        # blocked_processes gauges (kernel mode)
        self.metrics = metrics
        # queue wait of the most recent request, for latency attribution
        # (tracing splits a device latency into queueing vs. service time)
        self.last_wait = 0.0
        # min-heap of per-channel next-free timestamps
        self._channel_free: list[float] = [0.0] * profile.channels
        # kernel engine (attach_kernel): a FIFO resource of `channels` slots
        self._kernel: "Kernel | None" = None
        self._resource: "Resource | None" = None

    def attach_kernel(self, kernel: "Kernel") -> "StorageDevice":
        """Bind the device to an event kernel (enables the queued engine).

        Reads/writes issued under deferred-I/O collection then block at a
        real FIFO resource instead of consulting analytic channel state.
        """
        self._kernel = kernel
        self._resource = kernel.resource(
            self.profile.channels, name=f"device/{self.profile.name}"
        )
        return self

    @property
    def kernel_attached(self) -> bool:
        return self._resource is not None

    def _submit(self, size: int, is_read: bool) -> float:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        arrival = self.clock.now()
        bandwidth = (
            self.profile.read_bandwidth if is_read else self.profile.write_bandwidth
        )
        service = self.profile.seek_latency + size / bandwidth
        if self._resource is not None and io_collection_active():
            # kernel engine: decision-visible counters move at the arrival
            # instant (synchronous callers may inspect them); the transfer
            # itself is deferred to the owning process, which experiences
            # queueing at the device resource.  Timing stats are recorded
            # at replay from measured waits.
            stats = self.stats
            if is_read:
                stats.reads += 1
                stats.bytes_read += size
            else:
                stats.writes += 1
                stats.bytes_written += size
            self.last_wait = 0.0
            defer_io(lambda: self._transfer_op(size, service, is_read))
            return 0.0
        if self._queueing:
            free_at = heapq.heappop(self._channel_free)
            start = max(arrival, free_at)
            heapq.heappush(self._channel_free, start + service)
        else:
            # contention-free mode: pure service time.  Used where the
            # caller does not advance the clock between requests (the
            # Presto simulator measures per-request latency analytically).
            start = arrival
        wait = start - arrival
        self.last_wait = wait

        stats = self.stats
        if is_read:
            stats.reads += 1
            stats.bytes_read += size
        else:
            stats.writes += 1
            stats.bytes_written += size
        if wait > 0:
            stats.blocked_requests += 1
            stats.total_wait += wait
        stats.busy_time += service
        if self._keep_records:
            stats.records.append(
                RequestRecord(arrival=arrival, wait=wait, service=service,
                              size=size, is_read=is_read)
            )
        return wait + service

    def read(self, size: int) -> float:
        """Submit a read of ``size`` bytes at the current time; returns latency."""
        return self._submit(size, is_read=True)

    def write(self, size: int) -> float:
        """Submit a write of ``size`` bytes at the current time; returns latency."""
        return self._submit(size, is_read=False)

    # -- kernel engine -------------------------------------------------------

    def read_proc(self, size: int):
        """Process-style read: experiences queueing, returns measured latency."""
        if self._resource is None:
            raise RuntimeError("read_proc requires attach_kernel()")
        self.stats.reads += 1
        self.stats.bytes_read += size
        service = self.profile.seek_latency + size / self.profile.read_bandwidth
        return (yield from self._transfer_op(size, service, is_read=True))

    def write_proc(self, size: int):
        """Process-style write: experiences queueing, returns measured latency."""
        if self._resource is None:
            raise RuntimeError("write_proc requires attach_kernel()")
        self.stats.writes += 1
        self.stats.bytes_written += size
        service = self.profile.seek_latency + size / self.profile.write_bandwidth
        return (yield from self._transfer_op(size, service, is_read=False))

    def _transfer_op(self, size: int, service: float, is_read: bool):
        """One replayed transfer: queue at the FIFO resource, then serve.

        Cancellation mid-queue abandons the slot claim; cancellation
        mid-service accounts the bytes already moved (hedge-loser waste)
        and charges the partial time so trace attribution stays exact.
        """
        tracer = current_tracer()
        resource = self._resource
        stats = self.stats
        span_name = "device_read" if is_read else "device_write"
        with tracer.span(span_name, actor=self.profile.name, size=size) as span:
            request = resource.request()
            self._update_gauges(tracer)
            arrival = self.clock.now()
            try:
                try:
                    yield request
                except Cancelled:
                    span.charge("queueing", self.clock.now() - arrival)
                    stats.cancelled_requests += 1
                    raise
                wait = self.clock.now() - arrival
                span.charge("queueing", wait)
                started = self.clock.now()
                try:
                    yield Timeout(service)
                except Cancelled:
                    served = self.clock.now() - started
                    span.charge(self.service_bucket, served)
                    moved = int(size * served / service) if service > 0 else 0
                    stats.cancelled_requests += 1
                    stats.cancelled_bytes += moved
                    stats.busy_time += served
                    charge_wasted_bytes(moved)
                    raise
                span.charge(self.service_bucket, service)
            finally:
                resource.release(request)
                self._update_gauges(tracer)
        stats.busy_time += service
        if wait > 0.0:
            stats.blocked_requests += 1
            stats.total_wait += wait
        if self._keep_records:
            stats.records.append(
                RequestRecord(arrival=arrival, wait=wait, service=service,
                              size=size, is_read=is_read)
            )
        self.last_wait = wait
        return wait + service

    def _update_gauges(self, tracer) -> None:
        if self.metrics is None or self._resource is None:
            return
        exemplar = tracer.current_span_id()
        self.metrics.gauge("device_queue_depth").set(
            self._resource.queue_depth, exemplar=exemplar
        )
        self.metrics.gauge("blocked_processes").set(
            self._resource.waiting, exemplar=exemplar
        )

    def queue_depth(self) -> int:
        """Requests currently in flight or waiting (at the clock's now).

        With a kernel attached this is *live* occupancy -- processes in
        service plus processes blocked in the resource's FIFO -- rather
        than a projection from analytic channel state.
        """
        if self._resource is not None:
            return self._resource.queue_depth
        now = self.clock.now()
        return sum(1 for free_at in self._channel_free if free_at > now)

    def utilization(self, horizon: float | None = None) -> float:
        """Busy fraction of one channel-second over ``horizon`` (default: now)."""
        elapsed = horizon if horizon is not None else self.clock.now()
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / (elapsed * self.profile.channels))

    def blocked_per_bucket(
        self, bucket_seconds: float = 60.0, *, min_wait: float = 0.0
    ) -> dict[int, int]:
        """Per-time-bucket count of requests that waited (> ``min_wait``).

        This is the reproduction's "blocked processes per minute" series
        (Figure 14): each request that found every channel busy corresponds
        to a process in uninterruptible sleep on the real node.
        """
        buckets: dict[int, int] = {}
        for record in self.stats.records:
            if record.wait > min_wait:
                bucket = int(record.arrival // bucket_seconds)
                buckets[bucket] = buckets.get(bucket, 0) + 1
        return buckets

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
