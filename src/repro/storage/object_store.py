"""An S3-like remote object store model.

The compute-storage-disaggregation pain the paper opens with: every byte
Presto scans crosses the network or an object-store API, each request pays
tens of milliseconds of overhead, and the provider throttles aggregate
request rate.  The model charges per request::

    latency = base_latency + size / bandwidth (+ throttle delay)

Throttling is a token bucket over requests/second; once the bucket is
drained, requests are serialized at the refill rate -- matching the
"API throughput" strain of Section 1.  Payloads are held in memory keyed by
name; :class:`~repro.storage.remote.SyntheticDataSource` is the alternative
when materializing data is unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    FileNotFoundInStorageError,
    RemoteCorruptionError,
    RemoteReadError,
)
from repro.obs.tracer import current_tracer
from repro.sim.clock import Clock, SimClock
from repro.sim.kernel import (
    Cancelled,
    Timeout,
    charge_wasted_bytes,
    defer_io,
    io_collection_active,
)


@dataclass(frozen=True, slots=True)
class ObjectStoreProfile:
    """Latency/throughput envelope of a remote object store.

    Attributes:
        base_latency: fixed time-to-first-byte per GET, seconds.
        bandwidth: per-request streaming throughput, bytes/second.
        max_requests_per_second: token-bucket throttle (``None`` = none).
        burst: token bucket depth.
    """

    base_latency: float = 0.03
    bandwidth: float = 120e6
    max_requests_per_second: float | None = None
    burst: int = 100

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ValueError("base_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.max_requests_per_second is not None and self.max_requests_per_second <= 0:
            raise ValueError("max_requests_per_second must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")

    @classmethod
    def s3_like(cls) -> "ObjectStoreProfile":
        """Cloud object storage: ~30 ms TTFB, ~120 MB/s per stream."""
        return cls(base_latency=0.03, bandwidth=120e6)

    @classmethod
    def hdfs_remote(cls) -> "ObjectStoreProfile":
        """Remote HDFS over the data-center network: lower TTFB."""
        return cls(base_latency=0.004, bandwidth=400e6)


class ObjectStore:
    """In-memory object payloads plus the latency/throttle model."""

    def __init__(
        self, profile: ObjectStoreProfile | None = None, clock: Clock | None = None
    ) -> None:
        self.profile = profile if profile is not None else ObjectStoreProfile.s3_like()
        self.clock = clock if clock is not None else SimClock()
        self._objects: dict[str, bytes] = {}
        self._tokens = float(self.profile.burst)
        self._last_refill = 0.0
        self.request_count = 0
        self.bytes_served = 0
        self.throttled_requests = 0
        # throttle wait folded into the last request's latency, exposed so
        # tracing can attribute it to the queueing bucket
        self.last_throttle_wait = 0.0
        # chaos injection: a RemoteFaultState (duck-typed to avoid importing
        # the resilience package) plus the rng stream drawing its dice, both
        # armed by ChaosInjector.set_remote_faults
        self.chaos = None
        self.chaos_rng = None
        self.chaos_failures = 0
        self.chaos_corruptions = 0
        self.chaos_delays = 0
        # kernel mode: optional cap on concurrent in-flight GETs (a
        # connection pool); None = unbounded, requests only pay latency
        self._connections = None

    def attach_kernel(self, kernel, *, max_concurrent_requests: int | None = None) -> "ObjectStore":
        """Bind to an event kernel; optionally bound in-flight requests.

        With a bound, replayed GETs queue FIFO at a connection resource so
        a burst of concurrent scans *experiences* head-of-line blocking at
        the store, not just token-bucket latency.
        """
        if max_concurrent_requests is not None:
            self._connections = kernel.resource(
                max_concurrent_requests, name="object-store/connections"
            )
        return self

    # -- namespace -----------------------------------------------------------

    def put_object(self, name: str, data: bytes) -> None:
        self._objects[name] = bytes(data)

    def delete_object(self, name: str) -> bool:
        return self._objects.pop(name, None) is not None

    def contains(self, name: str) -> bool:
        return name in self._objects

    def object_length(self, name: str) -> int:
        try:
            return len(self._objects[name])
        except KeyError:
            raise FileNotFoundInStorageError(name) from None

    def list_objects(self) -> list[str]:
        return sorted(self._objects)

    # -- data path --------------------------------------------------------------

    def get_range(self, name: str, offset: int, length: int) -> tuple[bytes, float]:
        """Ranged GET; returns ``(data, latency_seconds)``.

        Under deferred-I/O collection the throttle decision (token-bucket
        state) and chaos dice still resolve at the arrival instant --
        identically to analytic mode -- but the transfer time is deferred:
        a replay operation is appended to the active plan and the reported
        latency is 0.  The owning process then *experiences* the throttle
        wait and streaming time (and any connection-pool queueing) when it
        replays the plan.
        """
        try:
            payload = self._objects[name]
        except KeyError:
            raise FileNotFoundInStorageError(name) from None
        data = payload[offset : offset + length]
        latency = self._request_latency(len(data))
        self.request_count += 1
        if io_collection_active():
            throttle_wait = self.last_throttle_wait
            # chaos may raise; the wasted attempt's transfer op was not
            # yet deferred, matching the analytic path where a failed GET
            # contributes no latency (the retry's backoff does).
            latency = self._apply_chaos(name, latency)
            self.bytes_served += len(data)
            defer_io(
                lambda: self._transfer_op(name, len(data), latency, throttle_wait)
            )
            # zero the side channel: the sync caller must not charge a
            # wait the replay op will charge from measurement
            self.last_throttle_wait = 0.0
            return data, 0.0
        latency = self._apply_chaos(name, latency)
        self.bytes_served += len(data)
        return data, latency

    def _transfer_op(self, name: str, nbytes: int, latency: float, throttle_wait: float):
        """Replay one GET: queue for a connection, wait out throttle + stream."""
        tracer = current_tracer()
        began = self.clock.now()
        with tracer.span("object_store_get", actor="object-store", object=name) as span:
            request = self._connections.request() if self._connections is not None else None
            try:
                queued = self.clock.now()
                if request is not None:
                    try:
                        yield request
                    except Cancelled:
                        span.charge("queueing", self.clock.now() - queued)
                        raise
                    span.charge("queueing", self.clock.now() - queued)
                if throttle_wait > 0.0:
                    started = self.clock.now()
                    try:
                        yield Timeout(throttle_wait)
                    except Cancelled:
                        span.charge("queueing", self.clock.now() - started)
                        raise
                    span.charge("queueing", throttle_wait)
                transfer = max(0.0, latency - throttle_wait)
                started = self.clock.now()
                try:
                    yield Timeout(transfer)
                except Cancelled:
                    moved = self.clock.now() - started
                    span.charge("remote", moved)
                    if transfer > 0:
                        charge_wasted_bytes(int(nbytes * moved / transfer))
                    raise
                span.charge("remote", transfer)
            finally:
                if request is not None:
                    self._connections.release(request)
        return self.clock.now() - began

    def set_chaos(self, state, rng) -> None:
        """Arm (or, with an inactive state, disarm) request-level faults."""
        self.chaos = state
        self.chaos_rng = rng

    def _apply_chaos(self, name: str, latency: float) -> float:
        """Roll injected request faults; failed requests still count as API
        calls (the provider billed them) before the error surfaces."""
        state = self.chaos
        if state is None or self.chaos_rng is None or not state.active:
            return latency
        rng = self.chaos_rng.rng
        if state.fail_probability > 0 and float(rng.random()) < state.fail_probability:
            self.chaos_failures += 1
            raise RemoteReadError(f"injected object-store failure on {name!r}")
        if state.corrupt_probability > 0 and (
            float(rng.random()) < state.corrupt_probability
        ):
            self.chaos_corruptions += 1
            raise RemoteCorruptionError(
                f"injected object-store corruption on {name!r}"
            )
        if state.delay_probability > 0 and (
            float(rng.random()) < state.delay_probability
        ):
            self.chaos_delays += 1
            current_tracer().current().event(
                "remote_brownout_delay", seconds=state.delay_seconds
            )
            return latency + state.delay_seconds
        return latency

    def _request_latency(self, size: int) -> float:
        latency = self.profile.base_latency + size / self.profile.bandwidth
        self.last_throttle_wait = 0.0
        limit = self.profile.max_requests_per_second
        if limit is None:
            return latency
        now = self.clock.now()
        self._tokens = min(
            float(self.profile.burst),
            self._tokens + (now - self._last_refill) * limit,
        )
        self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return latency
        # Out of tokens: this request waits for the next token to refill.
        deficit = 1.0 - self._tokens
        self._tokens = 0.0
        self.throttled_requests += 1
        self.last_throttle_wait = deficit / limit
        current_tracer().current().event("throttled", wait=self.last_throttle_wait)
        return latency + deficit / limit
