"""Virtual-time distributed tracing (DESIGN.md §8).

Public surface:

- :func:`current_tracer` / :func:`installed_tracer` -- the global tracer
  slot instrumented code reads (no-op by default; zero per-read cost).
- :class:`SimTracer` / :class:`SpanBuffer` -- enable tracing for a run.
- :mod:`~repro.obs.attribution` / :mod:`~repro.obs.critical_path` /
  :mod:`~repro.obs.export` -- analysis and exporters over recorded spans.
- :class:`KernelProfiler` / :data:`NOOP_PROFILER` -- scheduler profiling
  with wait-state attribution (DESIGN.md §12).
- :class:`TelemetrySampler` -- continuous virtual-time metrics sampling.
"""

from repro.obs.attribution import (
    HEDGE_ATTEMPT_ATTR,
    OFF_PATH_ATTR,
    TraceAttribution,
    aggregate,
    attribute_buffer,
    attribute_trace,
    format_attribution,
    is_off_path,
)
from repro.obs.buffer import SpanBuffer
from repro.obs.critical_path import PathStep, critical_path, format_critical_path
from repro.obs.export import (
    chrome_trace_json,
    jsonl_to_dicts,
    spans_from_dicts,
    spans_to_jsonl,
    to_chrome_trace,
    tree_signature,
)
from repro.obs.profiler import (
    NOOP_PROFILER,
    KernelProfile,
    KernelProfiler,
    NoopKernelProfiler,
    classify_wait,
    process_type,
)
from repro.obs.sampler import DEFAULT_COUNTERS, TelemetrySampler, format_telemetry
from repro.obs.span import ATTRIBUTION_BUCKETS, NOOP_SPAN, NoopSpan, Span
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    SimTracer,
    current_tracer,
    installed_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "DEFAULT_COUNTERS",
    "HEDGE_ATTEMPT_ATTR",
    "NOOP_PROFILER",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "OFF_PATH_ATTR",
    "KernelProfile",
    "KernelProfiler",
    "NoopKernelProfiler",
    "NoopSpan",
    "NoopTracer",
    "PathStep",
    "SimTracer",
    "Span",
    "SpanBuffer",
    "TelemetrySampler",
    "TraceAttribution",
    "aggregate",
    "attribute_buffer",
    "attribute_trace",
    "chrome_trace_json",
    "classify_wait",
    "critical_path",
    "current_tracer",
    "format_attribution",
    "format_critical_path",
    "format_telemetry",
    "installed_tracer",
    "is_off_path",
    "jsonl_to_dicts",
    "process_type",
    "reset_tracer",
    "set_tracer",
    "spans_from_dicts",
    "spans_to_jsonl",
    "to_chrome_trace",
    "tree_signature",
]
