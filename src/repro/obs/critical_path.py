"""Critical-path extraction over a trace's span tree.

Under a virtual clock the span tree is a *cost* tree, not a timeline:
sibling spans executed sequentially in simulation order and each span's
weight is its charge total.  The critical path is therefore the
heaviest-descendant chain from the root -- the sequence of operations an
optimisation would have to touch to shorten the request.  Hedge-attempt
subtrees are skipped (they are off the serving path by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.attribution import _children_index, is_off_path
from repro.obs.span import Span


@dataclass(slots=True)
class PathStep:
    """One hop on the critical path."""

    name: str
    actor: str
    span_id: str
    self_seconds: float
    subtree_seconds: float
    dominant_bucket: str


def _subtree_cost(span: Span, index: dict[str | None, list[Span]]) -> float:
    if is_off_path(span):
        return 0.0
    total = span.charged_total
    for child in index.get(span.span_id, ()):
        total += _subtree_cost(child, index)
    return total


def _dominant_bucket(span: Span) -> str:
    if not span.charges:
        return "-"
    # max by (seconds, bucket) so float ties break deterministically
    return max(span.charges.items(), key=lambda kv: (kv[1], kv[0]))[0]


def critical_path(spans: list[Span]) -> list[PathStep]:
    """The heaviest root-to-leaf chain of one trace."""
    if not spans:
        return []
    roots = [s for s in spans if s.parent_id is None]
    if not roots:
        return []
    index = _children_index(spans)
    steps: list[PathStep] = []
    node = roots[0]
    while True:
        steps.append(
            PathStep(
                name=node.name,
                actor=node.actor,
                span_id=node.span_id,
                self_seconds=node.charged_total,
                subtree_seconds=_subtree_cost(node, index),
                dominant_bucket=_dominant_bucket(node),
            )
        )
        children = [
            c for c in index.get(node.span_id, ()) if not is_off_path(c)
        ]
        if not children:
            return steps
        # heaviest child; ties resolve by (start, span_id) for determinism
        node = max(
            children,
            key=lambda c: (_subtree_cost(c, index), -c.start, c.span_id),
        )


def format_critical_path(steps: list[PathStep]) -> str:
    if not steps:
        return "(empty trace)"
    lines = []
    for depth, step in enumerate(steps):
        actor = f" @{step.actor}" if step.actor else ""
        lines.append(
            f"{'  ' * depth}{step.name}{actor}  "
            f"self={step.self_seconds:.6f}s  subtree={step.subtree_seconds:.6f}s  "
            f"[{step.dominant_bucket}]"
        )
    return "\n".join(lines)
