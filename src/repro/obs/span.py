"""Span: one timed unit of work on the virtual clock.

A span records *where* virtual latency came from, not how long a region of
wall-clock code took.  In this simulation latencies are returned values
(``StorageDevice.read`` hands back seconds; the ``SimClock`` rarely advances
while a read executes), so a span's primary payload is its ``charges``
dict -- explicit per-bucket attributions recorded at exactly the call sites
that add latency to a result.  Start/end timestamps (from the tracer's
clock) order spans; charges measure them.

Spans are context managers and must be closed that way or via
``try/finally`` -- replint rule TRC001 enforces this repo-wide.
"""

from __future__ import annotations

from typing import Any, Iterator

# Canonical attribution buckets (DESIGN.md §8).  ``charge`` accepts any
# bucket name, but attribution reports group these first, in this order.
ATTRIBUTION_BUCKETS = (
    "cache_mem",
    "cache_ssd",
    "remote",
    "queueing",
    "retry_backoff",
    "network",
    "compute",
)


class Span:
    """A single traced operation with parent/child links and latency charges.

    Created via ``tracer.span(...)`` (never directly in instrumented code);
    the tracer assigns deterministic ids and timestamps.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "actor",
        "start",
        "end",
        "attrs",
        "events",
        "charges",
        "sampled",
        "_tracer",
    )

    def __init__(
        self,
        *,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        actor: str,
        start: float,
        sampled: bool,
        tracer: Any,
        attrs: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.actor = actor
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []
        self.charges: dict[str, float] = {}
        self.sampled = sampled
        self._tracer = tracer

    # -- recording -----------------------------------------------------------

    def charge(self, bucket: str, seconds: float) -> None:
        """Attribute ``seconds`` of virtual latency to ``bucket``.

        Negative/zero charges are dropped (tiny negatives arise from
        floating-point subtraction when decomposing a composite latency).
        """
        if seconds <= 0.0:
            return
        self.charges[bucket] = self.charges.get(bucket, 0.0) + seconds

    def annotate(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (retry, breaker trip, hedge launch, ...)."""
        entry: dict[str, Any] = {"name": name}
        if attrs:
            entry.update(attrs)
        self.events.append(entry)

    @property
    def charged_total(self) -> float:
        return sum(self.charges.values())

    @property
    def open(self) -> bool:
        return self.end is None

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        """End the span (idempotent); the tracer records it."""
        if self.end is not None:
            return
        self._tracer._finish(self)

    # TRC001 recognises either spelling in a ``finally`` block.
    end_span = finish

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: Any) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.finish()

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict, stable across runs for identical executions."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "events": [dict(e) for e in self.events],
            "charges": dict(self.charges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return (
            f"Span({self.name!r}, id={self.span_id}, trace={self.trace_id}, "
            f"{state}, charges={self.charges})"
        )


class NoopSpan:
    """The span handed out when tracing is disabled.

    Every method is a cheap no-op so instrumented code never branches on
    whether tracing is active.  A single module-level instance is shared.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    actor = ""
    start = 0.0
    end = 0.0
    attrs: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    charges: dict[str, float] = {}
    sampled = False
    charged_total = 0.0
    open = False

    def charge(self, bucket: str, seconds: float) -> None:
        return None

    def annotate(self, key: str, value: Any) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def finish(self) -> None:
        return None

    end_span = finish

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: Any) -> None:
        return None


NOOP_SPAN = NoopSpan()


def iter_children(
    span: Span, spans_by_parent: dict[str | None, list[Span]]
) -> Iterator[Span]:
    """Children of ``span`` in deterministic (start, span_id) order."""
    for child in sorted(
        spans_by_parent.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
    ):
        yield child
