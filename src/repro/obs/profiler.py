"""Scheduler profiler: wait-state attribution and event-loop counters.

ROADMAP item 1 wants the kernel an order of magnitude faster; this module
is the instrument panel that makes the hot loop attackable.  A
:class:`KernelProfiler` attached to a :class:`~repro.sim.kernel.Kernel`
records, with zero simulation impact:

- **Wait-state attribution** (virtual time): every process's lifetime is
  split into ``ready`` (spawned/woken but not yet stepped), ``running``
  (inside a resume -- zero virtual width by construction, accounted so the
  split telescopes), ``blocked`` (waiting on a resource slot, an event, a
  channel, or another process), and ``sleeping`` (waiting on a
  ``Timeout``/``Timer``).  States are charged per process *and* rolled up
  per process type, with a detail frame (the resource/event name) for
  flamegraphs.  The split is exact: the per-state segments of one process
  telescope to its reported lifetime.
- **Event-loop counters**: events popped, cancelled-handle reaps, timer
  inserts/cancels, resume scheduling, and the high-water marks of both
  scheduler lanes (the timer heap and the same-instant ready deque).
- **Host-CPU cost** per process type per resume, read through the
  sanctioned :mod:`repro.sim.hostclock` API.  Host fields live in their
  own report (:meth:`KernelProfile.host_report`) so the virtual report
  stays byte-identical across same-seed runs -- the determinism harness
  compares only the virtual side.

The default profiler is :data:`NOOP_PROFILER`; the kernel guards every
hook behind a single ``enabled`` flag read, so an unprofiled run pays one
attribute check per scheduler operation and allocates nothing.
"""

from __future__ import annotations

import json
import re
from typing import Any

# wait states (stable strings: they appear in reports and folded stacks)
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
SLEEPING = "sleeping"
WAIT_STATES = (READY, RUNNING, BLOCKED, SLEEPING)

#: distinct wait-detail frames retained per (ptype, state); further
#: details fold into "other" so pathological name cardinality stays bounded
DETAIL_CAP = 64

_TRAILING_ID = re.compile(r"[-_/]?\d+$")


def process_type(name: str) -> str:
    """Collapse a process name to its type: ``block-read/17`` -> ``block-read``.

    Trailing numeric ids (``worker-3``, ``q00042``, ``proc-9``) are the
    per-instance part; stripping them keeps profile cardinality bounded by
    the number of process *kinds* in the scenario, not the request count.
    """
    stripped = _TRAILING_ID.sub("", name)
    return stripped if stripped else name


class NoopKernelProfiler:
    """Profiling disabled: the kernel skips every hook on ``enabled``."""

    __slots__ = ()

    enabled = False


NOOP_PROFILER = NoopKernelProfiler()


class _ProcRecord:
    """Per-process state machine: current wait state plus exact segments."""

    __slots__ = ("pid", "name", "ptype", "birth", "end", "state", "since",
                 "states", "resumes", "detail")

    def __init__(self, pid: int, name: str, birth: float) -> None:
        self.pid = pid
        self.name = name
        self.ptype = process_type(name)
        self.birth = birth
        self.end: float | None = None
        self.state = READY
        self.since = birth
        self.states = {READY: 0.0, RUNNING: 0.0, BLOCKED: 0.0, SLEEPING: 0.0}
        self.resumes = 0
        # name of what the process is currently waiting on (None for
        # ready/running); charged into the per-ptype detail roll-up
        self.detail: str | None = None


class KernelProfile:
    """The collected measurements; build reports after (or mid-) run.

    Virtual-time data (wait states, event counters) and host-time data
    (CPU per resume) are deliberately segregated: ``virtual_report()`` is
    byte-identical across same-seed runs, ``host_report()`` is not and
    must never be folded into a determinism-checked artifact.
    """

    def __init__(self) -> None:
        # -- virtual side ----------------------------------------------------
        self.procs: dict[int, _ProcRecord] = {}
        self.events_popped = 0
        self.events_reaped = 0          # popped with a cancelled handle
        self.timer_inserts = 0
        self.timer_cancels = 0
        self.resume_schedules = 0       # wakeups pushed by the process driver
        self.heap_high_water = 0        # timer lane (the heap proper)
        self.ready_high_water = 0       # same-instant resume lane (deque)
        self.spawns = 0
        self.completions = 0
        self.cancellations = 0
        # (ptype, state, detail) -> virtual seconds, detail "" for none
        self._detail: dict[tuple[str, str, str], float] = {}
        # -- host side -------------------------------------------------------
        self.host_cpu: dict[str, float] = {}      # ptype -> CPU seconds
        self.host_resumes: dict[str, int] = {}    # ptype -> resume count

    # -- accounting (driven by KernelProfiler) ------------------------------

    def _charge(self, rec: _ProcRecord, now: float, new_state: str,
                detail: str | None) -> None:
        elapsed = now - rec.since
        rec.states[rec.state] += elapsed
        key = (rec.ptype, rec.state, rec.detail or "")
        if key in self._detail:
            self._detail[key] += elapsed
        else:
            per_state = sum(
                1 for (pt, st, __) in self._detail
                if pt == rec.ptype and st == rec.state
            )
            if per_state >= DETAIL_CAP:
                key = (rec.ptype, rec.state, "other")
            self._detail[key] = self._detail.get(key, 0.0) + elapsed
        rec.state = new_state
        rec.since = now
        rec.detail = detail

    def finalize(self, now: float) -> None:
        """Close every still-open state at ``now`` (idempotent at one time)."""
        for rec in self.procs.values():
            if rec.end is None:
                self._charge(rec, now, rec.state, rec.detail)

    # -- virtual report ------------------------------------------------------

    def wait_states(self) -> dict[str, dict[str, float]]:
        """``{ptype: {state: virtual_seconds}}`` over all processes."""
        rollup: dict[str, dict[str, float]] = {}
        for rec in self.procs.values():
            per = rollup.setdefault(
                rec.ptype, {s: 0.0 for s in WAIT_STATES}
            )
            for state, seconds in rec.states.items():
                per[state] += seconds
        return rollup

    def per_process(self) -> list[dict[str, Any]]:
        """One row per process: exact state split plus telescoped lifetime.

        ``lifetime`` is the sum of the state segments, so
        ``ready + running + blocked + sleeping == lifetime`` holds exactly
        (same floats, same order); it also equals ``end - birth`` up to
        float addition error, which the tests pin at 1e-9.
        """
        rows = []
        for pid in sorted(self.procs):
            rec = self.procs[pid]
            rows.append({
                "pid": rec.pid,
                "name": rec.name,
                "ptype": rec.ptype,
                "birth": rec.birth,
                "end": rec.end,
                "resumes": rec.resumes,
                "states": dict(rec.states),
                "lifetime": (
                    rec.states[READY] + rec.states[RUNNING]
                    + rec.states[BLOCKED] + rec.states[SLEEPING]
                ),
            })
        return rows

    def counters(self) -> dict[str, int]:
        return {
            "events_popped": self.events_popped,
            "events_reaped": self.events_reaped,
            "timer_inserts": self.timer_inserts,
            "timer_cancels": self.timer_cancels,
            "resume_schedules": self.resume_schedules,
            "heap_high_water": self.heap_high_water,
            "ready_high_water": self.ready_high_water,
            "spawns": self.spawns,
            "completions": self.completions,
            "cancellations": self.cancellations,
        }

    def virtual_report(self, *, include_processes: bool = True) -> dict[str, Any]:
        """Everything deterministic: wait states, details, counters.

        ``include_processes=False`` drops the per-process rows -- for
        scenarios spawning one process per request, the rollups carry
        the signal at a tiny fraction of the size.
        """
        details = {
            f"{ptype};{state};{detail}" if detail else f"{ptype};{state}":
                round(seconds, 9)
            for (ptype, state, detail), seconds in sorted(self._detail.items())
        }
        report: dict[str, Any] = {
            "counters": self.counters(),
            "wait_states": {
                ptype: {s: round(v, 9) for s, v in states.items()}
                for ptype, states in sorted(self.wait_states().items())
            },
            "wait_details": details,
        }
        if include_processes:
            report["processes"] = [
                {
                    **row,
                    "states": {
                        s: round(v, 9) for s, v in row["states"].items()
                    },
                    "lifetime": round(row["lifetime"], 9),
                }
                for row in self.per_process()
            ]
        return report

    # -- host report (NEVER determinism-checked) ----------------------------

    def host_report(self) -> dict[str, Any]:
        """Host-CPU cost per process type; segregated from the virtual side."""
        rows = {}
        for ptype in sorted(self.host_cpu):
            resumes = self.host_resumes.get(ptype, 0)
            cpu = self.host_cpu[ptype]
            rows[ptype] = {
                "resumes": resumes,
                "cpu_seconds": cpu,
                "cpu_us_per_resume": (1e6 * cpu / resumes) if resumes else 0.0,
            }
        return {"per_ptype": rows}

    # -- exports -------------------------------------------------------------

    def folded_wait_states(self) -> str:
        """Folded-stack lines (``flamegraph.pl`` / speedscope input).

        One line per ``ptype;state[;detail]`` with integer virtual
        microseconds -- deterministic, so the folded file itself can sit
        behind the determinism harness.
        """
        lines = []
        for (ptype, state, detail), seconds in sorted(self._detail.items()):
            us = int(round(seconds * 1e6))
            if us <= 0:
                continue
            frames = f"{ptype};{state}" + (f";{detail}" if detail else "")
            lines.append(f"{frames} {us}")
        return "\n".join(lines)

    def folded_host_cpu(self) -> str:
        """Folded host-CPU stacks (``ptype <cpu-microseconds>``); host side."""
        lines = []
        for ptype in sorted(self.host_cpu):
            us = int(round(self.host_cpu[ptype] * 1e6))
            if us > 0:
                lines.append(f"{ptype} {us}")
        return "\n".join(lines)

    def to_json(self, *, include_host: bool = False,
                include_processes: bool = True, indent: int = 2) -> str:
        """Serialize; host fields only on request, under their own key."""
        doc: dict[str, Any] = {
            "virtual": self.virtual_report(include_processes=include_processes)
        }
        if include_host:
            doc["host"] = self.host_report()
        return json.dumps(doc, indent=indent, sort_keys=True)


class KernelProfiler:
    """The hook surface :class:`~repro.sim.kernel.Kernel` drives.

    Attach with ``kernel.attach_profiler(KernelProfiler(kernel.clock))``
    *before* spawning processes.  All virtual timestamps come from the
    kernel's own clock; host-CPU reads go through
    :func:`repro.sim.hostclock.host_cpu_now` and never influence anything
    virtual, so a profiled run's simulation results are bit-identical to
    an unprofiled run's.
    """

    enabled = True

    def __init__(self, clock: Any) -> None:
        # deferred: sanctioned obs -> sim runtime hook (see the
        # `obs-below-everything` contract); keeps repro.obs importable
        # without pulling in the sim substrate
        from repro.sim import hostclock

        self._hostclock = hostclock
        self.clock = clock
        self.profile = KernelProfile()
        # resume frames: [cpu_start, child_cpu_accum] -- a stack because
        # cancellation steps the victim synchronously inside the
        # canceller's own resume; self-time = total - child time
        self._cpu_frames: list[list[float]] = []

    # -- event-loop hooks ----------------------------------------------------

    def on_heap_push(self, heap_len: int, *, timer: bool) -> None:
        p = self.profile
        if timer:
            p.timer_inserts += 1
        else:
            p.resume_schedules += 1
        if heap_len > p.heap_high_water:
            p.heap_high_water = heap_len

    def on_ready_push(self, ready_len: int) -> None:
        """A same-instant resume entered the kernel's ready lane."""
        p = self.profile
        p.resume_schedules += 1
        if ready_len > p.ready_high_water:
            p.ready_high_water = ready_len

    def on_timer_cancel(self) -> None:
        self.profile.timer_cancels += 1

    def on_event_pop(self, reaped: bool) -> None:
        p = self.profile
        p.events_popped += 1
        if reaped:
            p.events_reaped += 1

    # -- process lifecycle hooks ---------------------------------------------

    def on_spawn(self, process: Any) -> None:
        p = self.profile
        p.spawns += 1
        p.procs[process.pid] = _ProcRecord(
            process.pid, process.name, float(self.clock.now())
        )

    def on_resume_start(self, process: Any) -> None:
        rec = self.profile.procs.get(process.pid)
        if rec is not None:
            rec.resumes += 1
            self.profile._charge(rec, float(self.clock.now()), RUNNING, None)
        self._cpu_frames.append([self._hostclock.host_cpu_now(), 0.0])

    def on_resume_end(self, process: Any) -> None:
        start, child = self._cpu_frames.pop()
        total = self._hostclock.host_cpu_now() - start
        cpu = total - child  # self time: nested cancel steps charged to victim
        if self._cpu_frames:
            self._cpu_frames[-1][1] += total
        rec = self.profile.procs.get(process.pid)
        ptype = rec.ptype if rec is not None else process_type(process.name)
        p = self.profile
        p.host_cpu[ptype] = p.host_cpu.get(ptype, 0.0) + cpu
        p.host_resumes[ptype] = p.host_resumes.get(ptype, 0) + 1

    def on_wait(self, process: Any, state: str, detail: str) -> None:
        """The process suspended into ``state`` (BLOCKED or SLEEPING)."""
        rec = self.profile.procs.get(process.pid)
        if rec is not None:
            self.profile._charge(
                rec, float(self.clock.now()), state, detail or None
            )

    def on_wait_yield(self, process: Any, yielded: Any) -> None:
        """Classify a raw yielded waitable and record the suspension.

        This is the hook the kernel actually calls -- classification lives
        here so :mod:`repro.sim.kernel` never has to import this module.
        """
        state, detail = classify_wait(yielded)
        self.on_wait(process, state, detail)

    def on_runnable(self, process: Any) -> None:
        """The process's wait completed; it is queued to resume."""
        rec = self.profile.procs.get(process.pid)
        if rec is not None and rec.end is None and rec.state != READY:
            self.profile._charge(rec, float(self.clock.now()), READY, None)

    def on_exit(self, process: Any) -> None:
        rec = self.profile.procs.get(process.pid)
        now = float(self.clock.now())
        if rec is not None and rec.end is None:
            self.profile._charge(rec, now, rec.state, None)
            rec.end = now
        if process.cancelled:
            self.profile.cancellations += 1
        else:
            self.profile.completions += 1

    # -- convenience ---------------------------------------------------------

    def finalize(self) -> KernelProfile:
        """Close open states at the current virtual time and return the
        profile (safe to call more than once)."""
        self.profile.finalize(float(self.clock.now()))
        return self.profile


def classify_wait(yielded: Any) -> tuple[str, str]:
    """Map a kernel waitable to ``(state, detail)`` for attribution.

    Timeouts and timers are SLEEPING (the process chose to let time pass);
    resource requests, events, channel gets, process joins, and
    combinators containing any of those are BLOCKED (the process is stuck
    on somebody else's progress).
    """
    # local import: kernel imports this module's hook surface lazily via
    # duck typing, so the only hard edge points obs -> sim
    from repro.sim.kernel import (
        AllOf, AnyOf, Event, Process, Request, Timeout, Timer,
    )

    if isinstance(yielded, Timeout):
        return SLEEPING, ""
    if isinstance(yielded, Timer):
        return SLEEPING, yielded.name
    if isinstance(yielded, Request):
        return BLOCKED, f"resource:{yielded.resource.name}"
    if isinstance(yielded, Process):
        return BLOCKED, f"join:{process_type(yielded.name)}"
    if isinstance(yielded, Event):
        return BLOCKED, f"event:{yielded.name}" if yielded.name else "event"
    if isinstance(yielded, (AnyOf, AllOf)):
        members = [classify_wait(w) for w in yielded.waitables]
        if all(state == SLEEPING for state, __ in members):
            return SLEEPING, "timer-group"
        kind = "any_of" if isinstance(yielded, AnyOf) else "all_of"
        return BLOCKED, kind
    return BLOCKED, ""
