"""Per-trace latency attribution: where did each request's time go?

The paper's evaluation (§6.1.3) is a set of *attribution* questions --
cache vs. remote bytes, SSD vs. memory serving, blocked time under load.
This module answers them per request: every span in a trace carries
explicit latency ``charges`` recorded at the call sites that added latency
to the result, so summing charges over the tree (minus hedge-attempt
subtrees, whose cost is not on the serving path) reconstructs the
request's wall time bucket by bucket.

Reconciliation invariant: for an unhedged trace the bucket sums equal the
measured virtual latency exactly (same float additions, same order).  A
client-level hedge *replaces* the primary latency with
``min(primary, threshold + backup)`` after the primary's charges were
recorded, so those traces are proportionally rescaled to the effective
latency and flagged ``rescaled`` -- the mix is the primary's, the total is
the measured one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.span import ATTRIBUTION_BUCKETS, Span

# Root-span attr naming the measured wall time (seconds).  The distributed
# client annotates ``latency``; the coordinator annotates ``wall``.
_WALL_ATTRS = ("latency", "wall")

# Spans flagged with these attrs (and their subtrees) are work whose cost
# is not on the request's serving path -- speculative hedge attempts, or
# background-style cache loads whose latency the caller does not charge to
# the read -- and are excluded from attribution.
HEDGE_ATTEMPT_ATTR = "hedge_attempt"
OFF_PATH_ATTR = "off_path"


def is_off_path(span: Span) -> bool:
    attrs = span.attrs
    return bool(attrs.get(HEDGE_ATTEMPT_ATTR) or attrs.get(OFF_PATH_ATTR))


@dataclass(slots=True)
class TraceAttribution:
    """Bucketed latency for one trace."""

    trace_id: str
    root_name: str
    wall: float
    buckets: dict[str, float] = field(default_factory=dict)
    rescaled: bool = False
    span_count: int = 0

    @property
    def charged_total(self) -> float:
        return sum(self.buckets.values())

    @property
    def unattributed(self) -> float:
        return self.wall - self.charged_total

    def within(self, tolerance: float = 0.01) -> bool:
        """Do the buckets sum to within ``tolerance`` (relative) of wall?"""
        if self.wall <= 0.0:
            return self.charged_total <= tolerance
        return abs(self.unattributed) <= tolerance * self.wall


def _children_index(spans: list[Span]) -> dict[str | None, list[Span]]:
    index: dict[str | None, list[Span]] = defaultdict(list)
    for span in spans:
        index[span.parent_id].append(span)
    return index


def _collect_charges(
    span: Span, index: dict[str | None, list[Span]], buckets: dict[str, float]
) -> int:
    """DFS summing charges, pruning off-path subtrees.  Returns spans visited."""
    if is_off_path(span):
        return 0
    visited = 1
    for bucket, seconds in span.charges.items():
        buckets[bucket] = buckets.get(bucket, 0.0) + seconds
    for child in sorted(
        index.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
    ):
        visited += _collect_charges(child, index, buckets)
    return visited


def attribute_trace(spans: list[Span]) -> TraceAttribution:
    """Attribute one trace's spans; ``spans`` must share a trace id."""
    if not spans:
        raise ValueError("cannot attribute an empty trace")
    roots = [s for s in spans if s.parent_id is None]
    if len(roots) != 1:
        raise ValueError(
            f"trace {spans[0].trace_id} has {len(roots)} roots, expected 1"
        )
    root = roots[0]
    index = _children_index(spans)
    buckets: dict[str, float] = {}
    span_count = _collect_charges(root, index, buckets)

    wall = None
    for attr in _WALL_ATTRS:
        if attr in root.attrs:
            wall = float(root.attrs[attr])
            break
    if wall is None:
        wall = sum(buckets.values())

    rescaled = False
    charged = sum(buckets.values())
    if root.attrs.get("rescale") and charged > 0.0 and wall >= 0.0:
        scale = wall / charged
        buckets = {k: v * scale for k, v in buckets.items()}
        rescaled = True

    return TraceAttribution(
        trace_id=root.trace_id,
        root_name=root.name,
        wall=wall,
        buckets=buckets,
        rescaled=rescaled,
        span_count=span_count,
    )


def attribute_buffer(buffer: object) -> list[TraceAttribution]:
    """Attribute every complete trace in a SpanBuffer, in trace order."""
    reports: list[TraceAttribution] = []
    for _, spans in buffer.traces().items():  # type: ignore[attr-defined]
        if not any(s.parent_id is None for s in spans):
            continue  # partial trace (root dropped by a full buffer)
        reports.append(attribute_trace(spans))
    return reports


def aggregate(reports: list[TraceAttribution]) -> dict[str, float]:
    """Fleet view: total seconds per bucket across many traces."""
    totals: dict[str, float] = {}
    for report in reports:
        for bucket, seconds in report.buckets.items():
            totals[bucket] = totals.get(bucket, 0.0) + seconds
    return totals


def format_attribution(reports: list[TraceAttribution], *, top: int = 0) -> str:
    """Human-readable attribution table (for bench reports / trace_viz)."""
    lines: list[str] = []
    totals = aggregate(reports)
    wall_total = sum(r.wall for r in reports)
    charged_total = sum(totals.values())
    extra = sorted(set(totals) - set(ATTRIBUTION_BUCKETS))
    columns = [b for b in ATTRIBUTION_BUCKETS if b in totals] + extra
    lines.append(
        f"traces={len(reports)}  wall={wall_total:.6f}s  "
        f"charged={charged_total:.6f}s  "
        f"coverage={100.0 * charged_total / wall_total if wall_total else 100.0:.2f}%"
    )
    width = max((len(c) for c in columns), default=8)
    for bucket in columns:
        seconds = totals[bucket]
        share = 100.0 * seconds / charged_total if charged_total else 0.0
        lines.append(f"  {bucket:<{width}}  {seconds:12.6f}s  {share:6.2f}%")
    rescaled = sum(1 for r in reports if r.rescaled)
    if rescaled:
        lines.append(f"  ({rescaled} hedged trace(s) proportionally rescaled)")
    if top > 0:
        slowest = sorted(reports, key=lambda r: (-r.wall, r.trace_id))[:top]
        lines.append("")
        lines.append(f"slowest {len(slowest)} trace(s):")
        for report in slowest:
            mix = ", ".join(
                f"{b}={report.buckets[b]:.6f}"
                for b in columns
                if report.buckets.get(b, 0.0) > 0.0
            )
            lines.append(
                f"  {report.trace_id}  {report.root_name:<12} "
                f"wall={report.wall:.6f}s  [{mix}]"
            )
    return "\n".join(lines)
