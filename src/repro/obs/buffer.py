"""Bounded in-memory span sink.

A soak run produces one small span tree per request; the buffer caps total
retained spans so a long traced run cannot grow without bound (the same
discipline the Histogram reservoir applies to observations).  When full it
drops *new* spans and counts them -- dropping old ones would tear already
recorded trees apart.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.span import Span


class SpanBuffer:
    """Finished-span storage with a hard capacity."""

    DEFAULT_CAPACITY = 100_000

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._spans: list[Span] = []
        self.dropped = 0

    def record(self, span: Span) -> None:
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            return
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> list[Span]:
        """All recorded spans in completion order."""
        return list(self._spans)

    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, insertion-ordered (deterministic)."""
        grouped: dict[str, list[Span]] = defaultdict(list)
        for span in self._spans:
            grouped[span.trace_id].append(span)
        return dict(grouped)

    def trace(self, trace_id: str) -> list[Span]:
        return [s for s in self._spans if s.trace_id == trace_id]

    def roots(self) -> list[Span]:
        """Root spans (no parent) in completion order."""
        return [s for s in self._spans if s.parent_id is None]

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0
