"""Span exporters: compact JSONL and Chrome/Perfetto ``trace_event`` JSON.

JSONL is the archival format: one span dict per line, deterministic field
order, round-trips losslessly.  The Chrome format targets the Perfetto /
``chrome://tracing`` viewers: each trace becomes a *process* (pid), each
actor a *thread* (tid), and each span a complete ``"ph": "X"`` event.

Virtual-clock caveat: span start/end timestamps barely move while a
request executes (latencies are modelled, not slept), so rendering raw
timestamps would stack every span at one instant.  The exporter instead
*lays out* each tree: a span's duration is ``max(end - start, subtree
charge total)`` and children are placed sequentially inside the parent --
the rendered widths are the attribution, which is exactly what the viewer
should show.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.obs.span import Span, iter_children

_US = 1_000_000.0  # trace_event timestamps are microseconds


def spans_to_jsonl(spans: list[Span]) -> str:
    """One canonical JSON object per line, sorted for determinism."""
    ordered = sorted(spans, key=lambda s: (s.trace_id, s.start, s.span_id))
    return "\n".join(
        json.dumps(s.to_dict(), sort_keys=True, separators=(",", ":"))
        for s in ordered
    )


def jsonl_to_dicts(text: str) -> list[dict[str, Any]]:
    """Parse a JSONL span log back into span dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def spans_from_dicts(docs: list[dict[str, Any]]) -> list[Span]:
    """Rehydrate spans from :func:`jsonl_to_dicts` output.

    The rebuilt spans are detached (no tracer) and already finished; they
    serve the offline analyses -- attribution, critical path, Chrome
    export -- not further recording.
    """
    spans: list[Span] = []
    for doc in docs:
        span = Span(
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            parent_id=doc.get("parent_id"),
            name=doc["name"],
            actor=doc.get("actor", ""),
            start=float(doc.get("start", 0.0)),
            sampled=True,
            tracer=None,
            attrs=dict(doc.get("attrs", {})),
        )
        end = doc.get("end")
        span.end = float(end) if end is not None else None
        span.events = [dict(e) for e in doc.get("events", [])]
        span.charges = {k: float(v) for k, v in doc.get("charges", {}).items()}
        spans.append(span)
    return spans


def tree_signature(spans: list[Span]) -> str:
    """Stable digest of the full span forest (ids, structure, charges).

    Two runs of the same seeded scenario must produce identical
    signatures -- the determinism sanitizer's traced double-run check
    compares exactly this.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(spans_to_jsonl(spans).encode("utf-8"))
    return digest.hexdigest()


def _group_by_trace(spans: list[Span]) -> dict[str, list[Span]]:
    grouped: dict[str, list[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.trace_id, s.start, s.span_id)):
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped


def _layout_duration(
    span: Span, index: dict[str | None, list[Span]]
) -> float:
    """Rendered duration (s): wall extent or charge mass, whichever is larger."""
    children_total = sum(
        _layout_duration(child, index) for child in iter_children(span, index)
    )
    extent = (span.end - span.start) if span.end is not None else 0.0
    return max(extent, span.charged_total + children_total, 1e-9)


def to_chrome_trace(spans: list[Span]) -> dict[str, Any]:
    """Build a ``trace_event``-format dict (``{"traceEvents": [...]}``).

    Every emitted event carries ``ph``/``ts``/``pid``/``tid`` and a
    non-negative ``dur`` (for ``X`` events) -- the schema the acceptance
    criteria (and the viewers) require.
    """
    events: list[dict[str, Any]] = []
    actor_tids: dict[str, int] = {}

    def tid_for(actor: str) -> int:
        label = actor or "main"
        if label not in actor_tids:
            actor_tids[label] = len(actor_tids) + 1
        return actor_tids[label]

    grouped = _group_by_trace(spans)
    for pid, (trace_id, trace_spans) in enumerate(grouped.items(), start=1):
        index: dict[str | None, list[Span]] = {}
        for span in trace_spans:
            index.setdefault(span.parent_id, []).append(span)
        roots = index.get(None, [])
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"trace {trace_id}"},
            }
        )

        def emit(span: Span, ts_us: float) -> float:
            dur_us = _layout_duration(span, index) * _US
            args: dict[str, Any] = {"trace_id": span.trace_id, "span_id": span.span_id}
            if span.charges:
                args["charges"] = {k: round(v, 9) for k, v in span.charges.items()}
            if span.attrs:
                args["attrs"] = {k: repr(v) for k, v in sorted(span.attrs.items())}
            if span.events:
                args["events"] = [e["name"] for e in span.events]
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.actor or "span",
                    "ts": round(ts_us, 3),
                    "dur": round(max(dur_us, 0.0), 3),
                    "pid": pid,
                    "tid": tid_for(span.actor),
                    "args": args,
                }
            )
            cursor = ts_us + span.charged_total * _US
            for child in iter_children(span, index):
                cursor += emit(child, cursor)
            return dur_us

        for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
            emit(root, root.start * _US)

    # thread-name metadata after tids are known, one per (pid irrelevant) actor
    meta: list[dict[str, Any]] = []
    for label, tid in sorted(actor_tids.items(), key=lambda kv: kv[1]):
        for pid in range(1, len(grouped) + 1):
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: list[Span], *, indent: int | None = None) -> str:
    return json.dumps(to_chrome_trace(spans), indent=indent, sort_keys=True)
