"""Continuous telemetry: a kernel process sampling metrics in virtual time.

The paper's cache earns production trust because operators watch hit
ratio, queue depth, and rejection counts *continuously* (§5-6), not as a
single end-of-run snapshot.  :class:`TelemetrySampler` is that dashboard
for simulated runs: a kernel process that wakes every ``interval``
virtual seconds and snapshots a :class:`~repro.core.metrics.MetricsRegistry`
-- every gauge's current value, a configurable set of counters, and the
derived hit ratio -- into bounded :class:`~repro.analysis.timeseries.RingSeries`
buffers.  Memory stays bounded on arbitrarily long soaks (oldest points
drop, with a ``dropped`` count so truncation is visible), every timestamp
is virtual, and a fixed-seed run produces byte-identical exports.

Export surfaces: :meth:`TelemetrySampler.to_jsonl` (one JSON object per
retained point, stream-friendly) and :func:`format_telemetry` (the
``tools/report.py`` section).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Generator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel -> obs)
    from repro.analysis.timeseries import RingSeries
    from repro.core.metrics import MetricsRegistry
    from repro.sim.kernel import Kernel, Process

#: counters sampled by default: the paper's operator headline set --
#: hit/miss trajectory, admission verdicts, and reclaim pressure
DEFAULT_COUNTERS = (
    "get_hits",
    "get_misses",
    "puts",
    "put_rejected_admission",
    "put_rejected_quota",
    "put_rejected_space",
    "evictions",
)


class TelemetrySampler:
    """Periodic virtual-time snapshots of a metrics registry.

    >>> from repro.core.metrics import MetricsRegistry
    >>> from repro.sim.kernel import Kernel
    >>> kernel = Kernel()
    >>> registry = MetricsRegistry()
    >>> sampler = TelemetrySampler(kernel, registry, interval=1.0)
    >>> _ = sampler.start()
    >>> registry.gauge("device_queue_depth").set(3.0)
    >>> kernel.run_until(2.5)
    >>> sampler.stop()
    >>> sampler.series["gauge:device_queue_depth"].values()
    [3.0, 3.0]
    """

    def __init__(
        self,
        kernel: "Kernel",
        registry: "MetricsRegistry",
        *,
        interval: float = 1.0,
        capacity: int = 1024,
        counters: Sequence[str] = DEFAULT_COUNTERS,
        name: str = "telemetry-sampler",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.kernel = kernel
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.counter_names = tuple(counters)
        self.name = name
        self.series: dict[str, RingSeries] = {}
        self.ticks = 0
        self.process: "Process | None" = None
        self._stop = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Process":
        """Spawn the sampling process (call before running the kernel)."""
        if self.process is not None and not self.process.done:
            raise RuntimeError("sampler already running")
        self._stop = False
        self.process = self.kernel.spawn(self._run(), name=self.name)
        return self.process

    def stop(self) -> None:
        """Stop at the next tick boundary (the pending timer drains quietly)."""
        self._stop = True

    def _run(self) -> Generator[Any, Any, None]:
        from repro.sim.kernel import Timeout  # late: kernel imports obs first

        # Timeout is immutable, so one instance serves every tick -- a
        # million-tick soak allocates nothing per sample
        pause = Timeout(self.interval)
        while not self._stop:
            yield pause
            if self._stop:
                return
            self.tick()

    # -- sampling -----------------------------------------------------------

    def _buf(self, key: str) -> "RingSeries":
        if key not in self.series:
            # deferred: sanctioned obs -> analysis runtime hook (see the
            # `obs-below-everything` contract)
            from repro.analysis.timeseries import RingSeries

            self.series[key] = RingSeries(self.capacity)
        return self.series[key]

    def tick(self) -> None:
        """Take one snapshot now (also callable manually, e.g. at t=0)."""
        now = float(self.kernel.clock.now())
        self.ticks += 1
        # feed per-gauge histories too, so registry-side consumers see the
        # same cadence this sampler records
        self.registry.sample_gauges(now)
        for name, value in sorted(self.registry.gauge_values().items()):
            self._buf(f"gauge:{name}").append(now, value)
        for name in self.counter_names:
            self._buf(f"counter:{name}").append(
                now, float(self.registry.counter(name).value)
            )
        self._buf("derived:hit_ratio").append(now, self.registry.hit_ratio)

    # -- exports ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per retained point, metrics in sorted order.

        Deterministic for a fixed-seed run: virtual timestamps only, sorted
        keys, and a stable metric ordering.
        """
        lines = []
        for metric in sorted(self.series):
            buf = self.series[metric]
            for t, v in buf.items():
                lines.append(json.dumps(
                    {"metric": metric, "t": t, "v": v}, sort_keys=True
                ))
        return "\n".join(lines)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-metric ``{samples, dropped, min, mean, max, last}``."""
        out: dict[str, dict[str, float]] = {}
        for metric in sorted(self.series):
            buf = self.series[metric]
            values = buf.values()
            if not values:
                continue
            out[metric] = {
                "samples": float(len(values)),
                "dropped": float(buf.dropped),
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "last": values[-1],
            }
        return out


def format_telemetry(sampler: TelemetrySampler) -> str:
    """The ``telemetry`` section body for ``tools/report.py``."""
    lines = [
        f"ticks={sampler.ticks} interval={sampler.interval:g}s "
        f"capacity={sampler.capacity}",
        "",
        f"{'metric':<40} {'n':>6} {'drop':>6} {'min':>12} "
        f"{'mean':>12} {'max':>12} {'last':>12}",
    ]
    for metric, row in sampler.summary().items():
        lines.append(
            f"{metric:<40} {int(row['samples']):>6} {int(row['dropped']):>6} "
            f"{row['min']:>12.4f} {row['mean']:>12.4f} "
            f"{row['max']:>12.4f} {row['last']:>12.4f}"
        )
    return "\n".join(lines)
