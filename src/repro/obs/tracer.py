"""Tracers: the factory for spans, installed process-globally.

Two implementations share the duck-typed surface instrumented code uses
(``span`` / ``current`` / ``current_span_id`` / ``enabled``):

- :data:`NOOP_TRACER` (the default): every call is a constant-time no-op,
  so the instrumented read path costs a global read, an attribute call and
  one shared sentinel object -- nothing is allocated per read and virtual
  results are bit-identical to an uninstrumented build.
- :class:`SimTracer`: virtual-clock-native tracing.  Timestamps come from
  the clock passed in (normally the scenario's ``SimClock``), span ids come
  from a dedicated :class:`~repro.sim.rng.RngStream` child so traced runs
  are reproducible, and finished spans land in a bounded
  :class:`~repro.obs.buffer.SpanBuffer`.

Installation mirrors :func:`repro.core.page.installed_time_source`: a
module-level slot plus an ``installed_tracer`` context manager that always
restores the previous tracer.  Instrumented modules call
:func:`current_tracer` at use time, never at import time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.buffer import SpanBuffer
from repro.obs.span import NOOP_SPAN, NoopSpan, Span


class NoopTracer:
    """Disabled tracing: hands out the shared :data:`NOOP_SPAN`."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, *, actor: str = "", **attrs: Any) -> NoopSpan:
        return NOOP_SPAN

    def current(self) -> NoopSpan:
        return NOOP_SPAN

    def current_span_id(self) -> str | None:
        return None

    def open_spans(self) -> list[Span]:
        return []

    # context switching is a no-op without a span stack (the event kernel
    # calls these around every process step)
    def capture_context(self) -> list[Span]:
        return []

    def restore_context(self, context: list[Span]) -> None:
        return None


NOOP_TRACER = NoopTracer()


class SimTracer:
    """Deterministic tracer bound to a virtual clock and a seeded rng.

    Args:
        clock: anything with ``now() -> float`` (normally a ``SimClock``).
        rng: an ``RngStream``; a ``trace-ids`` child is derived so span-id
            draws never perturb the scenario's own random streams.
        buffer: span sink; a fresh bounded :class:`SpanBuffer` by default.
        sample_rate: probability that a *root* span (and therefore its whole
            tree) is recorded.  Sampling draws come from a second dedicated
            child stream, so the id sequence is identical at any rate.
            Unsampled spans still flow through the stack (parentage and
            charges behave identically); they are simply not recorded.
    """

    enabled = True

    def __init__(
        self,
        clock: Any,
        rng: Any,
        *,
        buffer: SpanBuffer | None = None,
        sample_rate: float = 1.0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.clock = clock
        self.buffer = buffer if buffer is not None else SpanBuffer()
        self.sample_rate = sample_rate
        self._id_rng = rng.child("trace-ids")
        self._sample_rng = rng.child("trace-sampling")
        self._stack: list[Span] = []
        self._next_trace_seq = 0

    # -- ids -----------------------------------------------------------------

    def _new_id(self) -> str:
        # two 32-bit draws: numpy's integers() caps at int64 exclusive-high
        high = int(self._id_rng.rng.integers(0, 1 << 32))
        low = int(self._id_rng.rng.integers(0, 1 << 32))
        return f"{(high << 32) | low:016x}"

    # -- span factory --------------------------------------------------------

    def span(self, name: str, *, actor: str = "", **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span (if any)."""
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"t{self._next_trace_seq:06d}"
            self._next_trace_seq += 1
            sampled = (
                self.sample_rate >= 1.0
                or float(self._sample_rng.rng.random()) < self.sample_rate
            )
        else:
            trace_id = parent.trace_id
            sampled = parent.sampled
        span = Span(
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            actor=actor,
            start=float(self.clock.now()),
            sampled=sampled,
            tracer=self,
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = float(self.clock.now())
        # Out-of-order finish (possible only through misuse; TRC001 guards
        # the idiom) still pops the span so the stack cannot wedge.
        if span in self._stack:
            self._stack.remove(span)
        if span.sampled:
            self.buffer.record(span)

    # -- process context switching -------------------------------------------
    #
    # The span stack is per-logical-task state.  Under the analytic
    # simulator there is exactly one task, so a single stack suffices; the
    # event kernel interleaves many processes on one tracer, so it saves
    # the stack when a process suspends and restores it when the process
    # resumes (repro.sim.kernel duck-types on these two methods).

    def capture_context(self) -> list[Span]:
        """Snapshot the open-span stack (the current process's context)."""
        return list(self._stack)

    def restore_context(self, context: list[Span]) -> None:
        """Replace the open-span stack with a previously captured snapshot."""
        self._stack = list(context)

    # -- introspection -------------------------------------------------------

    def current(self) -> Span | NoopSpan:
        """The innermost open span, or the no-op span outside any trace."""
        return self._stack[-1] if self._stack else NOOP_SPAN

    def current_span_id(self) -> str | None:
        return self._stack[-1].span_id if self._stack else None

    def open_spans(self) -> list[Span]:
        """Spans opened but not yet finished (the span-leak surface)."""
        return list(self._stack)


# -- global installation (mirrors repro.core.page's time-source slot) --------

_active_tracer: Any = NOOP_TRACER


def current_tracer() -> Any:
    """The tracer instrumented code should use *right now*."""
    return _active_tracer


def set_tracer(tracer: Any) -> None:
    global _active_tracer
    _active_tracer = tracer


def reset_tracer() -> None:
    global _active_tracer
    _active_tracer = NOOP_TRACER


@contextmanager
def installed_tracer(tracer: Any) -> Iterator[Any]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    try:
        yield tracer
    finally:
        _active_tracer = previous
