"""The page metastore: in-memory metadata over indexed sets (Section 4.4).

The metastore is the "index manager" of Figure 3.  It keeps
:class:`~repro.core.page.PageInfo` for every cached page in an
:class:`~repro.core.indexed_set.IndexedSet` with four indices:

- ``file``  -- pages of one file (file-level bulk delete, Figure 5 A/B/C),
- ``dir``   -- pages on one storage directory/device (Figure 5 1/2; used to
  report per-device usage and to drop everything on a faulty device),
- ``scope`` -- pages under each scope *and all its ancestors* (partition /
  table / schema bulk operations without directory listings),
- lookups by page ID are the primary key, O(1).

It also tracks byte usage per directory and per scope so the allocator and
quota manager never have to iterate pages to answer "how full is X?".
"""

from __future__ import annotations

from typing import Iterable

from repro.core.indexed_set import Index, IndexedSet
from repro.core.page import PageId, PageInfo
from repro.core.scope import CacheScope


class PageMetaStore:
    """In-memory metadata store for cached pages.

    All methods are O(1) or O(result size); nothing iterates the universe.
    """

    def __init__(self) -> None:
        self._pages: IndexedSet[PageInfo] = IndexedSet(primary=lambda p: p.page_id)
        self._pages.register_index(Index("file", lambda p: p.page_id.file_id))
        self._pages.register_index(Index("dir", lambda p: p.directory))
        self._pages.register_index(
            Index("scope", lambda p: [str(s) for s in p.scope.ancestors()], multi=True)
        )
        self._bytes_total = 0
        self._bytes_by_dir: dict[int, int] = {}
        self._bytes_by_scope: dict[str, int] = {}

    # -- basic accounting ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: PageId) -> bool:
        return self._pages.contains_key(page_id)

    @property
    def bytes_used(self) -> int:
        """Total payload bytes currently cached."""
        return self._bytes_total

    def bytes_in_dir(self, directory: int) -> int:
        return self._bytes_by_dir.get(directory, 0)

    def bytes_in_scope(self, scope: CacheScope) -> int:
        """Bytes cached under ``scope`` (including all sub-scopes)."""
        return self._bytes_by_scope.get(str(scope), 0)

    def pages_in_dir(self, directory: int) -> list[PageInfo]:
        return self._pages.lookup("dir", directory)

    def pages_of_file(self, file_id: str) -> list[PageInfo]:
        return self._pages.lookup("file", file_id)

    def pages_in_scope(self, scope: CacheScope) -> list[PageInfo]:
        """All pages whose scope lies in the subtree rooted at ``scope``."""
        return self._pages.lookup("scope", str(scope))

    def file_ids(self) -> set[str]:
        return set(self._pages.index_keys("file"))

    def scopes(self) -> list[CacheScope]:
        """Every populated scope key (including ancestor roll-ups)."""
        return [CacheScope.parse(k) for k in self._pages.index_keys("scope")]

    def child_scope_usage(self, scope: CacheScope) -> dict[str, int]:
        """Byte usage of each direct child scope of ``scope``.

        Used by table-level random eviction across partitions (Section 5.2).
        """
        prefix = str(scope)
        depth = scope.depth
        usage: dict[str, int] = {}
        for key, value in self._bytes_by_scope.items():
            parts = key.split(".")
            if len(parts) == depth + 1 and key.startswith(prefix + "."):
                usage[key] = value
        return usage

    # -- mutation --------------------------------------------------------------

    def get(self, page_id: PageId) -> PageInfo | None:
        return self._pages.get(page_id)

    def add(self, info: PageInfo) -> bool:
        """Insert page metadata; returns False if the page already exists."""
        if not self._pages.add(info):
            return False
        self._account(info, +1)
        return True

    def remove(self, page_id: PageId) -> PageInfo | None:
        """Remove and return page metadata, or ``None`` if absent."""
        info = self._pages.remove_key(page_id)
        if info is not None:
            self._account(info, -1)
        return info

    def remove_file(self, file_id: str) -> list[PageInfo]:
        """Remove all pages of one file; returns the removed metadata."""
        removed = []
        for info in list(self._pages.lookup("file", file_id)):
            self._pages.remove_key(info.page_id)
            self._account(info, -1)
            removed.append(info)
        return removed

    def remove_scope(self, scope: CacheScope) -> list[PageInfo]:
        """Remove every page under a scope subtree (partition drop)."""
        removed = []
        for info in list(self._pages.lookup("scope", str(scope))):
            self._pages.remove_key(info.page_id)
            self._account(info, -1)
            removed.append(info)
        return removed

    def remove_dir(self, directory: int) -> list[PageInfo]:
        """Remove every page on one storage directory (faulty device)."""
        removed = []
        for info in list(self._pages.lookup("dir", directory)):
            self._pages.remove_key(info.page_id)
            self._account(info, -1)
            removed.append(info)
        return removed

    def all_pages(self) -> Iterable[PageInfo]:
        return iter(self._pages)

    def expired_pages(self, now: float) -> list[PageInfo]:
        """Pages whose TTL has elapsed (the periodic sweep's work list)."""
        return [info for info in self._pages if info.is_expired(now)]

    # -- internals ---------------------------------------------------------------

    def _account(self, info: PageInfo, sign: int) -> None:
        delta = sign * info.size
        self._bytes_total += delta
        self._bytes_by_dir[info.directory] = (
            self._bytes_by_dir.get(info.directory, 0) + delta
        )
        if self._bytes_by_dir[info.directory] == 0:
            del self._bytes_by_dir[info.directory]
        for ancestor in info.scope.ancestors():
            key = str(ancestor)
            self._bytes_by_scope[key] = self._bytes_by_scope.get(key, 0) + delta
            if self._bytes_by_scope[key] == 0:
                del self._bytes_by_scope[key]
