"""Shadow cache: working-set estimation without storing data.

A shadow cache tracks *what would be cached* over a sliding time window --
the distinct files/bytes seen -- without holding any payload.  Operators use
it to size the real cache ("how big must the cache be for the working set of
the last N minutes?") and to evaluate admission windows offline, the same
kind of historical-pattern analysis Section 5.1's sliding-window admission
is built on.
"""

from __future__ import annotations

from collections import deque

from repro.core.scope import CacheScope


class ShadowCache:
    """Sliding-window distinct-file and byte working-set tracker.

    Maintains per-bucket maps of ``file_id -> max size seen`` and reports
    window-wide distinct counts and byte totals.

    >>> shadow = ShadowCache(window_buckets=2, bucket_seconds=60.0)
    >>> shadow.record("a", 100, 0.0); shadow.record("b", 50, 10.0)
    >>> shadow.working_set_files(10.0)
    2
    >>> shadow.working_set_bytes(10.0)
    150
    """

    def __init__(
        self, window_buckets: int = 60, bucket_seconds: float = 60.0
    ) -> None:
        if window_buckets <= 0:
            raise ValueError(f"window_buckets must be positive, got {window_buckets}")
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
        self.window_buckets = window_buckets
        self.bucket_seconds = bucket_seconds
        self._buckets: deque[tuple[int, dict[str, int]]] = deque()
        self._hits = 0
        self._misses = 0

    def _rotate(self, now: float) -> None:
        current = int(now // self.bucket_seconds)
        if not self._buckets or self._buckets[-1][0] < current:
            self._buckets.append((current, {}))
        oldest_allowed = current - self.window_buckets + 1
        while self._buckets and self._buckets[0][0] < oldest_allowed:
            self._buckets.popleft()

    def record(self, file_id: str, size: int, now: float) -> None:
        """Log an access to ``file_id`` of ``size`` bytes at time ``now``."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._rotate(now)
        if any(file_id in counts for __, counts in self._buckets):
            self._hits += 1
        else:
            self._misses += 1
        bucket = self._buckets[-1][1]
        bucket[file_id] = max(bucket.get(file_id, 0), size)

    def working_set_files(self, now: float) -> int:
        """Distinct files accessed within the window."""
        self._rotate(now)
        seen: set[str] = set()
        for __, counts in self._buckets:
            seen.update(counts)
        return len(seen)

    def working_set_bytes(self, now: float) -> int:
        """Bytes needed to hold every distinct file seen in the window."""
        self._rotate(now)
        sizes: dict[str, int] = {}
        for __, counts in self._buckets:
            for file_id, size in counts.items():
                sizes[file_id] = max(sizes.get(file_id, 0), size)
        return sum(sizes.values())

    @property
    def infinite_cache_hit_ratio(self) -> float:
        """Hit ratio a cache of unbounded size (within the window) would get."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    # -- AdmissionPolicy protocol ------------------------------------------

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        """Admit files already in the shadow working set (seen-before rule)."""
        self._rotate(now)
        seen = any(file_id in counts for __, counts in self._buckets)
        self.record(file_id, 0, now)
        return seen
