"""``BucketTimeRateLimit``: sliding-window admission (Section 6.2.2, Fig 12).

The HDFS local cache admits a block once it "has been accessed more than X
times in the past Y time interval".  The implementation keeps an ordered
list of minute buckets; each bucket maps block -> access count for its
minute.  The window holds a constant number of buckets and drops the oldest
one every minute; a block is cache-worthy when its summed count across live
buckets crosses the threshold (15 in the paper's example figure).

This class is deliberately self-contained (it only needs ``now``), so it
serves both the HDFS local cache and, via
:class:`RateLimitAdmissionPolicy`-style adaptation, the generic admission
interface.
"""

from __future__ import annotations

from collections import deque

from repro.core.scope import CacheScope


class BucketTimeRateLimit:
    """Sliding window of per-minute access-count buckets.

    Args:
        threshold: windowed access count at which a block becomes
            cache-worthy (strictly-greater comparison would be off-by-one
            versus the paper's ">= threshold" example: a block with count 15
            and threshold 15 *is* admitted).
        window_buckets: number of live minute buckets (Y = window_buckets
            minutes).
        bucket_seconds: bucket width; one minute in the paper.

    >>> limiter = BucketTimeRateLimit(threshold=3, window_buckets=2)
    >>> [limiter.record_and_check("blk", t) for t in (0.0, 1.0, 2.0)]
    [False, False, True]
    """

    def __init__(
        self,
        threshold: int = 15,
        window_buckets: int = 10,
        bucket_seconds: float = 60.0,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window_buckets <= 0:
            raise ValueError(f"window_buckets must be positive, got {window_buckets}")
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
        self.threshold = threshold
        self.window_buckets = window_buckets
        self.bucket_seconds = bucket_seconds
        # (bucket_epoch, {key: count}); newest at the right
        self._buckets: deque[tuple[int, dict[str, int]]] = deque()
        # windowed totals maintained incrementally so checks are O(1)
        self._totals: dict[str, int] = {}

    def _epoch(self, now: float) -> int:
        return int(now // self.bucket_seconds)

    def _rotate(self, now: float) -> None:
        """Create the current bucket; expire buckets older than the window."""
        current = self._epoch(now)
        if not self._buckets or self._buckets[-1][0] < current:
            self._buckets.append((current, {}))
        oldest_allowed = current - self.window_buckets + 1
        while self._buckets and self._buckets[0][0] < oldest_allowed:
            __, counts = self._buckets.popleft()
            for key, count in counts.items():
                remaining = self._totals[key] - count
                if remaining:
                    self._totals[key] = remaining
                else:
                    del self._totals[key]

    def record(self, key: str, now: float) -> None:
        """Log one access to ``key`` at time ``now``."""
        self._rotate(now)
        self._buckets[-1][1][key] = self._buckets[-1][1].get(key, 0) + 1
        self._totals[key] = self._totals.get(key, 0) + 1

    def windowed_count(self, key: str, now: float) -> int:
        """Accesses to ``key`` within the live window."""
        self._rotate(now)
        return self._totals.get(key, 0)

    def is_cache_worthy(self, key: str, now: float) -> bool:
        """True if ``key``'s windowed count has reached the threshold."""
        return self.windowed_count(key, now) >= self.threshold

    def record_and_check(self, key: str, now: float) -> bool:
        """Record an access, then report cache-worthiness (the common path)."""
        self.record(key, now)
        return self._totals[key] >= self.threshold

    def tracked_keys(self, now: float) -> int:
        """Number of distinct keys with live window state (memory footprint)."""
        self._rotate(now)
        return len(self._totals)

    # -- AdmissionPolicy protocol ------------------------------------------

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        """Adapt to :class:`~repro.core.admission.base.AdmissionPolicy`."""
        return self.record_and_check(file_id, now)
