"""Static cache filters: regex and JSON-format rules (Section 5.1).

The Presto local cache admits data through filtering rules "set by platform
owners and infrequently updated".  A rule targets a table (by exact name or
regex over ``schema.table``) and may bound how many of its partitions stay
cached via ``maxCachedPartitions`` -- the snippet in the paper caps
``table_bar`` at 100 partitions.

Rules are expressed as JSON-compatible dicts::

    [
        {"table": "schema_foo.table_bar", "maxCachedPartitions": 100},
        {"tablePattern": "ads\\..*", "maxCachedPartitions": 10},
        {"table": "tmp.scratch", "admit": false},
    ]

Partition capping is LRU over partitions: when a table already has
``maxCachedPartitions`` distinct partitions admitted and a new partition
arrives, the least-recently-seen partition is retired from the admitted set
(its future accesses are declined until it re-earns a slot; the cache
manager's scope delete actually frees its pages).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.scope import CacheScope


@dataclass(frozen=True, slots=True)
class FilterRule:
    """One admission rule.

    Attributes:
        pattern: compiled regex matched (fully) against ``schema.table``.
        admit: False turns the rule into a deny-list entry.
        max_cached_partitions: cap on distinct partitions kept admitted,
            ``None`` for unlimited.
    """

    pattern: re.Pattern[str]
    admit: bool = True
    max_cached_partitions: int | None = None

    def matches(self, qualified_table: str) -> bool:
        return self.pattern.fullmatch(qualified_table) is not None


def parse_filter_rules(rules: list[dict]) -> list[FilterRule]:
    """Build :class:`FilterRule` objects from JSON-format dicts."""
    parsed: list[FilterRule] = []
    for raw in rules:
        if "table" in raw and "tablePattern" in raw:
            raise ValueError(f"rule {raw!r} sets both 'table' and 'tablePattern'")
        if "table" in raw:
            pattern = re.compile(re.escape(raw["table"]))
        elif "tablePattern" in raw:
            pattern = re.compile(raw["tablePattern"])
        else:
            raise ValueError(f"rule {raw!r} needs 'table' or 'tablePattern'")
        max_parts = raw.get("maxCachedPartitions")
        if max_parts is not None and max_parts <= 0:
            raise ValueError(f"maxCachedPartitions must be positive, got {max_parts}")
        parsed.append(
            FilterRule(
                pattern=pattern,
                admit=bool(raw.get("admit", True)),
                max_cached_partitions=max_parts,
            )
        )
    return parsed


class CacheFilter:
    """Evaluates filter rules against scopes; tracks partition caps.

    First matching rule wins (rules are ordered, like the production JSON
    config).  A scope shallower than table level (schema or global) is
    admitted only by an explicit match-all rule.
    """

    def __init__(
        self, rules: list[FilterRule], *, default_admit: bool = False
    ) -> None:
        self._rules = list(rules)
        self._default_admit = default_admit
        # table -> LRU-ordered set of admitted partition names
        self._admitted_partitions: dict[str, OrderedDict[str, None]] = {}

    @classmethod
    def from_json(
        cls, rules: list[dict], *, default_admit: bool = False
    ) -> "CacheFilter":
        return cls(parse_filter_rules(rules), default_admit=default_admit)

    def _qualified_table(self, scope: CacheScope) -> str | None:
        # scope components: (global, schema, table[, partition, ...])
        if scope.depth < 3:
            return None
        return f"{scope.components[1]}.{scope.components[2]}"

    def admit(self, scope: CacheScope) -> bool:
        """Decide admission for an access within ``scope``."""
        qualified = self._qualified_table(scope)
        if qualified is None:
            return self._default_admit
        for rule in self._rules:
            if not rule.matches(qualified):
                continue
            if not rule.admit:
                return False
            if rule.max_cached_partitions is None or scope.depth < 4:
                return True
            return self._admit_partition(
                qualified, scope.components[3], rule.max_cached_partitions
            )
        return self._default_admit

    def _admit_partition(self, table: str, partition: str, cap: int) -> bool:
        admitted = self._admitted_partitions.setdefault(table, OrderedDict())
        if partition in admitted:
            admitted.move_to_end(partition)
            return True
        admitted[partition] = None
        if len(admitted) > cap:
            admitted.popitem(last=False)  # retire least-recently-seen
        return partition in admitted

    def admitted_partitions(self, table: str) -> list[str]:
        """Currently admitted partitions of ``table`` (LRU order, oldest first)."""
        return list(self._admitted_partitions.get(table, ()))


class FilterAdmissionPolicy:
    """Adapts :class:`CacheFilter` to the :class:`AdmissionPolicy` protocol."""

    def __init__(self, cache_filter: CacheFilter) -> None:
        self._filter = cache_filter

    @classmethod
    def from_json(
        cls, rules: list[dict], *, default_admit: bool = False
    ) -> "FilterAdmissionPolicy":
        return cls(CacheFilter.from_json(rules, default_admit=default_admit))

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        return self._filter.admit(scope)
