"""Admission policy interface.

The admission controller (Figure 3) sees every read *before* the cache
lookup; data it declines takes the non-cache read path straight to the
external source.  Policies receive the file identity and the scope so they
can reason at file, partition, or table granularity.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.scope import CacheScope


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides whether a (file, scope) access is cache-worthy."""

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        """Return True to cache the data, False for the non-cache path.

        ``now`` is virtual time; window-based policies use it to age their
        state.  Implementations may mutate internal state (access counters)
        on every call.
        """
        ...


class AdmitAll:
    """Cache everything (the baseline the paper's strategies improve on)."""

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        return True


class AdmitNone:
    """Cache nothing; turns the cache into a pass-through (for ablations)."""

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        return False
