"""Frequency-sketch admission (TinyLFU-style), an alternative §5.1 policy.

``BucketTimeRateLimit`` keeps exact per-key counts inside a sliding window,
which costs memory proportional to the keyset.  At petabyte scale the
keyset (every block touched in the window) can be large; a *frequency
sketch* bounds memory at a fixed size while still answering "has this key
been seen often lately?" approximately.  This module provides:

- :class:`CountMinSketch` -- the classic probabilistic counter: ``depth``
  rows of ``width`` counters, each key hashed into one counter per row;
  the estimate is the row minimum (over-counts possible, under-counts
  impossible).
- :class:`TinyLfuAdmission` -- admission after the sketch-estimated
  frequency crosses a threshold, with periodic *aging* (halving all
  counters) so stale popularity decays -- the sketch analogue of the
  rate limiter's bucket rotation.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.scope import CacheScope


class CountMinSketch:
    """A Count-Min sketch over string keys.

    Guarantees: ``estimate(k) >= true_count(k)`` always (no undercount);
    overestimation is bounded by the sketch size relative to the total
    increments.
    """

    def __init__(self, width: int = 16_384, depth: int = 4) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError(f"width/depth must be positive, got {width}/{depth}")
        self.width = width
        self.depth = depth
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self.total_increments = 0

    def _indices(self, key: str) -> list[int]:
        raw = key.encode("utf-8")
        return [
            zlib.crc32(raw, row * 0x9E3779B9 & 0xFFFFFFFF) % self.width
            for row in range(self.depth)
        ]

    def increment(self, key: str, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        for row, index in enumerate(self._indices(key)):
            self._counters[row, index] += amount
        self.total_increments += amount

    def estimate(self, key: str) -> int:
        return int(
            min(
                self._counters[row, index]
                for row, index in enumerate(self._indices(key))
            )
        )

    def age(self) -> None:
        """Halve every counter (TinyLFU's reset: popularity decays)."""
        self._counters //= 2
        self.total_increments //= 2


class TinyLfuAdmission:
    """Admit keys whose sketched frequency reaches ``threshold``.

    Aging runs every ``age_every`` increments, so the effective window is
    roughly ``age_every`` recent accesses -- fixed memory regardless of
    how many distinct keys flow past (the advantage over exact windowed
    counting).
    """

    def __init__(
        self,
        threshold: int = 3,
        *,
        sketch: CountMinSketch | None = None,
        age_every: int = 100_000,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if age_every <= 0:
            raise ValueError(f"age_every must be positive, got {age_every}")
        self.threshold = threshold
        self.age_every = age_every
        self.sketch = sketch if sketch is not None else CountMinSketch()
        self._since_age = 0

    def record_and_check(self, key: str) -> bool:
        self.sketch.increment(key)
        self._since_age += 1
        if self._since_age >= self.age_every:
            self.sketch.age()
            self._since_age = 0
        return self.sketch.estimate(key) >= self.threshold

    # -- AdmissionPolicy protocol ------------------------------------------

    def admit(self, file_id: str, scope: CacheScope, now: float) -> bool:
        return self.record_and_check(file_id)
