"""Cache admission strategies (Section 5.1).

Two production strategies, plus helpers:

- :mod:`~repro.core.admission.filters` -- static regex / JSON-rule filters
  with ``maxCachedPartitions`` semantics, as used by Presto local cache.
  At Uber, "after such filtering, less than 10% of requests require remote
  storage access."
- :mod:`~repro.core.admission.rate_limiter` -- ``BucketTimeRateLimit``: a
  sliding window of minute buckets counting block accesses; a block is
  cache-worthy once its windowed count crosses a threshold (Figure 12).
  Used by HDFS local cache, where "only around 1% of [admitted] requests
  require slower storage access."
- :mod:`~repro.core.admission.shadow` -- a shadow working-set estimator for
  sizing and admission experiments.
"""

from repro.core.admission.base import AdmitAll, AdmitNone, AdmissionPolicy
from repro.core.admission.filters import (
    CacheFilter,
    FilterAdmissionPolicy,
    FilterRule,
    parse_filter_rules,
)
from repro.core.admission.rate_limiter import BucketTimeRateLimit
from repro.core.admission.shadow import ShadowCache
from repro.core.admission.tinylfu import CountMinSketch, TinyLfuAdmission

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "AdmitNone",
    "CacheFilter",
    "FilterRule",
    "FilterAdmissionPolicy",
    "parse_filter_rules",
    "BucketTimeRateLimit",
    "ShadowCache",
    "CountMinSketch",
    "TinyLfuAdmission",
]
