"""Metrics registry with error breakdowns and per-query aggregation.

Section 7 calls an aggregated metrics system "crucial for cache tuning and
debugging", and singles out error-related metrics -- error counts per
operation with breakdowns of concrete error types -- as the most useful for
root-causing.  Section 6.1.3 describes aggregating per-query runtime stats
into table-level insights.  This module provides:

- :class:`Counter`, :class:`Gauge`, :class:`Histogram` primitives,
- :class:`MetricsRegistry` -- the per-cache-instance registry, including
  ``record_error(operation, error)`` breakdowns,
- :class:`AggregatedMetrics` -- merges registries from many cache instances
  (thousands of nodes in production) into one centralized view.

Per-*query* runtime statistics live in :mod:`repro.presto.runtime_stats`,
which feeds table-level aggregates through this module's histograms.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move in either direction (e.g. bytes cached)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A reservoir of observations supporting percentile queries.

    Observations are kept exactly (these simulations produce at most a few
    million points); percentiles use linear interpolation, matching
    ``numpy.percentile`` defaults.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value}")
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self.total / len(self._values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the observations."""
        if not self._values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(np.asarray(self._values), q))

    def values(self) -> list[float]:
        return list(self._values)

    def merge(self, other: "Histogram") -> None:
        self._values.extend(other._values)


@dataclass(slots=True)
class CacheStatsSnapshot:
    """A point-in-time summary of one cache's headline metrics."""

    hits: int
    misses: int
    hit_ratio: float
    bytes_from_cache: int
    bytes_from_remote: int
    puts: int
    put_rejections: int
    evictions: int
    errors: int


class MetricsRegistry:
    """Metrics for one cache instance.

    Well-known counters (created eagerly so snapshots are stable):

    ``get_hits`` / ``get_misses`` -- page-granularity hit/miss counts,
    ``bytes_read_cache`` / ``bytes_read_remote`` -- byte-granularity split,
    ``puts`` / ``put_rejected_admission`` / ``put_rejected_quota`` /
    ``put_rejected_space`` -- admission pipeline outcomes,
    ``evictions`` / ``evicted_bytes`` / ``ttl_evictions`` -- reclaim stats,
    ``timeout_fallbacks`` / ``corruption_evictions`` -- Section 8 paths,
    ``retries`` / ``retry_exhausted`` / ``hedged_requests`` / ``hedge_wins``
    / ``hedge_errors`` / ``breaker_trips`` / ``breaker_rejections`` / ``breaker_probes`` /
    ``failovers`` / ``remote_fallbacks`` / ``degraded_serves`` /
    ``chaos_faults_injected`` -- the resilience layer's decision trail
    (every retry/hedge/breaker decision is observable, per the Section 7
    error-metrics lesson).
    """

    _WELL_KNOWN = (
        "get_hits",
        "get_misses",
        "bytes_read_cache",
        "bytes_read_remote",
        "puts",
        "put_rejected_admission",
        "put_rejected_quota",
        "put_rejected_space",
        "evictions",
        "evicted_bytes",
        "ttl_evictions",
        "timeout_fallbacks",
        "corruption_evictions",
        "retries",
        "retry_exhausted",
        "hedged_requests",
        "hedge_wins",
        "hedge_errors",
        "breaker_trips",
        "breaker_rejections",
        "breaker_probes",
        "failovers",
        "remote_fallbacks",
        "degraded_serves",
        "chaos_faults_injected",
    )

    def __init__(self, name: str = "cache") -> None:
        self.name = name
        self._counters: dict[str, Counter] = {k: Counter() for k in self._WELL_KNOWN}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._errors: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    # -- primitives ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def record_error(self, operation: str, error: BaseException | str) -> None:
        """Count an error, broken down by operation and concrete type.

        The paper's experience: this breakdown is "extremely helpful to
        identify root causes in debugging" (Section 7).
        """
        error_type = error if isinstance(error, str) else type(error).__name__
        self._errors[operation][error_type] += 1

    def error_breakdown(self) -> dict[str, dict[str, int]]:
        """``{operation: {error_type: count}}``."""
        return {op: dict(types) for op, types in self._errors.items()}

    @property
    def total_errors(self) -> int:
        return sum(sum(types.values()) for types in self._errors.values())

    # -- headline stats -------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        hits = self._counters["get_hits"].value
        misses = self._counters["get_misses"].value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> CacheStatsSnapshot:
        c = self._counters
        return CacheStatsSnapshot(
            hits=c["get_hits"].value,
            misses=c["get_misses"].value,
            hit_ratio=self.hit_ratio,
            bytes_from_cache=c["bytes_read_cache"].value,
            bytes_from_remote=c["bytes_read_remote"].value,
            puts=c["puts"].value,
            put_rejections=(
                c["put_rejected_admission"].value
                + c["put_rejected_quota"].value
                + c["put_rejected_space"].value
            ),
            evictions=c["evictions"].value,
            errors=self.total_errors,
        )

    def counters(self) -> dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}


class AggregatedMetrics:
    """Fleet-level roll-up of many :class:`MetricsRegistry` instances.

    Mirrors the paper's centralized metrics system that aggregates local
    cache metrics across thousands of nodes.
    """

    def __init__(self, registries: Iterable[MetricsRegistry] = ()) -> None:
        self._registries: list[MetricsRegistry] = list(registries)

    def register(self, registry: MetricsRegistry) -> None:
        self._registries.append(registry)

    def __len__(self) -> int:
        return len(self._registries)

    def counter_total(self, name: str) -> int:
        return sum(r.counter(name).value for r in self._registries)

    @property
    def hit_ratio(self) -> float:
        hits = self.counter_total("get_hits")
        misses = self.counter_total("get_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def merged_histogram(self, name: str) -> Histogram:
        merged = Histogram()
        for registry in self._registries:
            merged.merge(registry.histogram(name))
        return merged

    def error_breakdown(self) -> dict[str, dict[str, int]]:
        merged: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for registry in self._registries:
            for op, types in registry.error_breakdown().items():
                for error_type, count in types.items():
                    merged[op][error_type] += count
        return {op: dict(types) for op, types in merged.items()}

    def per_node_hit_ratios(self) -> list[float]:
        return [r.hit_ratio for r in self._registries]
