"""Metrics registry with error breakdowns and per-query aggregation.

Section 7 calls an aggregated metrics system "crucial for cache tuning and
debugging", and singles out error-related metrics -- error counts per
operation with breakdowns of concrete error types -- as the most useful for
root-causing.  Section 6.1.3 describes aggregating per-query runtime stats
into table-level insights.  This module provides:

- :class:`Counter`, :class:`Gauge`, :class:`Histogram` primitives,
- :class:`MetricsRegistry` -- the per-cache-instance registry, including
  ``record_error(operation, error)`` breakdowns,
- :class:`AggregatedMetrics` -- merges registries from many cache instances
  (thousands of nodes in production) into one centralized view.

Per-*query* runtime statistics live in :mod:`repro.presto.runtime_stats`,
which feeds table-level aggregates through this module's histograms.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.analysis.timeseries import RingSeries
from repro.ports.rng import RngStream


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move in either direction (e.g. bytes cached).

    ``set`` optionally carries an *exemplar* (the active trace span id)
    linking the reading back to the trace that produced it; a small ring
    of recent ``(value, reference)`` pairs is retained so a spike in, say,
    ``device_queue_depth`` can be chased to the blocked read's trace.
    """

    EXEMPLAR_SLOTS = 8

    __slots__ = ("value", "_exemplars", "_exemplar_seen", "_history")

    def __init__(self) -> None:
        self.value = 0.0
        self._exemplars: list[tuple[float, str]] = []
        self._exemplar_seen = 0
        # optional sampled history (continuous telemetry); None keeps the
        # default gauge at last-value-only with zero extra memory
        self._history: RingSeries | None = None

    def set(self, value: float, exemplar: str | None = None) -> None:
        self.value = value
        if exemplar is not None:
            self._record_exemplar(value, exemplar)

    def add(self, delta: float) -> None:
        self.value += delta

    # -- sampled history ----------------------------------------------------

    def enable_history(self, capacity: int = 1024) -> RingSeries:
        """Attach a bounded sampled history (idempotent; keeps points)."""
        if self._history is None:
            self._history = RingSeries(capacity)
        return self._history

    @property
    def history(self) -> RingSeries | None:
        return self._history

    def sample(self, timestamp: float) -> None:
        """Record the current value at ``timestamp`` (no-op when disabled).

        Called by a periodic sampler on the *virtual* clock, never a wall
        clock -- histories stay deterministic.
        """
        if self._history is not None:
            self._history.append(timestamp, self.value)

    def _record_exemplar(self, value: float, reference: str) -> None:
        if len(self._exemplars) < self.EXEMPLAR_SLOTS:
            self._exemplars.append((value, reference))
        else:
            self._exemplars[self._exemplar_seen % self.EXEMPLAR_SLOTS] = (
                value,
                reference,
            )
        self._exemplar_seen += 1

    def exemplars(self) -> list[tuple[float, str]]:
        """Recent ``(value, reference)`` pairs, newest-slot ring order."""
        return list(self._exemplars)


class Histogram:
    """Observations with exact count/total/mean and bounded storage.

    Up to ``reservoir_cap`` observations are kept exactly; past the cap the
    histogram switches to a uniform reservoir (Vitter's Algorithm R) seeded
    from a :class:`~repro.sim.rng.RngStream`, so memory stays bounded on
    arbitrarily long runs while every observation retains an equal chance
    of representation.  ``count``/``total``/``mean`` are tracked exactly
    regardless of sampling; ``percentile`` answers from whatever is
    retained (exact below the cap, an unbiased estimate above it) using
    linear interpolation, matching ``numpy.percentile`` defaults.

    ``observe`` optionally carries an *exemplar* -- an opaque reference
    (the active trace span id) linking the metric back to a trace; a small
    ring of recent exemplars is retained.
    """

    DEFAULT_RESERVOIR = 65_536
    EXEMPLAR_SLOTS = 8

    __slots__ = (
        "_values",
        "_count",
        "_total",
        "_cap",
        "_rng",
        "_exemplars",
        "_exemplar_seen",
    )

    def __init__(
        self,
        *,
        reservoir_cap: int = DEFAULT_RESERVOIR,
        rng: RngStream | None = None,
    ) -> None:
        if reservoir_cap <= 0:
            raise ValueError(f"reservoir_cap must be > 0, got {reservoir_cap}")
        self._values: list[float] = []
        self._count = 0
        self._total = 0.0
        self._cap = reservoir_cap
        self._rng = rng if rng is not None else RngStream(0, "metrics/reservoir")
        self._exemplars: list[tuple[float, str]] = []
        self._exemplar_seen = 0

    def observe(self, value: float, exemplar: str | None = None) -> None:
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value}")
        self._count += 1
        self._total += value
        if len(self._values) < self._cap:
            self._values.append(value)
        else:
            # Algorithm R: keep each of the count observations with equal
            # probability cap/count
            slot = int(self._rng.rng.integers(0, self._count))
            if slot < self._cap:
                self._values[slot] = value
        if exemplar is not None:
            if len(self._exemplars) < self.EXEMPLAR_SLOTS:
                self._exemplars.append((value, exemplar))
            else:
                self._exemplars[self._exemplar_seen % self.EXEMPLAR_SLOTS] = (
                    value,
                    exemplar,
                )
            self._exemplar_seen += 1

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._total / self._count

    @property
    def sampled(self) -> bool:
        """True once the reservoir has downsampled (count exceeded cap)."""
        return self._count > len(self._values)

    @property
    def reservoir_cap(self) -> int:
        return self._cap

    def exemplars(self) -> list[tuple[float, str]]:
        """Recent ``(value, reference)`` pairs, newest-slot ring order."""
        return list(self._exemplars)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained observations."""
        if not self._values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(np.asarray(self._values), q))

    def values(self) -> list[float]:
        return list(self._values)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in: exact count/total always; if the combined
        retained values overflow this histogram's cap they are downsampled
        uniformly (deterministically, via this histogram's rng stream)."""
        self._count += other._count
        self._total += other._total
        combined = self._values + other._values
        if len(combined) > self._cap:
            keep = sorted(
                self._rng.rng.choice(
                    len(combined), size=self._cap, replace=False
                ).tolist()
            )
            combined = [combined[i] for i in keep]
        self._values = combined
        for value, ref in other._exemplars:
            if len(self._exemplars) < self.EXEMPLAR_SLOTS:
                self._exemplars.append((value, ref))
            else:
                self._exemplars[self._exemplar_seen % self.EXEMPLAR_SLOTS] = (
                    value,
                    ref,
                )
            self._exemplar_seen += 1


@dataclass(slots=True)
class CacheStatsSnapshot:
    """A point-in-time summary of one cache's headline metrics."""

    hits: int
    misses: int
    hit_ratio: float
    bytes_from_cache: int
    bytes_from_remote: int
    puts: int
    put_rejections: int
    evictions: int
    errors: int


class MetricsRegistry:
    """Metrics for one cache instance.

    Well-known counters (created eagerly so snapshots are stable):

    ``get_hits`` / ``get_misses`` -- page-granularity hit/miss counts,
    ``bytes_read_cache`` / ``bytes_read_remote`` -- byte-granularity split,
    ``puts`` / ``put_rejected_admission`` / ``put_rejected_quota`` /
    ``put_rejected_space`` -- admission pipeline outcomes,
    ``evictions`` / ``evicted_bytes`` / ``ttl_evictions`` -- reclaim stats,
    ``timeout_fallbacks`` / ``corruption_evictions`` -- Section 8 paths,
    ``retries`` / ``retry_exhausted`` / ``hedged_requests`` / ``hedge_wins``
    / ``hedge_errors`` / ``breaker_trips`` / ``breaker_rejections`` / ``breaker_probes`` /
    ``failovers`` / ``remote_fallbacks`` / ``degraded_serves`` /
    ``chaos_faults_injected`` -- the resilience layer's decision trail
    (every retry/hedge/breaker decision is observable, per the Section 7
    error-metrics lesson).
    """

    _WELL_KNOWN = (
        "get_hits",
        "get_misses",
        "bytes_read_cache",
        "bytes_read_remote",
        "puts",
        "put_rejected_admission",
        "put_rejected_quota",
        "put_rejected_space",
        "evictions",
        "evicted_bytes",
        "ttl_evictions",
        "timeout_fallbacks",
        "corruption_evictions",
        "retries",
        "retry_exhausted",
        "hedged_requests",
        "hedge_wins",
        "hedge_errors",
        "breaker_trips",
        "breaker_rejections",
        "breaker_probes",
        "failovers",
        "remote_fallbacks",
        "degraded_serves",
        "chaos_faults_injected",
    )

    def __init__(self, name: str = "cache") -> None:
        self.name = name
        self._counters: dict[str, Counter] = {k: Counter() for k in self._WELL_KNOWN}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._errors: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        # 0 = history off; >0 = capacity applied to every gauge, including
        # gauges lazily created after enable_gauge_history() was called
        self._gauge_history_capacity = 0

    # -- primitives ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            gauge = Gauge()
            if self._gauge_history_capacity:
                gauge.enable_history(self._gauge_history_capacity)
            self._gauges[name] = gauge
        return self._gauges[name]

    def enable_gauge_history(self, capacity: int = 1024) -> None:
        """Give every gauge (current and future) a bounded sampled history."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._gauge_history_capacity = capacity
        for gauge in self._gauges.values():
            gauge.enable_history(capacity)

    def sample_gauges(self, timestamp: float) -> None:
        """Record every history-enabled gauge's current value at ``timestamp``."""
        for gauge in self._gauges.values():
            gauge.sample(timestamp)

    def gauge_history_snapshot(self) -> dict[str, dict]:
        """Merge-safe copy of every history-enabled gauge's time series.

        Plain ``{name: {capacity, dropped, times, values}}`` dicts -- the
        caller can ship, JSON-encode, or merge them without holding a
        reference into this registry's live state.
        """
        return {
            name: gauge.history.to_dict()
            for name, gauge in sorted(self._gauges.items())
            if gauge.history is not None
        }

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            # deterministic per-(registry, metric) reservoir stream so
            # downsampling never perturbs (or is perturbed by) scenario rngs
            self._histograms[name] = Histogram(
                rng=RngStream(0, f"metrics/{self.name}/{name}")
            )
        return self._histograms[name]

    def record_error(self, operation: str, error: BaseException | str) -> None:
        """Count an error, broken down by operation and concrete type.

        The paper's experience: this breakdown is "extremely helpful to
        identify root causes in debugging" (Section 7).
        """
        error_type = error if isinstance(error, str) else type(error).__name__
        self._errors[operation][error_type] += 1

    def error_breakdown(self) -> dict[str, dict[str, int]]:
        """``{operation: {error_type: count}}``."""
        return {op: dict(types) for op, types in self._errors.items()}

    @property
    def total_errors(self) -> int:
        return sum(sum(types.values()) for types in self._errors.values())

    # -- headline stats -------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        hits = self._counters["get_hits"].value
        misses = self._counters["get_misses"].value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> CacheStatsSnapshot:
        c = self._counters
        return CacheStatsSnapshot(
            hits=c["get_hits"].value,
            misses=c["get_misses"].value,
            hit_ratio=self.hit_ratio,
            bytes_from_cache=c["bytes_read_cache"].value,
            bytes_from_remote=c["bytes_read_remote"].value,
            puts=c["puts"].value,
            put_rejections=(
                c["put_rejected_admission"].value
                + c["put_rejected_quota"].value
                + c["put_rejected_space"].value
            ),
            evictions=c["evictions"].value,
            errors=self.total_errors,
        )

    def counters(self) -> dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}

    def gauge_values(self) -> dict[str, float]:
        return {name: gauge.value for name, gauge in self._gauges.items()}


class AggregatedMetrics:
    """Fleet-level roll-up of many :class:`MetricsRegistry` instances.

    Mirrors the paper's centralized metrics system that aggregates local
    cache metrics across thousands of nodes.
    """

    def __init__(self, registries: Iterable[MetricsRegistry] = ()) -> None:
        self._registries: list[MetricsRegistry] = list(registries)

    def register(self, registry: MetricsRegistry) -> None:
        self._registries.append(registry)

    def __len__(self) -> int:
        return len(self._registries)

    def counter_total(self, name: str) -> int:
        return sum(r.counter(name).value for r in self._registries)

    @property
    def hit_ratio(self) -> float:
        hits = self.counter_total("get_hits")
        misses = self.counter_total("get_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def merged_histogram(self, name: str) -> Histogram:
        merged = Histogram()
        for registry in self._registries:
            merged.merge(registry.histogram(name))
        return merged

    def error_breakdown(self) -> dict[str, dict[str, int]]:
        merged: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for registry in self._registries:
            for op, types in registry.error_breakdown().items():
                for error_type, count in types.items():
                    merged[op][error_type] += count
        return {op: dict(types) for op, types in merged.items()}

    def merged_gauge_history(self, name: str) -> RingSeries:
        """Interleave one gauge's sampled history across the fleet.

        Registries without a history for ``name`` contribute nothing; the
        merge never mutates any per-node series (merge-safe snapshots).
        """
        merged = RingSeries(1)
        for registry in self._registries:
            gauge = registry._gauges.get(name)
            if gauge is not None and gauge.history is not None:
                merged = merged.merge(gauge.history)
        return merged

    def per_node_hit_ratios(self) -> list[float]:
        return [r.hit_ratio for r in self._registries]
