"""The Alluxio local cache manager (Figure 3) -- the paper's contribution.

:class:`LocalCacheManager` wires the components of Section 4 into the
read/write workflow:

1. **Admission controller** decides whether an access is cache-worthy;
   declined data takes the non-cache read path to the external source.
2. **Page translation** turns file-level positional reads into page-level
   operations (:func:`~repro.core.page.pages_for_range`).
3. **Cache hit** -- the page store serves the bytes; a read that exceeds
   the configured timeout or fails its checksum *falls back to the remote
   source* (Section 8), with corruption additionally triggering early
   eviction of the bad entry.
4. **Cache miss** -- read-through: the full page is fetched from the data
   source, admitted through allocation, quota verification, and capacity
   eviction, and the requested fragment is served.
5. **Quota manager** verifies the scope chain finest-to-global and cures
   violations with the paper's partition-level / table-random eviction.
6. **Evictor** (per cache directory, pluggable policy) reclaims space.
7. A periodic **TTL sweep** expires pages past their time-to-live.

Thread-safety: metadata mutations hold a manager-wide lock; page payload
I/O is guarded by striped per-page locks (Section 4.3's "fine-grained
locking mechanisms to support high-read concurrency").  Simulations are
single-threaded, but the cache is safe to embed in threaded applications.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.admission.base import AdmissionPolicy, AdmitAll
from repro.core.allocator import make_allocator
from repro.core.config import CacheConfig
from repro.core.eviction import make_eviction_policy
from repro.core.metastore import PageMetaStore
from repro.core.metrics import MetricsRegistry
from repro.core.page import PageId, PageInfo, pages_for_range
from repro.core.pagestore.memory import MemoryPageStore
from repro.core.quota import QuotaManager
from repro.core.scope import CacheScope
from repro.errors import (
    CacheReadTimeoutError,
    NoSpaceLeftError,
    PageCorruptedError,
    PageNotFoundError,
)
from repro.obs.tracer import current_tracer
from repro.ports.clock import Clock, SimClock
from repro.ports.rng import RngStream

if TYPE_CHECKING:
    from repro.ports.concurrency import SchedulerPort
    from repro.storage.remote import DataSource, ReadResult


@dataclass(slots=True)
class CacheReadResult:
    """Outcome of :meth:`LocalCacheManager.read`.

    ``latency`` sums modelled page-store and remote latencies for the
    request; simulators advance their clock by it.
    """

    data: bytes
    latency: float = 0.0
    page_hits: int = 0
    page_misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_remote: int = 0
    fallbacks: int = 0

    @property
    def fully_cached(self) -> bool:
        return self.page_misses == 0 and self.fallbacks == 0


@dataclass(slots=True)
class _PutOutcome:
    admitted: bool
    reason: str = "ok"
    evicted_pages: int = 0


class LocalCacheManager:
    """The embeddable local (edge) cache.

    Args:
        config: knobs (page size, directories, policies, timeouts).
        clock: time source (virtual in simulations, wall in live embeds).
        page_store: payload storage; defaults to an in-memory store.
        admission: admission policy; defaults to admit-all.
        quota: hierarchical quota manager; defaults to no quotas.
        metrics: metrics registry; created if not supplied.
        rng: random stream (random eviction, quota randomization).
        event_loop: any :class:`~repro.ports.concurrency.SchedulerPort`
            (the kernel's ``EventLoop``, or the service scheduler); when
            supplied, a periodic TTL sweep is scheduled on it.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        clock: Clock | None = None,
        page_store=None,
        admission: AdmissionPolicy | None = None,
        quota: QuotaManager | None = None,
        metrics: MetricsRegistry | None = None,
        rng: RngStream | None = None,
        event_loop: SchedulerPort | None = None,
    ) -> None:
        self.config = config if config is not None else CacheConfig()
        self.clock = clock if clock is not None else SimClock()
        self.page_store = page_store if page_store is not None else MemoryPageStore()
        self.admission = admission if admission is not None else AdmitAll()
        self.quota = quota if quota is not None else QuotaManager()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rng = rng if rng is not None else RngStream(0, "cache")
        self.metastore = PageMetaStore()
        # attribution bucket for cache hits: device-backed stores are SSD
        # time, pure in-memory stores are memory time (DESIGN.md §8)
        self._hit_bucket = (
            "cache_ssd"
            if getattr(self.page_store, "device", None) is not None
            else "cache_mem"
        )
        self._allocator = make_allocator(self.config, self.metastore)
        self._policies = [
            make_eviction_policy(self.config.eviction_policy, self.rng.child(f"evict{i}"))
            for i in range(len(self.config.directories))
        ]
        self._meta_lock = threading.RLock()
        self._stripes = [
            threading.RLock() for __ in range(self.config.lock_stripes)
        ]
        if event_loop is not None:
            event_loop.schedule_periodic(
                self.config.ttl_check_interval, self.ttl_sweep
            )

    # -- convenience accessors ----------------------------------------------

    @property
    def bytes_used(self) -> int:
        return self.metastore.bytes_used

    @property
    def page_count(self) -> int:
        return len(self.metastore)

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    def contains(self, page_id: PageId) -> bool:
        return page_id in self.metastore

    def _stripe(self, page_id: PageId) -> threading.RLock:
        return self._stripes[hash(page_id) % len(self._stripes)]

    # ------------------------------------------------------------------ reads

    def read(
        self,
        file_id: str,
        offset: int,
        length: int,
        source: DataSource,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
    ) -> CacheReadResult:
        """Positional read of ``[offset, offset+length)`` of ``file_id``.

        The request is split into page fragments; each fragment is served
        from the cache when possible, otherwise read through the source
        (caching the full page when admission, quota, and space permit).
        Reads past end-of-file are truncated, mirroring ranged GETs.
        """
        tracer = current_tracer()
        with tracer.span(
            "cache_read", actor=self.metrics.name,
            file_id=file_id, offset=offset, length=length,
        ) as span:
            result = self._read(file_id, offset, length, source, scope, ttl, span)
            span.annotate("latency", result.latency)
            span.annotate("page_hits", result.page_hits)
            span.annotate("page_misses", result.page_misses)
            self.metrics.histogram("read_latency_seconds").observe(
                result.latency, exemplar=span.span_id or None
            )
            return result

    def _read(
        self,
        file_id: str,
        offset: int,
        length: int,
        source: DataSource,
        scope: CacheScope | None,
        ttl: float | None,
        span,
    ) -> CacheReadResult:
        scope = scope if scope is not None else CacheScope.global_scope()
        file_length = source.file_length(file_id)
        if offset >= file_length:
            return CacheReadResult(data=b"")
        length = min(length, file_length - offset)
        result = CacheReadResult(data=b"")
        chunks: list[bytes] = []
        now = self.clock.now()

        if not self.admission.admit(file_id, scope, now):
            # Non-cache read path (Figure 3): straight to the data source.
            self.metrics.counter("put_rejected_admission").inc()
            span.event("admission_bypass")
            remote = source.read(file_id, offset, length)
            self._charge_remote(span, source, remote.latency)
            result.latency += remote.latency
            result.bytes_from_remote += len(remote.data)
            result.page_misses += self._page_span(offset, length)
            self.metrics.counter("get_misses").inc(self._page_span(offset, length))
            self.metrics.counter("bytes_read_remote").inc(len(remote.data))
            result.data = remote.data
            return result

        for page_id, in_page, take in pages_for_range(
            file_id, offset, length, self.config.page_size
        ):
            fragment = self._read_fragment(
                page_id, in_page, take, source, scope, ttl, file_length, result
            )
            chunks.append(fragment)
        result.data = b"".join(chunks)
        return result

    @staticmethod
    def _charge_remote(span, source: DataSource, remote_latency: float) -> None:
        """Split one remote latency into attribution buckets on ``span``.

        Sources that decompose their latency expose side-channel attributes
        (``last_retry_backoff`` from the resilience wrapper,
        ``last_queue_wait`` from device/throttle-backed sources); whatever
        is unexplained is charged as pure remote time.  The bucket sum
        equals ``remote_latency`` exactly.
        """
        backoff = getattr(source, "last_retry_backoff", 0.0)
        wait = getattr(source, "last_queue_wait", 0.0)
        span.charge("retry_backoff", backoff)
        span.charge("queueing", wait)
        span.charge("remote", remote_latency - backoff - wait)

    def _page_span(self, offset: int, length: int) -> int:
        if length <= 0:
            return 0
        first = offset // self.config.page_size
        last = (offset + length - 1) // self.config.page_size
        return last - first + 1

    def _read_fragment(
        self,
        page_id: PageId,
        in_page: int,
        take: int,
        source: DataSource,
        scope: CacheScope,
        ttl: float | None,
        file_length: int,
        result: CacheReadResult,
    ) -> bytes:
        info = self.metastore.get(page_id)
        if info is not None:
            data = self._read_cached(page_id, info, in_page, take, source, result)
            if data is not None:
                return data
            # fell through: timeout/corruption fallback already fetched below
        return self._read_through(
            page_id, in_page, take, source, scope, ttl, file_length, result
        )

    def _read_cached(
        self,
        page_id: PageId,
        info: PageInfo,
        in_page: int,
        take: int,
        source: DataSource,
        result: CacheReadResult,
    ) -> bytes | None:
        """Serve a hit; on timeout/corruption return ``None`` to trigger the
        remote fallback path."""
        try:
            with self._stripe(page_id):
                data = self._store_get(
                    page_id, info.directory, in_page, take
                )
        except CacheReadTimeoutError as exc:
            # Section 8 "file read hanging": fall back to remote storage,
            # keep the cached entry (the data is fine, the device stalled).
            self.metrics.counter("timeout_fallbacks").inc()
            self.metrics.record_error("get", exc)
            current_tracer().current().event("timeout_fallback")
            result.fallbacks += 1
            return None
        except PageCorruptedError as exc:
            # Section 8 "corrupted files": early-evict the bad entry.
            self.metrics.counter("corruption_evictions").inc()
            self.metrics.record_error("get", exc)
            current_tracer().current().event("corruption_fallback")
            self.delete_page(page_id)
            result.fallbacks += 1
            return None
        except PageNotFoundError as exc:
            # Metadata said present but payload is gone (lost device);
            # repair metadata and treat as a miss.
            self.metrics.record_error("get", exc)
            self._forget(page_id)
            return None
        with self._meta_lock:
            info.touch(self.clock.now())
            self._policies[info.directory].on_access(page_id)
        self.metrics.counter("get_hits").inc()
        self.metrics.counter("bytes_read_cache").inc(len(data))
        latency = getattr(self.page_store, "last_op_latency", 0.0)
        wait = getattr(self.page_store, "last_op_wait", 0.0)
        span = current_tracer().current()
        span.charge("queueing", wait)
        span.charge(self._hit_bucket, latency - wait)
        result.latency += latency
        result.page_hits += 1
        result.bytes_from_cache += len(data)
        return data

    def _store_get(
        self, page_id: PageId, directory: int, in_page: int, take: int
    ) -> bytes:
        store = self.page_store
        try:
            return store.get(
                page_id, directory, in_page, take, timeout=self.config.read_timeout
            )
        except TypeError:
            # Stores without timeout support (memory/local-file).
            return store.get(page_id, directory, in_page, take)

    def _read_through(
        self,
        page_id: PageId,
        in_page: int,
        take: int,
        source: DataSource,
        scope: CacheScope,
        ttl: float | None,
        file_length: int,
        result: CacheReadResult,
    ) -> bytes:
        """Miss path: fetch the whole page remotely, try to cache it."""
        page_offset = page_id.page_index * self.config.page_size
        page_length = min(self.config.page_size, file_length - page_offset)
        remote: ReadResult = source.read(page_id.file_id, page_offset, page_length)
        self._charge_remote(current_tracer().current(), source, remote.latency)
        result.latency += remote.latency
        result.page_misses += 1
        result.bytes_from_remote += len(remote.data)
        self.metrics.counter("get_misses").inc()
        self.metrics.counter("bytes_read_remote").inc(len(remote.data))
        self.put_page(page_id, remote.data, scope=scope, ttl=ttl, pre_admitted=True)
        return remote.data[in_page : in_page + take]

    def prefetch_file(
        self,
        file_id: str,
        source: DataSource,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
    ) -> int:
        """Warm-up: pre-load every page of ``file_id`` from the source.

        This is the "data is pre-loaded into the cache" protocol of the
        paper's TPC-DS evaluation.  Returns the number of the file's pages
        resident after the prefetch (admission, quota, and capacity rules
        still apply -- a prefetch is not a guarantee).
        """
        length = source.file_length(file_id)
        if length > 0:
            self.read(file_id, 0, length, source, scope=scope, ttl=ttl)
        return len(self.metastore.pages_of_file(file_id))

    # ------------------------------------------------------------------ writes

    def put_page(
        self,
        page_id: PageId,
        data: bytes,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
        pre_admitted: bool = False,
    ) -> bool:
        """Insert one page; returns True if the page is resident afterwards.

        The admission pipeline: admission policy (unless ``pre_admitted``),
        allocator, quota verification + quota eviction, capacity eviction,
        then the page-store write (with the ENOSPC early-eviction retry of
        Section 8).
        """
        scope = scope if scope is not None else CacheScope.global_scope()
        now = self.clock.now()
        if not pre_admitted and not self.admission.admit(page_id.file_id, scope, now):
            self.metrics.counter("put_rejected_admission").inc()
            return False
        with self._meta_lock:
            outcome = self._admit(page_id, data, scope, ttl, now)
        if outcome.admitted:
            self.metrics.counter("puts").inc()
        return outcome.admitted

    def _admit(
        self,
        page_id: PageId,
        data: bytes,
        scope: CacheScope,
        ttl: float | None,
        now: float,
    ) -> _PutOutcome:
        size = len(data)
        if size > self.config.page_size:
            raise ValueError(
                f"payload of {size} bytes exceeds page size {self.config.page_size}"
            )
        if page_id in self.metastore:
            return _PutOutcome(admitted=True, reason="already-cached")
        if size == 0:
            return _PutOutcome(admitted=False, reason="empty")

        # Quota verification, finest level first (Section 5.2).
        if not self.quota.fits_eventually(scope, size):
            self.metrics.counter("put_rejected_quota").inc()
            return _PutOutcome(admitted=False, reason="quota-impossible")
        for violation in self.quota.check(scope, size, self.metastore):
            for victim in self.quota.plan_eviction(violation, self.metastore, self.rng):
                self._evict(victim.page_id)
        if self.quota.check(scope, size, self.metastore):
            self.metrics.counter("put_rejected_quota").inc()
            return _PutOutcome(admitted=False, reason="quota")

        directory = self._ensure_space(page_id.file_id, size)
        if directory is None:
            self.metrics.counter("put_rejected_space").inc()
            return _PutOutcome(admitted=False, reason="space")

        ttl = ttl if ttl is not None else self.config.default_ttl
        info = PageInfo(
            page_id=page_id,
            size=size,
            scope=scope,
            directory=directory,
            created_at=now,
            ttl=ttl,
        )
        try:
            with self._stripe(page_id):
                self.page_store.put(page_id, data, directory)
        except NoSpaceLeftError as exc:
            # Section 8 "insufficient disk capacity": early eviction, retry.
            self.metrics.record_error("put", exc)
            self._early_evict(directory)
            try:
                with self._stripe(page_id):
                    self.page_store.put(page_id, data, directory)
            except NoSpaceLeftError as retry_exc:
                self.metrics.record_error("put", retry_exc)
                self.metrics.counter("put_rejected_space").inc()
                return _PutOutcome(admitted=False, reason="enospc")
        self.metastore.add(info)
        self._policies[directory].on_put(page_id)
        return _PutOutcome(admitted=True)

    def _ensure_space(self, file_id: str, size: int) -> int | None:
        """Allocate a directory, evicting until the page fits."""
        directory = self._allocator.allocate(file_id, size)
        if directory is None:
            return None
        capacity = self.config.directories[directory].capacity_bytes
        guard = len(self.metastore) + 1
        while capacity - self.metastore.bytes_in_dir(directory) < size:
            victim = self._policies[directory].victim()
            if victim is None or guard <= 0:
                return None
            self._evict(victim)
            guard -= 1
        return directory

    def _early_evict(self, directory: int) -> None:
        """Reclaim a batch from ``directory`` before configured capacity."""
        for __ in range(self.config.eviction_batch):
            victim = self._policies[directory].victim()
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, page_id: PageId) -> None:
        if self._delete(page_id):
            self.metrics.counter("evictions").inc()

    # ------------------------------------------------------------------ deletes

    def delete_page(self, page_id: PageId) -> bool:
        """Explicitly remove one page."""
        with self._meta_lock:
            return self._delete(page_id)

    def delete_file(self, file_id: str) -> int:
        """Remove every page of one file; returns pages removed."""
        with self._meta_lock:
            infos = self.metastore.pages_of_file(file_id)
            for info in list(infos):
                self._delete(info.page_id)
            return len(infos)

    def delete_scope(self, scope: CacheScope) -> int:
        """Remove every page under a scope subtree (partition drop,
        Section 4.4); returns pages removed."""
        with self._meta_lock:
            infos = self.metastore.pages_in_scope(scope)
            for info in list(infos):
                self._delete(info.page_id)
            return len(infos)

    def delete_dir(self, directory: int) -> int:
        """Remove every page on one storage directory (faulty device,
        Section 4.4); returns pages removed."""
        with self._meta_lock:
            infos = self.metastore.pages_in_dir(directory)
            for info in list(infos):
                self._delete(info.page_id)
            return len(infos)

    def _delete(self, page_id: PageId) -> bool:
        info = self.metastore.remove(page_id)
        if info is None:
            return False
        self._policies[info.directory].on_delete(page_id)
        self.metrics.counter("evicted_bytes").inc(info.size)
        with self._stripe(page_id):
            self.page_store.delete(page_id, info.directory)
        return True

    def _forget(self, page_id: PageId) -> None:
        """Drop metadata for a page whose payload vanished."""
        with self._meta_lock:
            info = self.metastore.remove(page_id)
            if info is not None:
                self._policies[info.directory].on_delete(page_id)

    # ------------------------------------------------------------------ TTL

    def ttl_sweep(self) -> int:
        """Evict every expired page (the periodic background job of
        Section 4.1); returns pages expired."""
        now = self.clock.now()
        with self._meta_lock:
            expired = self.metastore.expired_pages(now)
            for info in expired:
                if self._delete(info.page_id):
                    self.metrics.counter("ttl_evictions").inc()
            return len(expired)

    # ------------------------------------------------------------------ misc

    def scope_usage(self, scope: CacheScope) -> int:
        """Bytes cached under ``scope``."""
        return self.metastore.bytes_in_scope(scope)

    def dir_usage(self, directory: int) -> int:
        """Bytes cached on one storage directory (per-device reporting)."""
        return self.metastore.bytes_in_dir(directory)
