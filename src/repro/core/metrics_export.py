"""Metrics exporters: the observable surface of the metrics system.

The production deployment exports cache metrics through Presto JMX
exporters into a centralized system (Sections 6.1.3, 7).  This module
renders a :class:`~repro.core.metrics.MetricsRegistry` (or a fleet-level
:class:`~repro.core.metrics.AggregatedMetrics`) into the two formats a
scrape pipeline wants:

- :func:`to_json_dict` -- structured counters, gauges, histogram summaries,
  and the per-operation error breakdown;
- :func:`to_prometheus_text` -- Prometheus exposition format, one gauge or
  counter line per metric, labelled by cache instance.
"""

from __future__ import annotations

import json
import re

from repro.core.metrics import AggregatedMetrics, MetricsRegistry

_HISTOGRAM_QUANTILES = (50.0, 90.0, 95.0, 99.0)
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus exposition format: backslash,
    double quote, and line feed must be backslash-escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def to_json_dict(registry: MetricsRegistry) -> dict:
    """Structured snapshot of one registry."""
    histograms = {}
    for name, histogram in registry._histograms.items():
        histograms[name] = {
            "count": histogram.count,
            "total": histogram.total,
            "mean": histogram.mean,
            "sampled": histogram.sampled,
            **{
                f"p{int(q)}": histogram.percentile(q)
                for q in _HISTOGRAM_QUANTILES
            },
            # metric -> trace linkage: recent (value, span_id) exemplars
            "exemplars": [
                {"value": value, "span_id": ref}
                for value, ref in histogram.exemplars()
            ],
        }
    return {
        "name": registry.name,
        "counters": registry.counters(),
        "gauges": {name: g.value for name, g in registry._gauges.items()},
        "histograms": histograms,
        "errors": registry.error_breakdown(),
        "hit_ratio": registry.hit_ratio,
    }


def to_json(registry: MetricsRegistry, *, indent: int | None = None) -> str:
    """JSON text of :func:`to_json_dict`."""
    return json.dumps(to_json_dict(registry), indent=indent, sort_keys=True)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format for one registry."""
    # metric names must be sanitized; label values may hold any UTF-8 but
    # backslash, quote, and newline must be escaped
    instance = _escape_label(registry.name)
    lines: list[str] = []
    for name, value in sorted(registry.counters().items()):
        metric = f"cache_{_sanitize(name)}_total"
        lines.append(f'{metric}{{instance="{instance}"}} {value}')
    for name, gauge in sorted(registry._gauges.items()):
        metric = f"cache_{_sanitize(name)}"
        lines.append(f'{metric}{{instance="{instance}"}} {gauge.value}')
    for name, histogram in sorted(registry._histograms.items()):
        metric = f"cache_{_sanitize(name)}"
        lines.append(
            f'{metric}_count{{instance="{instance}"}} {histogram.count}'
        )
        lines.append(
            f'{metric}_sum{{instance="{instance}"}} {histogram.total}'
        )
        for q in _HISTOGRAM_QUANTILES:
            lines.append(
                f'{metric}{{instance="{instance}",quantile="{q / 100:g}"}} '
                f"{histogram.percentile(q)}"
            )
    for operation, types in sorted(registry.error_breakdown().items()):
        for error_type, count in sorted(types.items()):
            lines.append(
                f'cache_errors_total{{instance="{instance}",'
                f'operation="{_sanitize(operation)}",'
                f'type="{_sanitize(error_type)}"}} {count}'
            )
    lines.append(f'cache_hit_ratio{{instance="{instance}"}} {registry.hit_ratio}')
    return "\n".join(lines) + "\n"


def fleet_to_json_dict(fleet: AggregatedMetrics) -> dict:
    """Centralized view across many cache instances (Section 7's
    aggregated metrics system)."""
    return {
        "nodes": len(fleet),
        "hit_ratio": fleet.hit_ratio,
        "per_node_hit_ratios": fleet.per_node_hit_ratios(),
        "counters": {
            name: fleet.counter_total(name)
            for name in MetricsRegistry._WELL_KNOWN
        },
        "errors": fleet.error_breakdown(),
    }


def fleet_to_json(fleet: AggregatedMetrics, *, indent: int | None = None) -> str:
    return json.dumps(fleet_to_json_dict(fleet), indent=indent, sort_keys=True)
