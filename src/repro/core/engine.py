"""The transport-agnostic cache engine (DESIGN.md §14).

:class:`CacheEngine` is the hexagonal *core* of the reproduction: one
facade over :class:`~repro.core.cache_manager.LocalCacheManager` and the
page stores that owns no opinion about time, concurrency, or the wire.
Those arrive as injected ports (:mod:`repro.ports`):

- ``clock`` -- a :class:`~repro.ports.clock.SimClock` under the
  virtual-time kernel, a :class:`~repro.ports.clock.WallClock` behind the
  asyncio service;
- ``scheduler`` -- whoever rearms the periodic TTL sweep (kernel timers or
  an asyncio loop);
- ``executor`` -- where blocking page-store IO runs (inline for the
  simulator, a thread pool for the service);
- ``source`` -- the read-through :class:`~repro.storage.remote.DataSource`
  (synthetic/simulated remotes, or a real socket client such as
  :class:`~repro.service.client.RemoteCacheDataSource`).

Two adapters drive the same engine: :mod:`repro.service.sim_transport`
(discrete-event kernel) and :mod:`repro.service.server` (asyncio TCP).
This module must therefore never import ``repro.sim`` -- enforced by the
``cache-core-transport-agnostic`` architecture contract and a subprocess
import-purity test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.core.cache_manager import CacheReadResult, LocalCacheManager
from repro.core.config import CacheConfig
from repro.core.metrics import MetricsRegistry
from repro.core.metrics_export import to_json_dict, to_prometheus_text
from repro.core.page import PageId
from repro.core.scope import CacheScope
from repro.ports.clock import Clock, SimClock
from repro.ports.concurrency import ExecutorPort, InlineExecutor, SchedulerPort
from repro.ports.rng import RngStream

if TYPE_CHECKING:
    from repro.storage.remote import DataSource


class CacheEngine:
    """One cache core, any transport.

    The engine exposes the verb set both transports speak -- ``get``,
    ``put``, ``evict``, ``stats``, ``health`` -- plus the maintenance
    hooks a transport schedules (``ttl_sweep``).  All state lives in the
    wrapped :class:`LocalCacheManager`, which is thread-safe (striped
    page locks + a metadata lock), so a thread-pool transport may call
    into one engine from many workers concurrently.

    Args:
        config: cache knobs; defaults to :class:`CacheConfig` defaults.
        source: default read-through data source for ``get``/``prefetch``;
            per-call overrides are accepted.  Without one, only explicit
            ``put``/``evict`` traffic is possible and ``get`` raises.
        clock: time port; defaults to a fresh :class:`SimClock` (library
            embeds that never sweep TTLs work fine with frozen time).
        scheduler: when supplied, the TTL sweep is registered on it at
            ``config.ttl_check_interval``.
        executor: where :meth:`submit` runs work; defaults to
            :class:`InlineExecutor`.
        page_store / admission / quota / metrics / rng: forwarded to
            :class:`LocalCacheManager` untouched.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        source: DataSource | None = None,
        clock: Clock | None = None,
        scheduler: SchedulerPort | None = None,
        executor: ExecutorPort | None = None,
        page_store: Any = None,
        admission: Any = None,
        quota: Any = None,
        metrics: MetricsRegistry | None = None,
        rng: RngStream | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.executor: ExecutorPort = (
            executor if executor is not None else InlineExecutor()
        )
        self.source = source
        self.manager = LocalCacheManager(
            config,
            clock=self.clock,
            page_store=page_store,
            admission=admission,
            quota=quota,
            metrics=metrics,
            rng=rng,
            event_loop=scheduler,
        )

    # ------------------------------------------------------------- data plane

    def get(
        self,
        file_id: str,
        offset: int,
        length: int,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
        source: DataSource | None = None,
    ) -> CacheReadResult:
        """Positional read, read-through on miss.  See ``LocalCacheManager.read``."""
        src = source if source is not None else self.source
        if src is None:
            raise ValueError(
                "CacheEngine.get needs a data source (constructor or per-call)"
            )
        return self.manager.read(
            file_id, offset, length, src, scope=scope, ttl=ttl
        )

    def put(
        self,
        file_id: str,
        page_index: int,
        data: bytes,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
    ) -> bool:
        """Insert one page; True if resident afterwards."""
        return self.manager.put_page(
            PageId(file_id, page_index), data, scope=scope, ttl=ttl
        )

    def evict(self, file_id: str, page_index: int | None = None) -> int:
        """Remove one page (or, with ``page_index=None``, a whole file).

        Returns the number of pages removed.
        """
        if page_index is None:
            return self.manager.delete_file(file_id)
        return int(self.manager.delete_page(PageId(file_id, page_index)))

    def contains(self, file_id: str, page_index: int) -> bool:
        return self.manager.contains(PageId(file_id, page_index))

    def prefetch(
        self,
        file_id: str,
        *,
        scope: CacheScope | None = None,
        ttl: float | None = None,
        source: DataSource | None = None,
    ) -> int:
        src = source if source is not None else self.source
        if src is None:
            raise ValueError(
                "CacheEngine.prefetch needs a data source (constructor or per-call)"
            )
        return self.manager.prefetch_file(file_id, src, scope=scope, ttl=ttl)

    def file_length(self, file_id: str) -> int:
        """Length of ``file_id`` at the read-through source."""
        if self.source is None:
            raise ValueError("CacheEngine.file_length needs a constructor source")
        return self.source.file_length(file_id)

    # ------------------------------------------------------------ maintenance

    def ttl_sweep(self) -> int:
        """Expire TTL-overdue pages; transports schedule this periodically."""
        return self.manager.ttl_sweep()

    def submit(self, fn: Any, /, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` on the injected executor port."""
        return self.executor.submit(fn, *args, **kwargs)

    # ------------------------------------------------------------ observation

    @property
    def metrics(self) -> MetricsRegistry:
        return self.manager.metrics

    @property
    def config(self) -> CacheConfig:
        return self.manager.config

    def stats(self) -> Mapping[str, Any]:
        """Metrics snapshot (the STATS frame body), via ``metrics_export``."""
        payload = dict(to_json_dict(self.manager.metrics))
        payload["engine"] = {
            "page_count": self.manager.page_count,
            "bytes_used": self.manager.bytes_used,
            "capacity_bytes": self.manager.capacity_bytes,
        }
        return payload

    def prometheus(self) -> str:
        """Prometheus exposition text (the STATS frame's text format)."""
        return to_prometheus_text(self.manager.metrics)

    def health(self) -> Mapping[str, Any]:
        """Cheap liveness summary (the HEALTH frame body)."""
        used = self.manager.bytes_used
        capacity = self.manager.capacity_bytes
        return {
            "status": "ok",
            "page_count": self.manager.page_count,
            "bytes_used": used,
            "capacity_bytes": capacity,
            "fill_fraction": (used / capacity) if capacity else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"CacheEngine(pages={self.manager.page_count}, "
            f"bytes={self.manager.bytes_used}/{self.manager.capacity_bytes})"
        )
