"""Version-qualified file identities: the cache-coherence mechanism.

Section 6.1.1: "To ensure cache coherence, Presto will always fetch the
latest metadata of input files from persistent storage, before splitting
the input files ... In case an input file is changed, the stale copy in
the cache will be invalidated based on the timestamp of file creation or
modification stored in the cache."

The mechanism is identity-based: cache keys embed the file's modification
stamp, so a changed file *misses* (its old entries become unreachable and
age out), with optional eager invalidation of the superseded version.
:class:`VersionedFileId` provides the canonical encoding -- it is the same
scheme the HDFS cache uses with generation stamps (``blk_17@gs5``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_manager import LocalCacheManager

_SEPARATOR = "@v"


@dataclass(frozen=True, slots=True)
class VersionedFileId:
    """A file path qualified by its modification stamp.

    >>> vid = VersionedFileId("wh/orders/part-0", 1700000000)
    >>> str(vid)
    'wh/orders/part-0@v1700000000'
    >>> VersionedFileId.parse(str(vid)) == vid
    True
    """

    path: str
    version: int

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must be non-empty")
        if _SEPARATOR in self.path:
            raise ValueError(
                f"path may not contain {_SEPARATOR!r}: {self.path!r}"
            )
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")

    def __str__(self) -> str:
        return f"{self.path}{_SEPARATOR}{self.version}"

    @classmethod
    def parse(cls, file_id: str) -> "VersionedFileId":
        path, sep, version = file_id.rpartition(_SEPARATOR)
        if not sep or not version.isdigit():
            raise ValueError(f"not a versioned file id: {file_id!r}")
        return cls(path=path, version=int(version))

    def successor(self, new_version: int) -> "VersionedFileId":
        """The identity after a file update."""
        if new_version <= self.version:
            raise ValueError(
                f"new version {new_version} must exceed {self.version}"
            )
        return VersionedFileId(self.path, new_version)


def invalidate_stale_versions(
    cache: LocalCacheManager, current: VersionedFileId
) -> int:
    """Eagerly drop cached entries of older versions of ``current.path``.

    Coherence holds without this (old versions are simply never read
    again), but eager invalidation frees space immediately -- the eviction
    analogue of the paper's "the stale copy in the cache will be
    invalidated".  Returns pages removed.
    """
    removed = 0
    for file_id in cache.metastore.file_ids():
        try:
            candidate = VersionedFileId.parse(file_id)
        except ValueError:
            continue
        if candidate.path == current.path and candidate.version < current.version:
            removed += cache.delete_file(file_id)
    return removed
