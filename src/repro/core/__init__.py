"""The Alluxio local cache: the paper's primary contribution.

Public API::

    from repro.core import (
        LocalCacheManager, CacheConfig, CacheDirectory, CacheScope,
        PageId, QuotaManager, MetricsRegistry,
    )

See :mod:`repro.core.cache_manager` for the request workflow, and the
``admission`` / ``eviction`` / ``pagestore`` subpackages for the pluggable
components.
"""

from repro.core.admission import (
    AdmitAll,
    AdmitNone,
    BucketTimeRateLimit,
    CacheFilter,
    FilterAdmissionPolicy,
    ShadowCache,
)
from repro.core.cache_manager import CacheReadResult, LocalCacheManager
from repro.core.engine import CacheEngine
from repro.core.config import (
    DEFAULT_PAGE_SIZE,
    GIB,
    KIB,
    LEGACY_PAGE_SIZE,
    MIB,
    TIB,
    CacheConfig,
    CacheDirectory,
)
from repro.core.metrics import AggregatedMetrics, MetricsRegistry
from repro.core.page import PageId, PageInfo, pages_for_range
from repro.core.quota import QuotaManager, QuotaViolation
from repro.core.scope import CacheScope

__all__ = [
    "CacheEngine",
    "LocalCacheManager",
    "CacheReadResult",
    "CacheConfig",
    "CacheDirectory",
    "CacheScope",
    "PageId",
    "PageInfo",
    "pages_for_range",
    "QuotaManager",
    "QuotaViolation",
    "MetricsRegistry",
    "AggregatedMetrics",
    "AdmitAll",
    "AdmitNone",
    "CacheFilter",
    "FilterAdmissionPolicy",
    "BucketTimeRateLimit",
    "ShadowCache",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "DEFAULT_PAGE_SIZE",
    "LEGACY_PAGE_SIZE",
]
