"""Page store interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.page import PageId


@dataclass(frozen=True, slots=True)
class StoredPage:
    """A page payload returned by a store read."""

    page_id: PageId
    data: bytes


@runtime_checkable
class PageStore(Protocol):
    """Byte-payload storage for cache pages.

    Implementations raise:

    - :class:`~repro.errors.PageNotFoundError` on reads of absent pages,
    - :class:`~repro.errors.PageCorruptedError` when a payload fails its
      integrity check,
    - :class:`~repro.errors.CacheReadTimeoutError` when a read exceeds the
      store's timeout budget,
    - :class:`~repro.errors.NoSpaceLeftError` when the device is full even
      though the configured capacity is not reached (Section 8).
    """

    def put(self, page_id: PageId, data: bytes, directory: int) -> None:
        """Persist a page payload into ``directory``."""
        ...

    def get(self, page_id: PageId, directory: int,
            offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes at ``offset`` within a page (whole page by
        default)."""
        ...

    def delete(self, page_id: PageId, directory: int) -> bool:
        """Remove a page payload; returns True if it existed."""
        ...

    def contains(self, page_id: PageId, directory: int) -> bool:
        ...

    def bytes_used(self, directory: int) -> int:
        """Payload bytes currently stored in ``directory``."""
        ...
