"""Simulated-SSD page store: real payloads, virtual timing, injectable faults.

Used by every benchmark: payloads live in memory (so correctness is fully
exercised) while read/write *latency* is charged to a
:class:`~repro.storage.device.StorageDevice` on the simulation clock.  The
three production failure modes of Section 8 are injectable:

- **read hang** -- a read takes pathologically long (the paper saw up to 10
  minutes); if the modelled latency exceeds the caller's timeout budget the
  store raises :class:`~repro.errors.CacheReadTimeoutError` so the cache
  manager can fall back to remote storage.
- **corruption** -- a page's payload is flagged corrupt; reads raise
  :class:`~repro.errors.PageCorruptedError`.
- **ENOSPC** -- the device reports full below the configured cache
  capacity; puts raise :class:`~repro.errors.NoSpaceLeftError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.page import PageId
from repro.core.pagestore.memory import MemoryPageStore
from repro.errors import (
    CacheReadTimeoutError,
    NoSpaceLeftError,
    PageCorruptedError,
    PageNotFoundError,
)
from repro.sim.kernel import Timeout, defer_io, io_collection_active
from repro.storage.device import StorageDevice


@dataclass(slots=True)
class FaultPlan:
    """Failure injection state for a simulated store.

    Attributes:
        corrupted: pages whose next read raises ``PageCorruptedError``.
        hang_reads_seconds: when set, every read stalls this long before
            completing (compare against the read timeout budget).
        physical_full_after_bytes: device-level capacity per directory; puts
            beyond it raise ``NoSpaceLeftError`` regardless of configured
            cache capacity.
        read_corruption_probability: each read independently fails its
            checksum with this probability (a decaying SSD region), on top
            of the explicit ``corrupted`` set.
        write_failure_probability: each put independently fails with this
            probability (the Section 8 "inability to write new data"
            failure mode), surfacing as ``NoSpaceLeftError`` so the cache's
            early-eviction mitigation engages.
        rng: random stream for the probabilistic modes (required when
            either probability is non-zero).
    """

    corrupted: set[PageId] = field(default_factory=set)
    hang_reads_seconds: float | None = None
    physical_full_after_bytes: int | None = None
    read_corruption_probability: float = 0.0
    write_failure_probability: float = 0.0
    rng: object = None

    def __post_init__(self) -> None:
        for name in ("read_corruption_probability", "write_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
            if value > 0 and self.rng is None:
                raise ValueError(f"{name} > 0 requires an rng")


class SimulatedSsdPageStore:
    """Memory-backed page store that charges SSD latency to a device model."""

    def __init__(
        self,
        device: StorageDevice,
        faults: FaultPlan | None = None,
    ) -> None:
        self._backing = MemoryPageStore()
        self._device = device
        self.faults = faults if faults is not None else FaultPlan()
        self.last_op_latency = 0.0
        # queueing share of last_op_latency (device channel wait), exposed
        # so tracing can split a hit's cost into cache_ssd vs. queueing
        self.last_op_wait = 0.0

    @property
    def device(self) -> StorageDevice:
        return self._device

    # -- PageStore protocol ------------------------------------------------

    def put(self, page_id: PageId, data: bytes, directory: int) -> None:
        limit = self.faults.physical_full_after_bytes
        if limit is not None and self._backing.bytes_used(directory) + len(data) > limit:
            raise NoSpaceLeftError(
                f"simulated device full (dir={directory}, limit={limit})"
            )
        if self.faults.write_failure_probability > 0 and (
            self.faults.rng.rng.random() < self.faults.write_failure_probability
        ):
            raise NoSpaceLeftError(
                f"injected write failure on {page_id} (dir={directory})"
            )
        self.last_op_latency = self._device.write(len(data))
        self.last_op_wait = self._device.last_wait
        self._backing.put(page_id, data, directory)

    def get(
        self, page_id: PageId, directory: int,
        offset: int = 0, length: int | None = None,
        *, timeout: float | None = None,
    ) -> bytes:
        if not self._backing.contains(page_id, directory):
            raise PageNotFoundError(str(page_id))
        if page_id in self.faults.corrupted:
            raise PageCorruptedError(f"injected corruption on {page_id}")
        if self.faults.read_corruption_probability > 0 and (
            self.faults.rng.rng.random() < self.faults.read_corruption_probability
        ):
            raise PageCorruptedError(
                f"injected probabilistic corruption on {page_id}"
            )
        data = self._backing.get(page_id, directory, offset, length)
        latency = self._device.read(len(data))
        self.last_op_wait = self._device.last_wait
        if self.faults.hang_reads_seconds is not None:
            latency += self.faults.hang_reads_seconds
            if io_collection_active() and self._device.kernel_attached:
                # the device read itself was deferred; defer the injected
                # stall too so the owning process experiences it
                hang = self.faults.hang_reads_seconds

                def _hang_op(hang: float = hang):
                    yield Timeout(hang)
                    return hang

                defer_io(_hang_op)
        self.last_op_latency = latency
        if timeout is not None and latency > timeout:
            raise CacheReadTimeoutError(
                f"read of {page_id} took {latency:.3f}s > timeout {timeout:.3f}s"
            )
        return data

    def delete(self, page_id: PageId, directory: int) -> bool:
        self.faults.corrupted.discard(page_id)
        return self._backing.delete(page_id, directory)

    def contains(self, page_id: PageId, directory: int) -> bool:
        return self._backing.contains(page_id, directory)

    def bytes_used(self, directory: int) -> int:
        return self._backing.bytes_used(directory)

    # -- fault helpers ---------------------------------------------------------

    def corrupt(self, page_id: PageId) -> None:
        """Mark a resident page as corrupted (takes effect on next read)."""
        self.faults.corrupted.add(page_id)
