"""Local-file page store with the paper's on-disk layout (Figure 4).

Cached data is organized in a multi-level hierarchy rooted at each cache
directory::

    <root>/
      page_size=1048576/            top-level folder: persistent global info
        bucket=007/                 hash bucket (bounded directory fan-out)
          file=ab54d?????/          file-ID directory
            42                      page file: page_index 42 of that file
            42.crc                  checksum sidecar

Design points the paper calls out, all honoured here:

- "Page information is self-contained in page names and parent folders":
  a directory walk alone reconstructs every ``(file_id, page_index,
  page_size)`` triple, which is exactly how :meth:`LocalFilePageStore.recover`
  rebuilds state after a restart.
- The ``page_size`` folder is top-level because the page size is needed to
  compute page indices during recovery.
- Buckets bound the number of sub-folders per directory so lookups do not
  degrade as the cache grows.
- Checksums let reads detect the corrupted-file failure mode of Section 8;
  a failed verification raises :class:`~repro.errors.PageCorruptedError`,
  which the cache manager turns into early eviction plus remote fallback.
"""

from __future__ import annotations

import os
import threading
import zlib
from pathlib import Path
from urllib.parse import quote, unquote

from repro.core.page import PageId
from repro.errors import NoSpaceLeftError, PageCorruptedError, PageNotFoundError

_BUCKETS = 1024


def _bucket_of(file_id: str) -> int:
    return zlib.crc32(file_id.encode("utf-8")) % _BUCKETS


class LocalFilePageStore:
    """Page payloads as real files under one or more root directories.

    Args:
        roots: one filesystem root per cache directory index.
        page_size: cache page size; becomes the top-level layout folder.
        verify_checksums: verify the CRC sidecar on every read.
    """

    def __init__(
        self,
        roots: list[str | Path],
        page_size: int,
        *,
        verify_checksums: bool = True,
    ) -> None:
        if not roots:
            raise ValueError("at least one root directory is required")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self._roots = [Path(r) for r in roots]
        self._page_size = page_size
        self._verify = verify_checksums
        self._used: dict[int, int] = {}
        # usage accounting is a read-modify-write shared by every put and
        # delete; the manager's striped page locks do not cover it, so it
        # needs its own lock to stay exact under concurrent writers
        self._used_lock = threading.Lock()
        for index, root in enumerate(self._roots):
            (root / f"page_size={page_size}").mkdir(parents=True, exist_ok=True)
            self._used[index] = self._scan_usage(index)

    # -- layout ------------------------------------------------------------

    def _file_dir(self, file_id: str, directory: int) -> Path:
        return (
            self._roots[directory]
            / f"page_size={self._page_size}"
            / f"bucket={_bucket_of(file_id):04d}"
            / f"file={quote(file_id, safe='')}"
        )

    def _page_path(self, page_id: PageId, directory: int) -> Path:
        return self._file_dir(page_id.file_id, directory) / str(page_id.page_index)

    # -- PageStore protocol ---------------------------------------------------

    def put(self, page_id: PageId, data: bytes, directory: int) -> None:
        path = self._page_path(page_id, directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            # Write-then-rename so a page is never visible half-written;
            # the paper makes pages readable only once their write completes.
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(data)
            tmp.with_suffix(".crc.tmp").write_bytes(
                zlib.crc32(data).to_bytes(4, "big")
            )
            os.replace(tmp.with_suffix(".crc.tmp"), path.with_suffix(".crc"))
            previous = path.stat().st_size if path.exists() else 0
            os.replace(tmp, path)
        except OSError as exc:
            if exc.errno == 28:  # ENOSPC
                raise NoSpaceLeftError(str(exc)) from exc
            raise
        with self._used_lock:
            self._used[directory] = (
                self._used.get(directory, 0) + len(data) - previous
            )

    def get(
        self, page_id: PageId, directory: int,
        offset: int = 0, length: int | None = None,
    ) -> bytes:
        path = self._page_path(page_id, directory)
        if not path.exists():
            raise PageNotFoundError(str(page_id))
        data = path.read_bytes()
        if self._verify:
            crc_path = path.with_suffix(".crc")
            if not crc_path.exists():
                raise PageCorruptedError(f"missing checksum for {page_id}")
            expected = int.from_bytes(crc_path.read_bytes(), "big")
            if zlib.crc32(data) != expected:
                raise PageCorruptedError(f"checksum mismatch for {page_id}")
        if length is None:
            return data[offset:]
        return data[offset : offset + length]

    def delete(self, page_id: PageId, directory: int) -> bool:
        path = self._page_path(page_id, directory)
        if not path.exists():
            return False
        size = path.stat().st_size
        path.unlink()
        crc_path = path.with_suffix(".crc")
        if crc_path.exists():
            crc_path.unlink()
        with self._used_lock:
            self._used[directory] = self._used.get(directory, 0) - size
        self._prune_empty_dirs(path.parent, directory)
        return True

    def contains(self, page_id: PageId, directory: int) -> bool:
        return self._page_path(page_id, directory).exists()

    def bytes_used(self, directory: int) -> int:
        return self._used.get(directory, 0)

    # -- recovery ---------------------------------------------------------------

    def recover(self, directory: int) -> list[tuple[PageId, int]]:
        """Rebuild ``(page_id, size)`` pairs by walking the layout.

        Because page identity is self-contained in names and parent folders,
        no external metadata is needed for recovery -- the property the
        paper's layout was designed for.  Pages whose recorded page size
        differs from this store's are skipped (they belong to an older
        configuration and cannot be indexed consistently).
        """
        recovered: list[tuple[PageId, int]] = []
        size_dir = self._roots[directory] / f"page_size={self._page_size}"
        if not size_dir.exists():
            return recovered
        for bucket_dir in sorted(size_dir.iterdir()):
            if not bucket_dir.name.startswith("bucket="):
                continue
            for file_dir in sorted(bucket_dir.iterdir()):
                if not file_dir.name.startswith("file="):
                    continue
                file_id = unquote(file_dir.name[len("file="):])
                for page_file in sorted(file_dir.iterdir()):
                    if page_file.suffix:  # .crc / .tmp sidecars
                        continue
                    try:
                        index = int(page_file.name)
                    except ValueError:
                        continue
                    recovered.append(
                        (PageId(file_id, index), page_file.stat().st_size)
                    )
        return recovered

    # -- internals ----------------------------------------------------------------

    def _scan_usage(self, directory: int) -> int:
        total = 0
        for page_id, size in self.recover(directory):
            total += size
        return total

    def _prune_empty_dirs(self, start: Path, directory: int) -> None:
        root = self._roots[directory]
        current = start
        while current != root and current.exists() and not any(current.iterdir()):
            if current.name.startswith("page_size="):
                break  # keep the persistent top-level folder
            current.rmdir()
            current = current.parent
