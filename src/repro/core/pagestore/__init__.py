"""Page stores: where page payloads live (Sections 4.2 and 4.3).

Three implementations behind one interface:

- :class:`~repro.core.pagestore.memory.MemoryPageStore` -- dict-backed;
  fast, used in tests and for metadata caching.
- :class:`~repro.core.pagestore.local.LocalFilePageStore` -- *real files*
  laid out in the paper's multi-level directory hierarchy (Figure 4), with
  checksums, crash recovery by directory walk, and bucketed fan-out.
- :class:`~repro.core.pagestore.simulated.SimulatedSsdPageStore` -- payloads
  in memory, *timing* on the virtual clock via an SSD device model, plus
  failure injection (read hangs, corruption, ENOSPC) for the Section 8
  failure case studies.
"""

from repro.core.pagestore.base import PageStore, StoredPage
from repro.core.pagestore.local import LocalFilePageStore
from repro.core.pagestore.memory import MemoryPageStore

# The simulated store is the one pagestore that depends on the virtual-time
# kernel; it is loaded lazily so importing repro.core (and CacheEngine in
# particular) never pulls in repro.sim (DESIGN.md §14).
_SIMULATED = {"FaultPlan", "SimulatedSsdPageStore"}


def __getattr__(name: str):
    if name in _SIMULATED:
        from repro.core.pagestore import simulated

        return getattr(simulated, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _SIMULATED)


__all__ = [
    "PageStore",
    "StoredPage",
    "MemoryPageStore",
    "LocalFilePageStore",
    "SimulatedSsdPageStore",
    "FaultPlan",
]
