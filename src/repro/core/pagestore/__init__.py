"""Page stores: where page payloads live (Sections 4.2 and 4.3).

Three implementations behind one interface:

- :class:`~repro.core.pagestore.memory.MemoryPageStore` -- dict-backed;
  fast, used in tests and for metadata caching.
- :class:`~repro.core.pagestore.local.LocalFilePageStore` -- *real files*
  laid out in the paper's multi-level directory hierarchy (Figure 4), with
  checksums, crash recovery by directory walk, and bucketed fan-out.
- :class:`~repro.core.pagestore.simulated.SimulatedSsdPageStore` -- payloads
  in memory, *timing* on the virtual clock via an SSD device model, plus
  failure injection (read hangs, corruption, ENOSPC) for the Section 8
  failure case studies.
"""

from repro.core.pagestore.base import PageStore, StoredPage
from repro.core.pagestore.local import LocalFilePageStore
from repro.core.pagestore.memory import MemoryPageStore
from repro.core.pagestore.simulated import FaultPlan, SimulatedSsdPageStore

__all__ = [
    "PageStore",
    "StoredPage",
    "MemoryPageStore",
    "LocalFilePageStore",
    "SimulatedSsdPageStore",
    "FaultPlan",
]
