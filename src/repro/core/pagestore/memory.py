"""Dict-backed page store (tests, metadata caching)."""

from __future__ import annotations

from repro.core.page import PageId
from repro.errors import NoSpaceLeftError, PageNotFoundError


class MemoryPageStore:
    """In-memory page payload store.

    Optionally enforces a per-directory physical byte limit so tests can
    exercise the ENOSPC early-eviction path without touching a real disk.
    """

    def __init__(self, physical_limit_bytes: int | None = None) -> None:
        if physical_limit_bytes is not None and physical_limit_bytes <= 0:
            raise ValueError(
                f"physical_limit_bytes must be positive, got {physical_limit_bytes}"
            )
        self._physical_limit = physical_limit_bytes
        self._pages: dict[tuple[int, PageId], bytes] = {}
        self._used: dict[int, int] = {}

    def put(self, page_id: PageId, data: bytes, directory: int) -> None:
        key = (directory, page_id)
        new_bytes = len(data) - len(self._pages.get(key, b""))
        if (
            self._physical_limit is not None
            and self._used.get(directory, 0) + new_bytes > self._physical_limit
        ):
            raise NoSpaceLeftError(
                f"no space left on device (dir={directory}, "
                f"used={self._used.get(directory, 0)}, "
                f"limit={self._physical_limit}, incoming={len(data)})"
            )
        self._pages[key] = bytes(data)
        self._used[directory] = self._used.get(directory, 0) + new_bytes

    def get(
        self, page_id: PageId, directory: int,
        offset: int = 0, length: int | None = None,
    ) -> bytes:
        try:
            data = self._pages[(directory, page_id)]
        except KeyError:
            raise PageNotFoundError(str(page_id)) from None
        if length is None:
            return data[offset:]
        return data[offset : offset + length]

    def delete(self, page_id: PageId, directory: int) -> bool:
        data = self._pages.pop((directory, page_id), None)
        if data is None:
            return False
        self._used[directory] -= len(data)
        return True

    def contains(self, page_id: PageId, directory: int) -> bool:
        return (directory, page_id) in self._pages

    def bytes_used(self, directory: int) -> int:
        return self._used.get(directory, 0)
