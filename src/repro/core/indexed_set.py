"""A generic multi-index set (Figure 5).

The paper's metastore evolved from two ad-hoc maps (by page ID and by file
ID) to *indexed sets*: a universe of page metadata plus any number of
secondary indices, each keyed by a property of the element.  Membership,
insertion, and removal keep every index consistent; lookups by any index are
O(1) to the bucket.

This module implements that structure generically so the metastore can index
pages by file ID, by storage directory, and by scope without bespoke
bookkeeping for each.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)


class Index(Generic[T]):
    """One secondary index: ``property(element) -> set of elements``.

    An index function may map an element to a single key or, via
    ``multi=True``, to an iterable of keys (used for scope indices where a
    page belongs to its partition scope *and* every ancestor scope).
    """

    def __init__(
        self,
        name: str,
        key_fn: Callable[[T], Hashable] | Callable[[T], Iterable[Hashable]],
        *,
        multi: bool = False,
    ) -> None:
        self.name = name
        self._key_fn = key_fn
        self._multi = multi
        self._buckets: dict[Hashable, set[int]] = {}

    def _keys_for(self, element: T) -> tuple[Hashable, ...]:
        raw = self._key_fn(element)
        if self._multi:
            return tuple(raw)  # type: ignore[arg-type]
        return (raw,)

    def _add(self, token: int, element: T) -> None:
        for key in self._keys_for(element):
            self._buckets.setdefault(key, set()).add(token)

    def _remove(self, token: int, element: T) -> None:
        for key in self._keys_for(element):
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            bucket.discard(token)
            if not bucket:
                del self._buckets[key]

    def keys(self) -> Iterator[Hashable]:
        """All distinct index keys currently populated."""
        return iter(self._buckets.keys())

    def bucket_size(self, key: Hashable) -> int:
        return len(self._buckets.get(key, ()))


class IndexedSet(Generic[T]):
    """A set with O(1) lookups along any registered index.

    Elements are stored once (keyed by an internal token derived from a
    caller-supplied *primary key*); every index maps property values to
    token sets.  All mutation goes through :meth:`add` / :meth:`discard`,
    which keep the indices consistent -- the invariant the property tests
    in ``tests/core/test_indexed_set.py`` verify.

    >>> s = IndexedSet(primary=lambda x: x)
    >>> s.register_index(Index("parity", lambda x: x % 2))
    >>> for n in range(5):
    ...     _ = s.add(n)
    >>> sorted(s.lookup("parity", 0))
    [0, 2, 4]
    """

    def __init__(self, primary: Callable[[T], Hashable]) -> None:
        self._primary = primary
        self._elements: dict[int, T] = {}
        self._token_of: dict[Hashable, int] = {}
        self._next_token = 0
        self._indices: dict[str, Index[T]] = {}

    # -- index registration ------------------------------------------------

    def register_index(self, index: Index[T]) -> None:
        """Attach an index; existing elements are back-filled into it."""
        if index.name in self._indices:
            raise ValueError(f"duplicate index name {index.name!r}")
        self._indices[index.name] = index
        for token, element in self._elements.items():
            index._add(token, element)

    def index_names(self) -> list[str]:
        return list(self._indices)

    # -- set protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[T]:
        return iter(self._elements.values())

    def __contains__(self, element: T) -> bool:
        return self._primary(element) in self._token_of

    def contains_key(self, primary_key: Hashable) -> bool:
        return primary_key in self._token_of

    def get(self, primary_key: Hashable) -> T | None:
        """Fetch an element by its primary key, or ``None``."""
        token = self._token_of.get(primary_key)
        return None if token is None else self._elements[token]

    def add(self, element: T) -> bool:
        """Insert; returns False (no-op) if the primary key already exists."""
        key = self._primary(element)
        if key in self._token_of:
            return False
        token = self._next_token
        self._next_token += 1
        self._elements[token] = element
        self._token_of[key] = token
        for index in self._indices.values():
            index._add(token, element)
        return True

    def replace(self, element: T) -> T | None:
        """Insert or replace by primary key; returns the displaced element."""
        key = self._primary(element)
        old = self.remove_key(key)
        self.add(element)
        return old

    def discard(self, element: T) -> bool:
        """Remove by element; returns True if it was present."""
        return self.remove_key(self._primary(element)) is not None

    def remove_key(self, primary_key: Hashable) -> T | None:
        """Remove by primary key; returns the removed element or ``None``."""
        token = self._token_of.pop(primary_key, None)
        if token is None:
            return None
        element = self._elements.pop(token)
        for index in self._indices.values():
            index._remove(token, element)
        return element

    # -- index lookups -------------------------------------------------------

    def lookup(self, index_name: str, key: Hashable) -> list[T]:
        """All elements whose indexed property equals ``key``."""
        index = self._indices[index_name]
        tokens = index._buckets.get(key, ())
        return [self._elements[t] for t in tokens]

    def count(self, index_name: str, key: Hashable) -> int:
        """Bucket size without materializing the elements."""
        return self._indices[index_name].bucket_size(key)

    def index_keys(self, index_name: str) -> list[Hashable]:
        """Distinct populated keys of one index."""
        return list(self._indices[index_name].keys())
