"""Hierarchical quota management for multi-tenancy (Section 5.2).

Quotas attach to scopes (global / schema / table / partition, or any custom
hierarchy).  The verification walk starts at the finest level and ascends to
the global scope; a put is compliant only if *every* level on the chain
stays within its quota.

Two deliberate paper-faithful behaviours:

1. **Oversubscription**: the collective quota of a table's partitions may
   exceed the table's own quota (the initial design forbade this and "hindered
   efficient resource sharing"); each level is only checked against its own
   limit.
2. **Two eviction strategies on violation** (implemented by
   :meth:`QuotaManager.plan_eviction`):
   partition-level eviction when a partition exceeds its own quota, and
   table-level *random eviction across partitions* when the table total
   exceeds the table quota -- randomization shares the pain when one
   partition dwarfs the others.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metastore import PageMetaStore
from repro.core.page import PageInfo
from repro.core.scope import CacheScope
from repro.ports.rng import RngStream


@dataclass(frozen=True, slots=True)
class QuotaViolation:
    """One level of the scope chain that a put would push over its quota."""

    scope: CacheScope
    quota_bytes: int
    used_bytes: int
    incoming_bytes: int

    @property
    def overflow_bytes(self) -> int:
        """Bytes that must be reclaimed under ``scope`` for compliance."""
        return self.used_bytes + self.incoming_bytes - self.quota_bytes


class QuotaManager:
    """Scope-keyed byte quotas with hierarchical verification.

    Scopes without an explicit quota are unlimited (only configured levels
    are checked, mirroring production where platform owners set quotas on a
    handful of tables).
    """

    def __init__(self, quotas: dict[str, int] | None = None) -> None:
        self._quotas: dict[str, int] = {}
        for dotted, limit in (quotas or {}).items():
            self.set_quota(CacheScope.parse(dotted), limit)

    def set_quota(self, scope: CacheScope, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise ValueError(f"quota must be positive, got {limit_bytes}")
        self._quotas[str(scope)] = limit_bytes

    def clear_quota(self, scope: CacheScope) -> None:
        self._quotas.pop(str(scope), None)

    def quota_of(self, scope: CacheScope) -> int | None:
        return self._quotas.get(str(scope))

    def __len__(self) -> int:
        return len(self._quotas)

    # -- verification --------------------------------------------------------

    def check(
        self, scope: CacheScope, incoming_bytes: int, metastore: PageMetaStore
    ) -> list[QuotaViolation]:
        """Walk the scope chain finest-first; collect every violated level.

        An empty list means the put is quota-compliant at all levels.
        """
        violations: list[QuotaViolation] = []
        for level in scope.ancestors():  # finest -> global (Section 5.2)
            limit = self._quotas.get(str(level))
            if limit is None:
                continue
            used = metastore.bytes_in_scope(level)
            if used + incoming_bytes > limit:
                violations.append(
                    QuotaViolation(
                        scope=level,
                        quota_bytes=limit,
                        used_bytes=used,
                        incoming_bytes=incoming_bytes,
                    )
                )
        return violations

    def fits_eventually(self, scope: CacheScope, incoming_bytes: int) -> bool:
        """False if the page can never fit (larger than some level's quota)."""
        for level in scope.ancestors():
            limit = self._quotas.get(str(level))
            if limit is not None and incoming_bytes > limit:
                return False
        return True

    # -- eviction planning -----------------------------------------------------

    def plan_eviction(
        self,
        violation: QuotaViolation,
        metastore: PageMetaStore,
        rng: RngStream,
    ) -> list[PageInfo]:
        """Pick pages to evict to cure one violation (paper's two strategies).

        - If the violated scope has no configured child quotas *below* it in
          the populated tree (typical for a partition), evict within that
          scope, least-recently-used first (partition-level eviction).
        - Otherwise (typical for a table whose partitions are fighting),
          evict by repeatedly choosing a *random* populated child scope and
          reclaiming its LRU page (table-level sharing and eviction).

        Returns page metadata in eviction order totalling at least
        ``violation.overflow_bytes`` (or everything under the scope if the
        demand exceeds the population).
        """
        needed = violation.overflow_bytes
        if needed <= 0:
            return []
        children = metastore.child_scope_usage(violation.scope)
        if not children:
            return self._evict_lru_within(violation.scope, needed, metastore)
        return self._evict_random_across_children(
            violation.scope, children, needed, metastore, rng
        )

    def _evict_lru_within(
        self, scope: CacheScope, needed: int, metastore: PageMetaStore
    ) -> list[PageInfo]:
        candidates = sorted(
            metastore.pages_in_scope(scope), key=lambda p: p.last_access
        )
        plan: list[PageInfo] = []
        freed = 0
        for info in candidates:
            if freed >= needed:
                break
            plan.append(info)
            freed += info.size
        return plan

    def _evict_random_across_children(
        self,
        scope: CacheScope,
        children: dict[str, int],
        needed: int,
        metastore: PageMetaStore,
        rng: RngStream,
    ) -> list[PageInfo]:
        # Pre-sort each child's pages by recency once; then round-robin
        # randomly across children, popping each child's LRU page.
        queues: dict[str, list[PageInfo]] = {}
        for child_key in children:
            pages = sorted(
                metastore.pages_in_scope(CacheScope.parse(child_key)),
                key=lambda p: p.last_access,
                reverse=True,  # pop() takes the least recent
            )
            if pages:
                queues[child_key] = pages
        plan: list[PageInfo] = []
        freed = 0
        keys = list(queues)
        while freed < needed and keys:
            pick = keys[int(rng.rng.integers(0, len(keys)))]
            queue = queues[pick]
            info = queue.pop()
            plan.append(info)
            freed += info.size
            if not queue:
                keys.remove(pick)
        return plan
