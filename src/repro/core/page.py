"""Page identity and metadata.

Alluxio local cache turns file-level reads into page-level operations
(Section 4.3).  A page is identified by the file it belongs to plus its
index within that file; page size is a cache-wide constant (1 MB by
default), so ``page_index = offset // page_size``.

The paper's HDFS append handling (Section 6.2.3) keys cache entries by
``(blockId, generation stamp)`` for snapshot isolation; we express that by
folding the version into the ``file_id`` string (``"blk_17@gs5"``), which
keeps :class:`PageId` format-agnostic.
"""

from __future__ import annotations

import contextlib
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.scope import CacheScope


@dataclass(frozen=True, slots=True)
class PageId:
    """Globally unique identity of a cached page.

    Attributes:
        file_id: opaque identifier of the source file (often a path hash or
            an HDFS ``blockId@generationStamp`` pair).
        page_index: zero-based index of the page within the file.
    """

    file_id: str
    page_index: int

    def __post_init__(self) -> None:
        if self.page_index < 0:
            raise ValueError(f"page_index must be >= 0, got {self.page_index}")
        if not self.file_id:
            raise ValueError("file_id must be non-empty")

    def __str__(self) -> str:
        return f"{self.file_id}#{self.page_index}"


@dataclass(slots=True)
class PageInfo:
    """Mutable metadata the metastore keeps for one cached page.

    Page *data* lives in the page store (SSD in production); this metadata
    stays in memory for fast lookups, exactly as Section 4.2 prescribes.

    Attributes:
        page_id: identity of the page.
        size: payload size in bytes (the last page of a file may be short).
        scope: logical scope (partition/table/schema) used by the quota
            manager and bulk operations.
        directory: index of the cache directory holding the page file.
        created_at: virtual/real timestamp of admission; when omitted it is
            stamped from the module time source (wall clock by default; see
            :func:`set_time_source`).
        last_access: timestamp of the most recent hit (LRU input).
        access_count: number of hits since admission (LFU input).
        ttl: optional time-to-live in seconds (privacy-driven expiry).
    """

    page_id: PageId
    size: int
    scope: CacheScope = field(default_factory=CacheScope.global_scope)
    directory: int = 0
    created_at: float | None = None
    last_access: float = 0.0
    access_count: int = 0
    ttl: float | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.created_at is None:
            self.created_at = now_wall()
        if self.last_access == 0.0:
            self.last_access = self.created_at

    @property
    def file_id(self) -> str:
        return self.page_id.file_id

    def touch(self, now: float) -> None:
        """Record a hit at virtual time ``now``."""
        self.last_access = now
        self.access_count += 1

    def is_expired(self, now: float) -> bool:
        """True if this page's TTL has elapsed at time ``now``."""
        return self.ttl is not None and now - self.created_at >= self.ttl


def pages_for_range(
    file_id: str, offset: int, length: int, page_size: int
) -> list[tuple[PageId, int, int]]:
    """Split a byte range of a file into page-aligned fragments.

    Returns a list of ``(page_id, offset_in_page, length_in_page)`` covering
    ``[offset, offset + length)``.  This is the translation the cache applies
    to every positional read (Section 4.3).

    >>> pages_for_range("f", 0, 10, 4)
    [(PageId(file_id='f', page_index=0), 0, 4), (PageId(file_id='f', page_index=1), 0, 4), (PageId(file_id='f', page_index=2), 0, 2)]
    """
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    if offset < 0 or length < 0:
        raise ValueError(f"offset/length must be >= 0, got {offset}/{length}")
    fragments: list[tuple[PageId, int, int]] = []
    position = offset
    end = offset + length
    while position < end:
        index = position // page_size
        in_page = position - index * page_size
        take = min(page_size - in_page, end - position)
        fragments.append((PageId(file_id, index), in_page, take))
        position += take
    return fragments


_time_source: Callable[[], float] = _time.time


def now_wall() -> float:
    """Seconds from the module time source (wall clock unless overridden).

    Used to stamp :class:`PageInfo` instances constructed without an
    explicit ``created_at``; simulations pass explicit virtual timestamps
    instead, or install their clock via :func:`set_time_source` for
    deterministic TTL/access stamps in code that cannot thread one through.
    """
    return _time_source()


def set_time_source(source: Callable[[], float]) -> None:
    """Replace the timestamp source (e.g. ``sim_clock.now``).

    Pair with :func:`reset_time_source` -- usually in a ``try/finally`` or
    test fixture -- so an override never leaks across tests.
    """
    global _time_source
    _time_source = source


def reset_time_source() -> None:
    """Restore the default wall-clock time source."""
    global _time_source
    _time_source = _time.time


@contextlib.contextmanager
def installed_time_source(source: Callable[[], float]) -> Iterator[None]:
    """Scoped :func:`set_time_source`: install, run, restore.

    Simulation entry points (benchmark harnesses, the chaos soak, the
    trace replayer) wrap their scenario in this so *every* ``PageInfo``
    stamp -- including ones constructed without an explicit ``created_at``
    deep inside a substrate -- reads virtual time.  The previous source is
    restored even on error, so an override never leaks across scenarios::

        with installed_time_source(clock.now):
            run_scenario()
    """
    global _time_source
    previous = _time_source
    _time_source = source
    try:
        yield
    finally:
        _time_source = previous
