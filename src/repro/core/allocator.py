"""Directory allocators (Section 4.1 "allocator").

The allocator assigns each new page to one of the cache directories,
"considering factors like file identification, hash algorithms, directory
capacity, and page affinity."  Three strategies are provided:

- :class:`AffinityAllocator` -- hash of the file ID, so all pages of a file
  land in the same directory (page affinity; the production default),
  overflowing to the emptiest directory when the preferred one is full.
- :class:`MaxFreeAllocator` -- always the directory with the most free
  space (balances usage, destroys affinity).
- :class:`RoundRobinAllocator` -- rotates through directories.
"""

from __future__ import annotations

import zlib
from typing import Protocol

from repro.core.config import CacheConfig
from repro.core.metastore import PageMetaStore


class Allocator(Protocol):
    """Chooses a directory index for a new page of ``size`` bytes.

    Returns the directory index, or ``None`` when no directory could hold
    the page even after hypothetical eviction (page larger than every
    directory).
    """

    def allocate(self, file_id: str, size: int) -> int | None:
        ...


class _BaseAllocator:
    def __init__(self, config: CacheConfig, metastore: PageMetaStore) -> None:
        self._config = config
        self._metastore = metastore

    def _free_bytes(self, directory: int) -> int:
        capacity = self._config.directories[directory].capacity_bytes
        return capacity - self._metastore.bytes_in_dir(directory)

    def _fits_somewhere(self, size: int) -> bool:
        return any(d.capacity_bytes >= size for d in self._config.directories)

    def _emptiest(self) -> int:
        return max(
            range(len(self._config.directories)),
            key=lambda i: self._free_bytes(i),
        )


class AffinityAllocator(_BaseAllocator):
    """Hash the file ID onto a directory; overflow to the emptiest one.

    Keeping a file's pages together makes file-level delete touch one device
    and keeps the directory layout of Figure 4 compact.
    """

    def allocate(self, file_id: str, size: int) -> int | None:
        if not self._fits_somewhere(size):
            return None
        preferred = zlib.crc32(file_id.encode("utf-8")) % len(self._config.directories)
        if self._config.directories[preferred].capacity_bytes >= size:
            return preferred
        return self._emptiest()


class MaxFreeAllocator(_BaseAllocator):
    """Always pick the directory with the most free space."""

    def allocate(self, file_id: str, size: int) -> int | None:
        if not self._fits_somewhere(size):
            return None
        candidate = self._emptiest()
        if self._config.directories[candidate].capacity_bytes < size:
            return None
        return candidate


class RoundRobinAllocator(_BaseAllocator):
    """Rotate through directories, skipping ones too small for the page."""

    def __init__(self, config: CacheConfig, metastore: PageMetaStore) -> None:
        super().__init__(config, metastore)
        self._cursor = 0

    def allocate(self, file_id: str, size: int) -> int | None:
        total = len(self._config.directories)
        for step in range(total):
            index = (self._cursor + step) % total
            if self._config.directories[index].capacity_bytes >= size:
                self._cursor = (index + 1) % total
                return index
        return None


_ALLOCATORS = {
    "affinity": AffinityAllocator,
    "max_free": MaxFreeAllocator,
    "round_robin": RoundRobinAllocator,
}


def make_allocator(config: CacheConfig, metastore: PageMetaStore) -> Allocator:
    """Instantiate the allocator named by ``config.allocator``."""
    try:
        cls = _ALLOCATORS[config.allocator]
    except KeyError:
        raise ValueError(
            f"unknown allocator {config.allocator!r}; "
            f"choose from {sorted(_ALLOCATORS)}"
        ) from None
    return cls(config, metastore)
