"""Cache recovery: rebuild manager state after a process restart.

Section 4.3 designed the on-disk layout for exactly this: "Top-level
folders represent persistent global information that can be used in cache
recovery", and "page information is self-contained in page names and
parent folders".  Payload recovery therefore needs only a directory walk
(:meth:`~repro.core.pagestore.local.LocalFilePageStore.recover`).

What the layout alone cannot restore is *logical* metadata -- which scope
(schema/table/partition) each file belongs to, and any TTLs.  The
:class:`ScopeJournal` persists that as an append-only log next to the
page store (one line per file: scope + optional TTL), mirroring how the
production cache keeps shared file information as folders.

:func:`recover_cache` ties the two together and returns a warm
:class:`~repro.core.cache_manager.LocalCacheManager`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.cache_manager import LocalCacheManager
from repro.core.config import CacheConfig
from repro.core.page import PageInfo
from repro.core.pagestore.local import LocalFilePageStore
from repro.core.scope import CacheScope

JOURNAL_NAME = "scope_journal.jsonl"


class ScopeJournal:
    """Append-only ``file_id -> (scope, ttl)`` journal, one JSON per line.

    Appends are idempotent per (file_id, scope, ttl) state; replay keeps
    the *last* record for each file, so scope changes and TTL updates work
    by appending.  A missing or partially written trailing line is
    tolerated (torn write on crash).
    """

    def __init__(self, root: str | Path) -> None:
        self.path = Path(root) / JOURNAL_NAME
        self._last_written: dict[str, tuple[str, float | None]] = {}

    def record(self, file_id: str, scope: CacheScope,
               ttl: float | None = None) -> None:
        """Log a file's scope (and optional TTL); skips duplicate states."""
        state = (str(scope), ttl)
        if self._last_written.get(file_id) == state:
            return
        self._last_written[file_id] = state
        entry = {"file_id": file_id, "scope": str(scope)}
        if ttl is not None:
            entry["ttl"] = ttl
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")

    def replay(self) -> dict[str, tuple[CacheScope, float | None]]:
        """Load the journal: last record per file wins."""
        state: dict[str, tuple[CacheScope, float | None]] = {}
        if not self.path.exists():
            return state
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    scope = CacheScope.parse(entry["scope"])
                except (ValueError, KeyError):
                    continue  # torn trailing write; skip
                state[entry["file_id"]] = (scope, entry.get("ttl"))
        return state

    def compact(self) -> int:
        """Rewrite the journal with one record per file; returns records
        kept.

        Crash-safe: the compacted log is written to a sibling temp file,
        fsynced, and atomically swapped in with :func:`os.replace` -- a
        crash mid-compaction leaves either the old journal or the new one,
        never a truncated hybrid.
        """
        state = self.replay()
        lines = []
        for file_id, (scope, ttl) in sorted(state.items()):
            entry = {"file_id": file_id, "scope": str(scope)}
            if ttl is not None:
                entry["ttl"] = ttl
            lines.append(json.dumps(entry, separators=(",", ":")))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_suffix(".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._last_written = {
            f: (str(s), t) for f, (s, t) in state.items()
        }
        return len(state)


class JournaledCacheManager(LocalCacheManager):
    """A cache manager that journals file scopes for recovery."""

    def __init__(self, *args, journal: ScopeJournal, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.journal = journal

    def put_page(self, page_id, data, *, scope=None, ttl=None,
                 pre_admitted=False) -> bool:
        admitted = super().put_page(
            page_id, data, scope=scope, ttl=ttl, pre_admitted=pre_admitted
        )
        if admitted:
            info = self.metastore.get(page_id)
            if info is not None:
                self.journal.record(page_id.file_id, info.scope, info.ttl)
        return admitted


def recover_cache(
    config: CacheConfig,
    roots: list[str | Path],
    **manager_kwargs,
) -> JournaledCacheManager:
    """Build a cache manager with state recovered from disk.

    Walks each root's page layout to rediscover payloads, replays the
    scope journal to re-attribute logical metadata, and registers every
    recovered page with the metastore and eviction policies.  Pages of
    files with a recorded TTL are *dropped* during recovery: their original
    admission time is not persisted, and the TTL feature exists for data
    privacy (Section 4.1), where over-retention is the failure that
    matters -- so when in doubt, evict.
    """
    if len(roots) != len(config.directories):
        raise ValueError(
            f"{len(roots)} roots for {len(config.directories)} directories"
        )
    store = LocalFilePageStore(roots, page_size=config.page_size)
    journal = ScopeJournal(roots[0])
    manager = JournaledCacheManager(
        config, page_store=store, journal=journal, **manager_kwargs
    )
    scopes = journal.replay()
    now = manager.clock.now()
    for directory in range(len(roots)):
        for page_id, size in store.recover(directory):
            scope, ttl = scopes.get(
                page_id.file_id, (CacheScope.global_scope(), None)
            )
            if ttl is not None:
                store.delete(page_id, directory)
                continue
            info = PageInfo(
                page_id=page_id, size=size, scope=scope,
                directory=directory, created_at=now,
            )
            if manager.metastore.add(info):
                manager._policies[directory].on_put(page_id)
    return manager
