"""Hierarchical cache scopes (Section 4.4).

Presto organizes data in a partition -> table -> schema hierarchy; the cache
mirrors it as a tree of nested scopes rooted at the global scope:

    global
    global.sales                      (schema)
    global.sales.orders               (table)
    global.sales.orders.ds=2024-01-01 (partition)

Pages are tagged with the finest scope of the file they belong to.  The
quota manager walks a page's scope chain from the finest level up to the
global scope (Section 5.2), and bulk delete ("drop this outdated
partition") enumerates a scope subtree without any directory listing.
"""

from __future__ import annotations

from dataclasses import dataclass

GLOBAL_SCOPE_NAME = "global"
_SEPARATOR = "."


@dataclass(frozen=True, slots=True)
class CacheScope:
    """An immutable path in the scope tree.

    ``components`` always starts with ``"global"``; depth 1 is the global
    scope, depth 2 a schema, depth 3 a table, depth 4 a partition.  Deeper
    nesting is allowed for custom tenant hierarchies (Section 5.2 "custom
    tenants").
    """

    components: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("scope must have at least the global component")
        if self.components[0] != GLOBAL_SCOPE_NAME:
            raise ValueError(
                f"scope must be rooted at {GLOBAL_SCOPE_NAME!r}, got {self.components}"
            )
        for part in self.components:
            if not part or _SEPARATOR in part:
                raise ValueError(f"invalid scope component {part!r}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def global_scope(cls) -> "CacheScope":
        """The root scope covering the entire cache."""
        return cls((GLOBAL_SCOPE_NAME,))

    @classmethod
    def parse(cls, dotted: str) -> "CacheScope":
        """Parse ``"global.schema.table.partition"`` notation.

        A path not rooted at ``global`` is re-rooted for convenience:
        ``parse("sales.orders")`` == ``parse("global.sales.orders")``.
        """
        parts = tuple(p for p in dotted.split(_SEPARATOR) if p)
        if not parts:
            return cls.global_scope()
        if parts[0] != GLOBAL_SCOPE_NAME:
            parts = (GLOBAL_SCOPE_NAME, *parts)
        return cls(parts)

    @classmethod
    def for_table(cls, schema: str, table: str) -> "CacheScope":
        return cls((GLOBAL_SCOPE_NAME, schema, table))

    @classmethod
    def for_partition(cls, schema: str, table: str, partition: str) -> "CacheScope":
        return cls((GLOBAL_SCOPE_NAME, schema, table, partition))

    # -- navigation --------------------------------------------------------

    @property
    def depth(self) -> int:
        """1 for global, 2 for schema, 3 for table, 4 for partition."""
        return len(self.components)

    @property
    def name(self) -> str:
        """The final (finest) component."""
        return self.components[-1]

    @property
    def is_global(self) -> bool:
        return len(self.components) == 1

    def parent(self) -> "CacheScope | None":
        """The enclosing scope, or ``None`` for the global scope."""
        if self.is_global:
            return None
        return CacheScope(self.components[:-1])

    def child(self, name: str) -> "CacheScope":
        """A direct sub-scope."""
        return CacheScope((*self.components, name))

    def ancestors(self) -> list["CacheScope"]:
        """This scope and every enclosing scope, finest first.

        This is exactly the chain the quota check walks (Section 5.2):
        partition -> table -> schema -> global.
        """
        chain: list[CacheScope] = []
        current: CacheScope | None = self
        while current is not None:
            chain.append(current)
            current = current.parent()
        return chain

    def contains(self, other: "CacheScope") -> bool:
        """True if ``other`` equals this scope or lies inside it."""
        return other.components[: len(self.components)] == self.components

    def __str__(self) -> str:
        return _SEPARATOR.join(self.components)
