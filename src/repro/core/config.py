"""Cache configuration.

All the knobs the paper discusses live here with the production defaults it
reports: 1 MB pages (Section 4.3 / Section 7), SSD-file page store, LRU
eviction, a 10-second local-read timeout with remote fallback (Section 8),
and an optional TTL sweep for privacy-driven expiry (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

DEFAULT_PAGE_SIZE = 1 * MIB
"""Production default after tuning down from the initial 64 MB (Section 7)."""

LEGACY_PAGE_SIZE = 64 * MIB
"""The initial default, matching the HDFS block size (Section 4.3)."""


@dataclass(slots=True)
class CacheDirectory:
    """One cache directory with its own capacity (Section 4.1 "page store").

    In production each directory typically maps to one SSD mount point.
    """

    path: str
    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")


@dataclass(slots=True)
class CacheConfig:
    """Configuration for :class:`~repro.core.cache_manager.LocalCacheManager`.

    Attributes:
        page_size: bytes per cache page.
        directories: cache directories; total capacity is their sum.
        eviction_policy: one of ``lru``, ``fifo``, ``random``, ``lfu``,
            ``clock`` (Section 4.1 lists FIFO, random, LRU; LFU and Clock
            are the pluggable-policy extension point exercised).
        allocator: ``affinity`` (hash of file ID), ``max_free``, or
            ``round_robin``.
        read_timeout: seconds before a local page read falls back to the
            remote source (Section 8 "file read hanging"; production 10 s).
        default_ttl: optional TTL applied to every admitted page.
        ttl_check_interval: period of the background expiry sweep.
        lock_stripes: number of lock stripes for fine-grained page locking
            (Section 4.3).
        eviction_batch: how many candidate pages an eviction pass reclaims
            at once before re-checking free space.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    directories: list[CacheDirectory] = field(
        default_factory=lambda: [CacheDirectory("/cache/dir0", 2 * GIB)]
    )
    eviction_policy: str = "lru"
    allocator: str = "affinity"
    read_timeout: float = 10.0
    default_ttl: float | None = None
    ttl_check_interval: float = 60.0
    lock_stripes: int = 64
    eviction_batch: int = 8

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if not self.directories:
            raise ValueError("at least one cache directory is required")
        if self.read_timeout <= 0:
            raise ValueError(f"read_timeout must be positive, got {self.read_timeout}")
        if self.lock_stripes <= 0:
            raise ValueError(f"lock_stripes must be positive, got {self.lock_stripes}")
        if self.eviction_batch <= 0:
            raise ValueError(f"eviction_batch must be positive, got {self.eviction_batch}")
        seen: set[str] = set()
        for directory in self.directories:
            if directory.path in seen:
                raise ValueError(f"duplicate cache directory {directory.path!r}")
            seen.add(directory.path)

    @property
    def capacity_bytes(self) -> int:
        """Total configured cache capacity across all directories."""
        return sum(d.capacity_bytes for d in self.directories)

    @classmethod
    def small(cls, capacity_bytes: int, *, page_size: int = 64 * KIB) -> "CacheConfig":
        """A compact single-directory config convenient in tests."""
        return cls(
            page_size=page_size,
            directories=[CacheDirectory("/cache/dir0", capacity_bytes)],
        )
