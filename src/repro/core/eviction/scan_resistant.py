"""Scan-resistant eviction policies: 2Q and Segmented LRU.

The paper exposes the evictor as "an interface for the integration of
alternative policies".  Plain LRU has a known weakness in OLAP: one large
sequential table scan flushes the whole cache.  These two classic policies
resist that:

- **2Q** (Johnson & Shasha): new pages enter a probationary FIFO (``A1in``)
  sized as a fraction of the cache; only pages re-referenced after leaving
  it (tracked by a ghost list, ``A1out``) are promoted into the main LRU
  (``Am``).  A one-pass scan dies in the probation queue without touching
  the hot set.
- **SLRU**: two LRU segments -- probationary and protected.  A hit in
  probation promotes to protected; protected overflow demotes back to the
  probationary segment's MRU end.  Victims come from the probationary tail.

Both implement the standard :class:`~repro.core.eviction.base.EvictionPolicy`
protocol and are registered with the factory under ``"2q"`` and ``"slru"``.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.page import PageId


class TwoQPolicy:
    """The 2Q eviction policy (simplified full version).

    Args:
        in_fraction: target share of resident pages kept in the
            probationary ``A1in`` queue.
        ghost_factor: size of the ghost list relative to resident pages.
    """

    def __init__(self, in_fraction: float = 0.25, ghost_factor: float = 0.5) -> None:
        if not 0 < in_fraction < 1:
            raise ValueError(f"in_fraction must be in (0, 1), got {in_fraction}")
        if ghost_factor <= 0:
            raise ValueError(f"ghost_factor must be positive, got {ghost_factor}")
        self.in_fraction = in_fraction
        self.ghost_factor = ghost_factor
        self._a1in: OrderedDict[PageId, None] = OrderedDict()   # probation FIFO
        self._am: OrderedDict[PageId, None] = OrderedDict()     # main LRU
        self._a1out: OrderedDict[PageId, None] = OrderedDict()  # ghosts

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def _ghost_capacity(self) -> int:
        return max(int(len(self) * self.ghost_factor), 4)

    def _remember_ghost(self, page_id: PageId) -> None:
        self._a1out[page_id] = None
        self._a1out.move_to_end(page_id)
        while len(self._a1out) > self._ghost_capacity():
            self._a1out.popitem(last=False)

    def on_put(self, page_id: PageId) -> None:
        if page_id in self._a1in or page_id in self._am:
            self.on_access(page_id)
            return
        if page_id in self._a1out:
            # re-referenced after probation: straight into the hot set
            del self._a1out[page_id]
            self._am[page_id] = None
            return
        self._a1in[page_id] = None

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._am:
            self._am.move_to_end(page_id)
        # hits inside A1in do not promote (2Q's defining rule: correlated
        # references within the probation window don't count)

    def on_delete(self, page_id: PageId) -> None:
        if page_id in self._a1in:
            del self._a1in[page_id]
            # leaving probation: remember it so a re-reference can promote
            self._remember_ghost(page_id)
            return
        self._am.pop(page_id, None)

    def victim(self) -> PageId | None:
        total = len(self)
        if total == 0:
            return None
        in_target = max(int(total * self.in_fraction), 1)
        if self._a1in and (len(self._a1in) >= in_target or not self._am):
            return next(iter(self._a1in))
        if self._am:
            return next(iter(self._am))
        return next(iter(self._a1in))


class SlruPolicy:
    """Segmented LRU with probationary and protected segments.

    Args:
        protected_fraction: target share of resident pages in the
            protected segment.
    """

    def __init__(self, protected_fraction: float = 0.8) -> None:
        if not 0 < protected_fraction < 1:
            raise ValueError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}"
            )
        self.protected_fraction = protected_fraction
        self._probation: OrderedDict[PageId, None] = OrderedDict()
        self._protected: OrderedDict[PageId, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def on_put(self, page_id: PageId) -> None:
        if page_id in self._probation or page_id in self._protected:
            self.on_access(page_id)
            return
        self._probation[page_id] = None

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._protected:
            self._protected.move_to_end(page_id)
            return
        if page_id in self._probation:
            del self._probation[page_id]
            self._protected[page_id] = None
            self._rebalance()

    def _rebalance(self) -> None:
        cap = max(int(len(self) * self.protected_fraction), 1)
        while len(self._protected) > cap:
            demoted, __ = self._protected.popitem(last=False)
            self._probation[demoted] = None  # re-enter at probation MRU

    def on_delete(self, page_id: PageId) -> None:
        if page_id in self._probation:
            del self._probation[page_id]
        else:
            self._protected.pop(page_id, None)

    def victim(self) -> PageId | None:
        if self._probation:
            return next(iter(self._probation))
        if self._protected:
            return next(iter(self._protected))
        return None
