"""Cache eviction policies (Section 4.1 "evictor").

The paper names FIFO, random, and LRU, "with an interface for the
integration of alternative policies"; LFU and Clock are provided through
that same interface.  Time-based (TTL) expiry is handled separately by the
cache manager's periodic sweep, since it is trigger-based rather than
capacity-based.
"""

from repro.core.eviction.base import EvictionPolicy, make_eviction_policy
from repro.core.eviction.policies import (
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
)
from repro.core.eviction.scan_resistant import SlruPolicy, TwoQPolicy

__all__ = [
    "EvictionPolicy",
    "make_eviction_policy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "LfuPolicy",
    "ClockPolicy",
    "TwoQPolicy",
    "SlruPolicy",
]
