"""Concrete eviction policies: LRU, FIFO, Random, LFU, Clock.

All policies are O(1) (amortized) per operation.  ``OrderedDict`` provides
the recency/insertion orderings; LFU keeps frequency buckets; Clock keeps a
circular scan position over an insertion-ordered dict.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.page import PageId
from repro.ports.rng import RngStream


class LruPolicy:
    """Least Recently Used -- the production default.

    The OLAP workloads in the paper have strong temporal locality (hot files
    are re-read within minutes), which is exactly the regime where LRU
    approaches optimal.
    """

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def on_put(self, page_id: PageId) -> None:
        self._order[page_id] = None
        self._order.move_to_end(page_id)

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._order:
            self._order.move_to_end(page_id)

    def on_delete(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victim(self) -> PageId | None:
        if not self._order:
            return None
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy:
    """First In First Out: evict in admission order, ignoring hits."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def on_put(self, page_id: PageId) -> None:
        if page_id not in self._order:
            self._order[page_id] = None

    def on_access(self, page_id: PageId) -> None:
        pass  # FIFO ignores recency

    def on_delete(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victim(self) -> PageId | None:
        if not self._order:
            return None
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class RandomPolicy:
    """Evict a uniformly random resident page.

    Swap-remove over a dense list keeps every operation O(1).
    """

    def __init__(self, rng: RngStream | None = None) -> None:
        self._rng = rng if rng is not None else RngStream(0, "eviction/random")
        self._pages: list[PageId] = []
        self._position: dict[PageId, int] = {}

    def on_put(self, page_id: PageId) -> None:
        if page_id in self._position:
            return
        self._position[page_id] = len(self._pages)
        self._pages.append(page_id)

    def on_access(self, page_id: PageId) -> None:
        pass  # random ignores recency

    def on_delete(self, page_id: PageId) -> None:
        index = self._position.pop(page_id, None)
        if index is None:
            return
        last = self._pages.pop()
        if last != page_id:
            self._pages[index] = last
            self._position[last] = index

    def victim(self) -> PageId | None:
        if not self._pages:
            return None
        index = int(self._rng.rng.integers(0, len(self._pages)))
        return self._pages[index]

    def __len__(self) -> int:
        return len(self._pages)


class LfuPolicy:
    """Least Frequently Used with LRU tie-breaking inside each frequency.

    Classic O(1) LFU: frequency buckets of ordered dicts plus a min-frequency
    cursor.
    """

    def __init__(self) -> None:
        self._freq: dict[PageId, int] = {}
        self._buckets: dict[int, OrderedDict[PageId, None]] = {}
        self._min_freq = 0

    def _bucket(self, frequency: int) -> OrderedDict[PageId, None]:
        return self._buckets.setdefault(frequency, OrderedDict())

    def on_put(self, page_id: PageId) -> None:
        if page_id in self._freq:
            self.on_access(page_id)
            return
        self._freq[page_id] = 1
        self._bucket(1)[page_id] = None
        self._min_freq = 1

    def on_access(self, page_id: PageId) -> None:
        frequency = self._freq.get(page_id)
        if frequency is None:
            return
        bucket = self._buckets[frequency]
        del bucket[page_id]
        if not bucket:
            del self._buckets[frequency]
            if self._min_freq == frequency:
                self._min_freq = frequency + 1
        self._freq[page_id] = frequency + 1
        self._bucket(frequency + 1)[page_id] = None

    def on_delete(self, page_id: PageId) -> None:
        frequency = self._freq.pop(page_id, None)
        if frequency is None:
            return
        bucket = self._buckets[frequency]
        del bucket[page_id]
        if not bucket:
            del self._buckets[frequency]
            if self._min_freq == frequency and self._freq:
                self._min_freq = min(self._buckets)

    def victim(self) -> PageId | None:
        if not self._freq:
            return None
        while self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)
        return next(iter(self._buckets[self._min_freq]))

    def __len__(self) -> int:
        return len(self._freq)


class ClockPolicy:
    """Second-chance (CLOCK): approximate LRU with one reference bit.

    The hand sweeps insertion order; referenced pages get their bit cleared
    and are skipped once.
    """

    def __init__(self) -> None:
        self._referenced: OrderedDict[PageId, bool] = OrderedDict()

    def on_put(self, page_id: PageId) -> None:
        self._referenced[page_id] = False

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._referenced:
            self._referenced[page_id] = True

    def on_delete(self, page_id: PageId) -> None:
        self._referenced.pop(page_id, None)

    def victim(self) -> PageId | None:
        if not self._referenced:
            return None
        # Sweep: clear reference bits until an unreferenced page surfaces.
        # Each pass moves swept pages to the back, so the loop terminates in
        # at most 2 * len passes.
        for __ in range(2 * len(self._referenced)):
            page_id, bit = next(iter(self._referenced.items()))
            if not bit:
                return page_id
            self._referenced[page_id] = False
            self._referenced.move_to_end(page_id)
        return next(iter(self._referenced))  # pragma: no cover - safety net

    def __len__(self) -> int:
        return len(self._referenced)
