"""Eviction policy interface and factory."""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.page import PageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ports.rng import RngStream


@runtime_checkable
class EvictionPolicy(Protocol):
    """Tracks page residency and access recency; nominates victims.

    The cache manager calls :meth:`on_put` when a page is admitted,
    :meth:`on_access` on every hit, :meth:`on_delete` when a page leaves the
    cache for *any* reason (explicit delete, TTL expiry, quota eviction),
    and :meth:`victim` when space must be reclaimed.

    Invariant (property-tested): the set of pages the policy tracks always
    equals the set of resident pages, and ``victim()`` only ever returns a
    tracked page.
    """

    def on_put(self, page_id: PageId) -> None:
        ...

    def on_access(self, page_id: PageId) -> None:
        ...

    def on_delete(self, page_id: PageId) -> None:
        ...

    def victim(self) -> PageId | None:
        """Nominate the next page to evict (``None`` if nothing is tracked).

        The nomination does not itself remove the page; the cache manager
        performs the delete and then calls :meth:`on_delete`.
        """
        ...

    def __len__(self) -> int:
        ...


def make_eviction_policy(name: str, rng: "RngStream | None" = None) -> EvictionPolicy:
    """Instantiate a policy by config name (``lru``/``fifo``/``random``/``lfu``/``clock``)."""
    from repro.core.eviction.policies import (
        ClockPolicy,
        FifoPolicy,
        LfuPolicy,
        LruPolicy,
        RandomPolicy,
    )
    from repro.core.eviction.scan_resistant import SlruPolicy, TwoQPolicy

    table = {
        "lru": LruPolicy,
        "fifo": FifoPolicy,
        "lfu": LfuPolicy,
        "clock": ClockPolicy,
        "2q": TwoQPolicy,
        "slru": SlruPolicy,
    }
    if name == "random":
        return RandomPolicy(rng)
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; choose from "
            f"{sorted([*table, 'random'])}"
        ) from None
