"""Named, seeded random streams.

Every stochastic component (Zipf samplers, trace generators, random
eviction, failure injection) draws from its own :class:`RngStream`, derived
from a root seed plus the component's name.  Two benefits:

- experiments are reproducible bit-for-bit from a single seed, and
- adding draws to one component does not perturb any other component's
  stream (no shared-generator coupling).
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStream:
    """A numpy ``Generator`` derived from ``(root_seed, name)``.

    >>> a = RngStream(42, "zipf")
    >>> b = RngStream(42, "zipf")
    >>> float(a.rng.random()) == float(b.rng.random())
    True
    >>> c = RngStream(42, "eviction")
    >>> float(RngStream(42, "zipf").rng.random()) == float(c.rng.random())
    False
    """

    def __init__(self, root_seed: int, name: str) -> None:
        self.root_seed = int(root_seed)
        self.name = name
        derived = zlib.crc32(name.encode("utf-8"))
        self.rng = np.random.default_rng([self.root_seed, derived])

    def child(self, name: str) -> "RngStream":
        """Derive a sub-stream, e.g. ``traces`` -> ``traces/host1``."""
        return RngStream(self.root_seed, f"{self.name}/{name}")

    def __repr__(self) -> str:
        return f"RngStream(root_seed={self.root_seed}, name={self.name!r})"
