"""Concurrency ports: how the cache core hands off background work.

The core never spawns threads or kernel processes itself.  Periodic
maintenance (TTL sweeps) is registered against a :class:`SchedulerPort`
and blocking work can be pushed through an :class:`ExecutorPort`; each
transport supplies its own implementation:

- the virtual-time kernel satisfies :class:`SchedulerPort` directly via
  ``EventLoop.schedule_periodic`` / ``Kernel.call_periodic``;
- the asyncio service wraps ``loop.call_later`` rearming and a thread
  pool;
- unit tests use :class:`InlineExecutor` and drive sweeps by hand.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class SchedulerPort(Protocol):
    """Registers recurring background callbacks (e.g. TTL sweeps)."""

    def schedule_periodic(self, interval: float, fn: Callable[[], Any]) -> Any:
        """Arrange for ``fn()`` to run every ``interval`` seconds."""
        ...


@runtime_checkable
class ExecutorPort(Protocol):
    """Runs a callable somewhere appropriate for the transport."""

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)``; the return contract is transport-defined."""
        ...


class InlineExecutor:
    """Executes submitted work synchronously on the calling thread.

    The default when no transport is attached: the core stays usable as a
    plain library, and deterministic tests see effects immediately.

    >>> InlineExecutor().submit(lambda a, b: a + b, 2, 3)
    5
    """

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Any:
        return fn(*args, **kwargs)

    def __repr__(self) -> str:
        return "InlineExecutor()"
