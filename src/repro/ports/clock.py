"""Virtual clocks.

Everything in the reproduction that needs a notion of time -- cache TTLs,
rate-limiter windows, device queue occupancy, per-minute metrics buckets --
reads time from a :class:`Clock` so experiments run in virtual time,
deterministically, and orders of magnitude faster than wall-clock.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...


class SimClock:
    """A manually advanced virtual clock.

    Time only moves when a component calls :meth:`advance` or
    :meth:`advance_to`; this makes simulations deterministic and lets an
    "hour" of production traffic run in milliseconds.

    >>> clock = SimClock()
    >>> clock.now()
    0.0
    >>> clock.advance(60.0)
    60.0
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class WallClock:
    """A real-time clock; useful when embedding the cache in a live process.

    The local-file page store and the quickstart example run fine on real
    time; the benchmark harness always uses :class:`SimClock`.
    """

    def now(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:
        return "WallClock()"
