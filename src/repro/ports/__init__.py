"""Hexagonal ports: the leaf vocabulary both transports plug into.

The cache core (:mod:`repro.core`) is transport-agnostic: it never decides
*how* time passes, *where* randomness comes from, or *who* drives its
background work.  Those arrive through the small interfaces in this
package -- the "ports" of a ports-and-adapters architecture (DESIGN.md
§14).  Two adapters exist:

- the virtual-time kernel (:mod:`repro.sim`, adapted through
  :mod:`repro.service.sim_transport`), which injects a
  :class:`~repro.ports.clock.SimClock` and kernel timers; and
- the real asyncio cache service (:mod:`repro.service.server`), which
  injects a :class:`~repro.ports.clock.WallClock` and event-loop tasks.

``repro.ports`` is a strict leaf (enforced by the ``ports-leaf``
architecture contract): it imports nothing from ``repro``, so every layer
-- including ``repro.sim`` itself -- may depend on it without coupling.
"""

from repro.ports.clock import Clock, SimClock, WallClock
from repro.ports.concurrency import ExecutorPort, InlineExecutor, SchedulerPort
from repro.ports.rng import RngStream

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "RngStream",
    "SchedulerPort",
    "ExecutorPort",
    "InlineExecutor",
]
