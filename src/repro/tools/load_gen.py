"""``repro-load-gen``: closed-loop socket load against the cache service.

The load generator is the third leg of the "one core, two transports"
refactor (DESIGN.md §14): it drives the *real* asyncio server over TCP
with the same Zipfian workload machinery the simulator uses
(:mod:`repro.workload.zipf`), then replays the *identical* request
sequence through the virtual-time transport
(:class:`~repro.service.sim_transport.SimTransport`) and reports both
latency shapes side by side -- the sim-vs-real calibration move.

Output is ``BENCH_service.json`` split the same way as ``BENCH_kernel``:

- ``work``   -- byte-stable-where-deterministic: the workload spec, a
  hash of the generated key sequence, and the virtual-time results
  (deterministic given the same arguments);
- ``host``   -- measured wall-clock results (hit ratio, rps, p50/p99),
  honest and machine-dependent, never gated byte-for-byte.

Exit status is non-zero unless the run completed, the measured hit ratio
is positive, and (in ``--self-host`` mode) the server drained cleanly --
the CI ``service-smoke`` job relies on this.

Usage::

    repro-load-gen --self-host --requests 1000 --connections 16
    repro-load-gen --host 127.0.0.1 --port 9736 --requests 10000
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.ports.rng import RngStream
from repro.service.client import AsyncCacheClient
from repro.workload.zipf import ZipfSampler


@dataclass(slots=True)
class LoadGenConfig:
    """Everything that defines one load-gen run."""

    requests: int = 1000
    connections: int = 8
    files: int = 64
    file_mb: int = 8
    read_kb: int = 64
    page_kb: int = 64
    capacity_mb: int = 256
    policy: str = "lru"
    zipf_s: float = 1.1
    seed: int = 42
    base_latency_ms: float = 2.0
    bandwidth_mb_s: float = 400.0
    puts: int = 8
    compare_sim: bool = True


def file_name(index: int) -> str:
    return f"bench/file-{index:05d}"


def build_request_sequence(
    config: LoadGenConfig,
) -> tuple[list[tuple[str, int, int]], str]:
    """Deterministic (file_id, offset, length) sequence + its hash.

    Zipfian file popularity, page-aligned uniform offsets; both real and
    virtual transports replay exactly this list, so any divergence in the
    report is transport behaviour, not workload noise.
    """
    rng = RngStream(config.seed, "loadgen")
    sampler = ZipfSampler(config.files, config.zipf_s, rng.child("files"))
    ranks = sampler.sample(config.requests)
    page = config.page_kb * 1024
    length = config.read_kb * 1024
    file_bytes = config.file_mb * 1024 * 1024
    pages_per_file = max(1, (file_bytes - length) // page + 1)
    offsets = rng.child("offsets").rng.integers(
        0, pages_per_file, size=config.requests
    )
    requests = [
        (file_name(int(rank)), int(offset) * page, length)
        for rank, offset in zip(ranks, offsets)
    ]
    digest = hashlib.blake2b(digest_size=16)
    digest.update(ranks.astype("<u8").tobytes())
    digest.update(offsets.astype("<u8").tobytes())
    return requests, digest.hexdigest()


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q / 100.0 * (len(sorted_values) - 1)
    return sorted_values[int(round(position))]


def _latency_summary(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    count = len(ordered)
    return {
        "p50_ms": round(_percentile(ordered, 50.0) * 1000, 6),
        "p99_ms": round(_percentile(ordered, 99.0) * 1000, 6),
        "mean_ms": round(
            (sum(ordered) / count if count else 0.0) * 1000, 6
        ),
    }


# ------------------------------------------------------------- virtual leg


def run_sim_comparison(
    config: LoadGenConfig, requests: list[tuple[str, int, int]],
) -> dict[str, Any]:
    """Replay the sequence under the kernel; deterministic results.

    The virtual rig mirrors the server rig (same cache config, same
    synthetic remote model) plus an SSD device with queueing, so
    connection concurrency contends for the page store exactly as socket
    concurrency contends for the real one.
    """
    # deferred: the sim substrate loads only when the comparison runs
    from repro.core.config import CacheConfig
    from repro.ports.clock import SimClock
    from repro.service.sim_transport import SimTransport, build_sim_engine
    from repro.storage.device import DeviceProfile, StorageDevice
    from repro.storage.remote import SyntheticDataSource

    clock = SimClock()
    source = SyntheticDataSource(
        base_latency=config.base_latency_ms / 1000.0,
        bandwidth=config.bandwidth_mb_s * 1024 * 1024,
    )
    for index in range(config.files):
        source.add_file(file_name(index), config.file_mb * 1024 * 1024)
    cache_config = CacheConfig.small(
        config.capacity_mb * 1024 * 1024, page_size=config.page_kb * 1024
    )
    cache_config.eviction_policy = config.policy
    engine = build_sim_engine(
        cache_config,
        source=source,
        clock=clock,
        device=StorageDevice(
            DeviceProfile.ssd_local(), clock, service_bucket="cache_ssd"
        ),
        rng=RngStream(config.seed, "loadgen/sim-cache"),
    )
    transport = SimTransport(engine)
    outcome = transport.run_closed_loop(requests, clients=config.connections)
    summary = _latency_summary(outcome.latencies)
    virtual_rps = (
        outcome.requests / outcome.virtual_seconds
        if outcome.virtual_seconds > 0 else 0.0
    )
    return {
        "requests": outcome.requests,
        "hit_ratio": round(outcome.hit_ratio, 6),
        "virtual_seconds": round(outcome.virtual_seconds, 6),
        "virtual_rps": round(virtual_rps, 3),
        **summary,
    }


# ---------------------------------------------------------------- real leg


async def run_socket_load(
    config: LoadGenConfig,
    requests: list[tuple[str, int, int]],
    host: str,
    port: int,
) -> dict[str, Any]:
    """Closed-loop load over real sockets; measured results."""
    clients = [
        await AsyncCacheClient.connect(host, port)
        for _ in range(config.connections)
    ]
    latencies: list[float] = []
    errors = 0

    async def worker(client: AsyncCacheClient, shard) -> None:
        nonlocal errors
        for file_id, offset, length in shard:
            started = time.perf_counter()
            try:
                await client.get(file_id, offset, length)
            except Exception:
                errors += 1
            else:
                latencies.append(time.perf_counter() - started)

    shards = [
        [req for pos, req in enumerate(requests) if pos % config.connections == index]
        for index in range(config.connections)
    ]
    wall_start = time.perf_counter()
    await asyncio.gather(
        *(worker(client, shard) for client, shard in zip(clients, shards))
    )
    wall = time.perf_counter() - wall_start

    # exercise the full verb set: PUT fresh pages, EVICT them, HEALTH
    page = config.page_kb * 1024
    puts_admitted = 0
    evicted = 0
    for index in range(config.puts):
        payload = bytes([index % 256]) * page
        if await clients[index % len(clients)].put(
            f"putbench/file-{index:03d}", 0, payload
        ):
            puts_admitted += 1
        evicted += await clients[index % len(clients)].evict(
            f"putbench/file-{index:03d}"
        )
    health = await clients[0].health()
    stats = await clients[0].stats()
    for client in clients:
        await client.close()

    counters = stats.get("counters", {})
    hits = counters.get("get_hits", 0)
    misses = counters.get("get_misses", 0)
    return {
        "requests": len(latencies),
        "errors": errors,
        "hit_ratio": round(stats.get("hit_ratio", 0.0), 6),
        "page_hits": hits,
        "page_misses": misses,
        "wall_seconds": round(wall, 6),
        "rps": round(len(latencies) / wall if wall > 0 else 0.0, 3),
        "puts_admitted": puts_admitted,
        "evicted_pages": evicted,
        "health_status": health.get("status"),
        **_latency_summary(latencies),
    }


# -------------------------------------------------------------------- rig


async def _run_self_hosted(config: LoadGenConfig) -> tuple[dict, dict]:
    """Boot a server in-process, load it over localhost, drain it."""
    from repro.service.server import CacheServer, build_engine

    engine = build_engine(
        capacity_mb=config.capacity_mb,
        page_kb=config.page_kb,
        policy=config.policy,
        files=config.files,
        file_mb=config.file_mb,
        base_latency_ms=config.base_latency_ms,
        bandwidth_mb_s=config.bandwidth_mb_s,
    )
    server = CacheServer(engine, host="127.0.0.1", port=0)
    await server.start()
    try:
        requests, _ = build_request_sequence(config)
        measured = await run_socket_load(
            config, requests, server.host, server.port
        )
    finally:
        drain = await server.drain()
    measured["drain"] = drain
    return measured, drain


def run(config: LoadGenConfig, *, host: str | None, port: int | None) -> dict:
    """One full run; returns the BENCH_service payload."""
    requests, sequence_hash = build_request_sequence(config)
    work: dict[str, Any] = {
        "workload": {
            "requests": config.requests,
            "connections": config.connections,
            "files": config.files,
            "file_mb": config.file_mb,
            "read_kb": config.read_kb,
            "page_kb": config.page_kb,
            "capacity_mb": config.capacity_mb,
            "policy": config.policy,
            "zipf_s": config.zipf_s,
            "seed": config.seed,
            "sequence_hash": sequence_hash,
        },
    }
    if config.compare_sim:
        work["sim"] = run_sim_comparison(config, requests)

    if host is not None and port is not None:
        measured = asyncio.run(run_socket_load(config, requests, host, port))
    else:
        measured, _drain = asyncio.run(_run_self_hosted(config))

    payload: dict[str, Any] = {"work": work, "host": measured}
    if config.compare_sim:
        sim = work["sim"]
        payload["comparison"] = {
            "sim_p50_ms": sim["p50_ms"],
            "real_p50_ms": measured["p50_ms"],
            "sim_p99_ms": sim["p99_ms"],
            "real_p99_ms": measured["p99_ms"],
            "sim_hit_ratio": sim["hit_ratio"],
            "real_hit_ratio": measured["hit_ratio"],
            "note": (
                "sim models device + remote service time in virtual "
                "seconds; real adds TCP, framing, and scheduler overhead"
            ),
        }
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-load-gen",
        description="Closed-loop Zipfian load against the cache service, "
        "with a sim-vs-real latency comparison.",
    )
    parser.add_argument("--host", default=None,
                        help="connect to an already-running server")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--self-host", action="store_true",
                        help="boot a server in-process on a free port")
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--files", type=int, default=64)
    parser.add_argument("--file-mb", type=int, default=8)
    parser.add_argument("--read-kb", type=int, default=64)
    parser.add_argument("--page-kb", type=int, default=64)
    parser.add_argument("--capacity-mb", type=int, default=256)
    parser.add_argument("--policy", default="lru")
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--base-latency-ms", type=float, default=2.0)
    parser.add_argument("--bandwidth-mb-s", type=float, default=400.0)
    parser.add_argument("--no-compare-sim", action="store_true")
    parser.add_argument("--output", default="bench_reports/BENCH_service.json")
    args = parser.parse_args(argv)

    if not args.self_host and (args.host is None or args.port is None):
        parser.error("pass --self-host, or both --host and --port")

    config = LoadGenConfig(
        requests=args.requests,
        connections=args.connections,
        files=args.files,
        file_mb=args.file_mb,
        read_kb=args.read_kb,
        page_kb=args.page_kb,
        capacity_mb=args.capacity_mb,
        policy=args.policy,
        zipf_s=args.zipf_s,
        seed=args.seed,
        base_latency_ms=args.base_latency_ms,
        bandwidth_mb_s=args.bandwidth_mb_s,
        compare_sim=not args.no_compare_sim,
    )
    payload = run(
        config,
        host=None if args.self_host else args.host,
        port=None if args.self_host else args.port,
    )

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    measured = payload["host"]
    print(json.dumps(payload.get("comparison", measured), indent=2, sort_keys=True))
    print(f"wrote {output}")

    ok = (
        measured["errors"] == 0
        and measured["hit_ratio"] > 0
        and measured.get("drain", {}).get("clean", True)
    )
    if not ok:
        print("load-gen FAILED: "
              f"errors={measured['errors']} hit_ratio={measured['hit_ratio']} "
              f"drain={measured.get('drain')}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
