"""``repro-cachesim``: offline what-if replay of a trace through the cache.

Operators tune page size, capacity, eviction policy, and admission
thresholds before touching production (Section 7's tuning guidance); this
tool replays a trace CSV (see :mod:`repro.tools.trace_stats` for the
format) through one or more cache configurations and reports per-config
hit ratios, remote bytes, and eviction counts.

Usage::

    repro-cachesim trace.csv --capacity-mb 64 --page-kb 1024 \
        --policy lru --policy lfu --admission-threshold 3
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import Table, format_bytes
from repro.core.admission.rate_limiter import BucketTimeRateLimit
from repro.core.config import CacheConfig
from repro.core.page import installed_time_source
from repro.service.sim_transport import build_sim_cache
from repro.sim.clock import SimClock
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource
from repro.tools.trace_stats import read_trace

KIB = 1024
MIB = 1024 * KIB


def replay(
    trace_path: str,
    *,
    capacity_bytes: int,
    page_size: int,
    policy: str,
    admission_threshold: int | None = None,
    block_size: int = 128 * MIB,
) -> dict:
    """Replay one configuration; returns summary metrics.

    The replay is a simulation entry point, so the virtual clock is
    installed as the page time source for its whole extent (mandatory
    SimClock injection -- determinism invariant DET001).
    """
    trace = read_trace(trace_path)
    clock = SimClock()
    with installed_time_source(clock.now):
        return _replay(
            trace, clock,
            capacity_bytes=capacity_bytes, page_size=page_size,
            policy=policy, admission_threshold=admission_threshold,
            block_size=block_size,
        )


def _replay(
    trace, clock, *, capacity_bytes, page_size, policy,
    admission_threshold, block_size,
) -> dict:
    source = NullDataSource(base_latency=0.004, bandwidth=400e6)
    known: set[int] = set()
    config = CacheConfig.small(capacity_bytes, page_size=page_size)
    config.eviction_policy = policy
    admission = (
        BucketTimeRateLimit(threshold=admission_threshold)
        if admission_threshold is not None
        else None
    )
    cache = build_sim_cache(
        config, clock=clock, admission=admission,
        rng=RngStream(1, f"cachesim/{policy}"),
    )
    requested = 0
    for access in trace:
        clock.advance_to(access.timestamp)
        if access.block_id not in known:
            source.add_file(f"blk_{access.block_id}", block_size)
            known.add(access.block_id)
        if not access.is_read:
            # a write invalidates the block's cached pages
            cache.delete_file(f"blk_{access.block_id}")
            continue
        length = min(access.nbytes, block_size)
        cache.read(f"blk_{access.block_id}", 0, length, source)
        requested += length
    counters = cache.metrics.counters()
    return {
        "policy": policy,
        "capacity": capacity_bytes,
        "page_size": page_size,
        "admission_threshold": admission_threshold,
        "hit_ratio": cache.metrics.hit_ratio,
        "bytes_from_cache": counters["bytes_read_cache"],
        "bytes_from_remote": counters["bytes_read_remote"],
        "evictions": counters["evictions"],
        "requested_bytes": requested,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cachesim",
        description="Replay a trace through cache configurations.",
    )
    parser.add_argument("trace", help="trace CSV path")
    parser.add_argument("--capacity-mb", type=int, default=64)
    parser.add_argument("--page-kb", type=int, default=1024)
    parser.add_argument(
        "--policy", action="append", dest="policies",
        choices=["lru", "fifo", "random", "lfu", "clock", "2q", "slru"],
        help="repeatable; default: lru",
    )
    parser.add_argument("--admission-threshold", type=int, default=None,
                        help="BucketTimeRateLimit threshold (default: admit all)")
    parser.add_argument("--block-size-mb", type=int, default=128)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    policies = args.policies or ["lru"]
    table = Table(
        ["policy", "capacity", "page", "hit ratio", "cache bytes",
         "remote bytes", "evictions"],
        title=f"Cache replay of {args.trace}",
    )
    for policy in policies:
        summary = replay(
            args.trace,
            capacity_bytes=args.capacity_mb * MIB,
            page_size=args.page_kb * KIB,
            policy=policy,
            admission_threshold=args.admission_threshold,
            block_size=args.block_size_mb * MIB,
        )
        table.add_row(
            [
                policy,
                format_bytes(summary["capacity"]),
                format_bytes(summary["page_size"]),
                f"{summary['hit_ratio'] * 100:.1f}%",
                format_bytes(summary["bytes_from_cache"]),
                format_bytes(summary["bytes_from_remote"]),
                summary["evictions"],
            ]
        )
    print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
