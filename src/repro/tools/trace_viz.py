"""``repro-trace-viz``: convert, summarize, and demo virtual-time traces.

Three subcommands over the span JSONL format written by
:func:`repro.obs.spans_to_jsonl`:

- ``convert`` -- span JSONL to Chrome/Perfetto ``trace_event`` JSON; open
  the output in https://ui.perfetto.dev or ``chrome://tracing``.
- ``report`` -- per-trace latency attribution (bucket table, coverage,
  slowest traces) plus the critical path of the slowest trace.
- ``demo`` -- run a small self-contained traced scenario (a distributed
  cache tier serving a Zipf workload off an object store) and write
  ``spans.jsonl``, ``trace.json``, and ``attribution.txt`` into a
  directory -- the quickest way to see the whole pipeline end to end.

Usage::

    python -m repro.tools.trace_viz demo --out trace_artifacts
    python -m repro.tools.trace_viz convert spans.jsonl --out trace.json
    python -m repro.tools.trace_viz report spans.jsonl --top 5
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.config import MIB
from repro.core.page import installed_time_source
from repro.obs import (
    SimTracer,
    SpanBuffer,
    attribute_buffer,
    chrome_trace_json,
    critical_path,
    format_attribution,
    format_critical_path,
    installed_tracer,
    jsonl_to_dicts,
    spans_from_dicts,
    spans_to_jsonl,
)
from repro.obs.span import Span
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream


def load_spans(path: str | Path) -> list[Span]:
    """Read a span JSONL file back into detached spans."""
    text = Path(path).read_text(encoding="utf-8")
    return spans_from_dicts(jsonl_to_dicts(text))


def render_report(spans: list[Span], *, top: int = 3) -> str:
    """Attribution table + critical path of the slowest trace."""
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    buffer = SpanBuffer(capacity=max(len(spans), 1))
    for span in spans:
        buffer.record(span)
    reports = attribute_buffer(buffer)
    lines = [format_attribution(reports, top=top)]
    if reports:
        slowest = sorted(reports, key=lambda r: (-r.wall, r.trace_id))[0]
        lines += [
            "",
            f"critical path of slowest trace ({slowest.trace_id}):",
            format_critical_path(critical_path(by_trace[slowest.trace_id])),
        ]
    return "\n".join(lines)


def run_demo_scenario(
    seed: int = 7, n_requests: int = 64
) -> tuple[SimTracer, dict]:
    """A miniature traced tier: 3 cache workers over an object store."""
    from repro.distributed.client import DistributedCacheClient
    from repro.distributed.worker import CacheWorker
    from repro.resilience import ResilientDataSource, RetryPolicy
    from repro.storage.object_store import ObjectStore
    from repro.storage.remote import ObjectStoreDataSource
    from repro.workload.zipf import ZipfSampler

    n_files = 16
    file_size = 1 * MIB
    read_size = 128 * 1024

    clock = SimClock()
    root = RngStream(seed, "trace-viz-demo")
    tracer = SimTracer(clock, root.child("tracer"), buffer=SpanBuffer())
    with installed_time_source(clock.now):
        with installed_tracer(tracer):
            store = ObjectStore(clock=clock)
            for i in range(n_files):
                store.put_object(f"lake/f{i:03d}", bytes([i % 251]) * file_size)
            remote = ResilientDataSource(
                ObjectStoreDataSource(store),
                policy=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.2),
                rng=root.child("retry"),
            )
            workers = [
                CacheWorker(
                    f"cw-{i}",
                    remote,
                    cache_capacity_bytes=8 * MIB,
                    page_size=read_size,
                    clock=clock,
                )
                for i in range(3)
            ]
            client = DistributedCacheClient(workers, remote, clock=clock)
            loop = EventLoop(clock)
            ranks = ZipfSampler(n_files, 1.1, root.child("zipf")).sample(
                n_requests
            )
            offsets = root.child("offsets").rng.integers(
                0, file_size // read_size, size=n_requests
            )
            latency_sum = 0.0
            for i in range(n_requests):
                loop.run_until((i + 1) * 0.5)
                result = client.read(
                    f"lake/f{int(ranks[i]):03d}",
                    int(offsets[i]) * read_size,
                    read_size,
                )
                latency_sum += result.latency
    summary = {
        "requests": n_requests,
        "latency_sum": round(latency_sum, 6),
        "hit_ratio": round(client.tier_hit_ratio(), 6),
        "spans": len(tracer.buffer),
    }
    return tracer, summary


def _cmd_convert(args: argparse.Namespace) -> int:
    spans = load_spans(args.spans)
    text = chrome_trace_json(spans, indent=args.indent)
    Path(args.out).write_text(text + "\n", encoding="utf-8")
    traces = len({s.trace_id for s in spans})
    print(f"wrote {args.out}: {len(spans)} spans across {traces} trace(s)")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_report(load_spans(args.spans), top=args.top))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    tracer, summary = run_demo_scenario(args.seed, args.requests)
    spans = tracer.buffer.spans()

    jsonl_path = out / "spans.jsonl"
    jsonl_path.write_text(spans_to_jsonl(spans) + "\n", encoding="utf-8")
    chrome_path = out / "trace.json"
    chrome_path.write_text(
        chrome_trace_json(spans, indent=2) + "\n", encoding="utf-8"
    )
    report = render_report(spans, top=args.top)
    report_path = out / "attribution.txt"
    report_path.write_text(report + "\n", encoding="utf-8")

    print(
        f"demo: {summary['requests']} requests, "
        f"hit ratio {summary['hit_ratio']:.3f}, "
        f"{summary['spans']} spans, "
        f"total virtual latency {summary['latency_sum']:.3f}s"
    )
    print(f"wrote {jsonl_path}, {chrome_path}, {report_path}")
    print()
    print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace-viz",
        description="Convert, summarize, and demo virtual-time traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser(
        "convert", help="span JSONL -> Chrome/Perfetto trace JSON"
    )
    convert.add_argument("spans", help="span JSONL path")
    convert.add_argument("--out", required=True, help="output JSON path")
    convert.add_argument("--indent", type=int, default=None)
    convert.set_defaults(func=_cmd_convert)

    report = sub.add_parser(
        "report", help="attribution + critical-path summary of a span log"
    )
    report.add_argument("spans", help="span JSONL path")
    report.add_argument("--top", type=int, default=3,
                        help="slowest traces to list")
    report.set_defaults(func=_cmd_report)

    demo = sub.add_parser(
        "demo", help="run a small traced scenario and export everything"
    )
    demo.add_argument("--out", required=True, help="output directory")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--requests", type=int, default=64)
    demo.add_argument("--top", type=int, default=3)
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
