"""``repro-trace``: generate and analyze block-access traces.

Trace files are CSV with a header: ``timestamp,block_id,nbytes,is_read``
(``is_read`` as 0/1).  The ``analyze`` subcommand prints the Table-1-style
row for the trace (reads, writes, read/write ratio, top-K concentration)
plus the fitted Zipf exponent of the read popularity distribution; the
``generate`` subcommand writes a synthetic trace from a
:class:`~repro.workload.traces.HostTraceSpec`.

Usage::

    repro-trace generate --out trace.csv --reads 100000 --writes 300 \
        --blocks 20000 --top-k 1000 --top-k-share 0.95
    repro-trace analyze trace.csv --top-k 1000
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from repro.analysis.report import Table
from repro.sim.rng import RngStream
from repro.workload.traces import BlockAccess, HostTraceSpec, TraceGenerator, stats_of
from repro.workload.zipf import fit_zipf_exponent

CSV_HEADER = ["timestamp", "block_id", "nbytes", "is_read"]


def write_trace(path: str | Path, trace: list[BlockAccess]) -> None:
    """Persist a trace as CSV."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_HEADER)
        for access in trace:
            writer.writerow(
                [f"{access.timestamp:.6f}", access.block_id, access.nbytes,
                 int(access.is_read)]
            )


def read_trace(path: str | Path) -> list[BlockAccess]:
    """Load a CSV trace; validates the header."""
    trace: list[BlockAccess] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != CSV_HEADER:
            raise ValueError(
                f"bad trace header {header!r}; expected {CSV_HEADER}"
            )
        for row in reader:
            trace.append(
                BlockAccess(
                    timestamp=float(row[0]),
                    block_id=int(row[1]),
                    nbytes=int(row[2]),
                    is_read=bool(int(row[3])),
                )
            )
    return trace


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = HostTraceSpec(
        name=args.name,
        total_reads=args.reads,
        total_writes=args.writes,
        n_blocks=args.blocks,
        top_k=args.top_k,
        top_k_share=args.top_k_share,
        duration_seconds=args.duration,
    )
    generator = TraceGenerator(spec, RngStream(args.seed, f"trace/{args.name}"))
    trace = generator.generate()
    write_trace(args.out, trace)
    print(f"wrote {len(trace)} accesses to {args.out} "
          f"(zipf exponent {generator.exponent:.3f})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    stats = stats_of(trace)
    table = Table(["metric", "value"], title=f"Trace statistics: {args.trace}")
    table.add_row(["total reads", stats.total_reads])
    table.add_row(["total writes", stats.total_writes])
    ratio = stats.read_write_ratio
    table.add_row(["reads / writes",
                   "inf" if ratio == float("inf") else f"{ratio:.1f}"])
    table.add_row([f"top-{args.top_k} read share",
                   f"{stats.top_k_share(args.top_k) * 100:.1f}%"])
    counts = np.array(list(stats.read_counts.values()))
    if counts.size >= 2:
        fit = fit_zipf_exponent(counts, min_count=args.min_count)
        table.add_row(["zipf exponent (fit)", f"{fit.s:.3f}"])
        table.add_row(["fit R^2", f"{fit.r_squared:.4f}"])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate and analyze block-access traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic trace")
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.add_argument("--name", default="host", help="host label")
    generate.add_argument("--reads", type=int, default=100_000)
    generate.add_argument("--writes", type=int, default=300)
    generate.add_argument("--blocks", type=int, default=20_000)
    generate.add_argument("--top-k", type=int, default=1_000)
    generate.add_argument("--top-k-share", type=float, default=0.95)
    generate.add_argument("--duration", type=float, default=72_000.0,
                          help="trace duration in seconds")
    generate.add_argument("--seed", type=int, default=2024)
    generate.set_defaults(func=_cmd_generate)

    analyze = sub.add_parser("analyze", help="summarize a trace CSV")
    analyze.add_argument("trace", help="trace CSV path")
    analyze.add_argument("--top-k", type=int, default=1_000)
    analyze.add_argument("--min-count", type=int, default=2,
                         help="ignore blocks with fewer reads in the fit")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
