"""Command-line tools.

- ``repro-trace`` (:mod:`repro.tools.trace_stats`) -- generate synthetic
  block-access traces and analyze trace files into Table-1-style
  statistics plus a Zipf-exponent fit.
- ``repro-cachesim`` (:mod:`repro.tools.cache_sim`) -- replay a trace file
  through the local cache under different configurations (eviction policy,
  capacity, page size, admission) and report hit ratios -- the offline
  what-if analysis operators run before changing production settings.
"""

__all__ = ["trace_stats", "cache_sim"]
