"""``repro-report``: collate benchmark reports into one document.

After ``pytest benchmarks/ --benchmark-only``, each experiment leaves its
table in ``bench_reports/<name>.txt``; this tool stitches them into a
single markdown document in the paper's experiment order -- the artifact
to diff against EXPERIMENTS.md after a change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Paper order: tables/figures first, then production results, then ablations.
SECTION_ORDER = [
    ("table1_hdfs_traffic", "Table 1 — HDFS production traffic"),
    ("fig2_zipf_popularity", "Figure 2 — Zipf popularity"),
    ("fig9_tpcds_q81_99", "Figure 9 — TPC-DS Q81–Q99"),
    ("fig10_scan_time_percentiles", "Figure 10 — scan time percentiles"),
    ("fig13_cache_read_rates", "Figure 13 — DataNode read rates"),
    ("fig14_blocked_processes", "Figure 14 — blocked processes"),
    ("fig14_kernel_smoke", "Figure 14 — event kernel vs analytic"),
    ("fig15_tpcds_full", "Figure 15 — TPC-DS Q1–Q49"),
    ("fig16_tpcds_full", "Figure 16 — TPC-DS Q50–Q99"),
    ("fig15_16_summary", "TPC-DS Q1–Q99 summary"),
    ("meta_production_latency", "Meta production (§6.1.4)"),
    ("admission_effectiveness", "Admission effectiveness (§5.1)"),
    ("ablation_page_size", "Ablation — page size (§7)"),
    ("ablation_soft_affinity", "Ablation — soft affinity (§6.1.2)"),
    ("ablation_replicas", "Ablation — replica count (§7)"),
    ("ablation_eviction", "Ablation — eviction policy (§4.1)"),
    ("ablation_admission", "Ablation — admission policy (§5.1)"),
    ("ablation_metadata_cache", "Ablation — metadata cache (§6.1.1/§7)"),
    ("chaos_soak", "Chaos soak — resilience under fault injection"),
    ("churn_soak", "Churn soak — membership, admission, recovery SLOs"),
    ("cluster_membership", "Cluster membership — node health"),
    ("trace_attribution", "Trace attribution — per-query latency breakdown"),
    ("kernel_perf", "Kernel perf — scheduler throughput ladder + profile"),
    ("telemetry", "Telemetry — continuous virtual-time metrics"),
]


def format_membership(
    health_snapshot: dict[str, dict],
    membership_states: dict[str, str] | None = None,
) -> str:
    """Render ``NodeHealthTracker.snapshot()`` (plus optional membership
    states) as the cluster-membership report section.

    One row per node: membership state, breaker state, availability, and
    the success/failure tallies the breaker decided from.  Benchmarks call
    this and pass the text to ``emit_report("cluster_membership", ...)``.
    """
    states = membership_states if membership_states is not None else {}
    nodes = sorted(set(health_snapshot) | set(states))
    lines = [
        f"{'node':<16} {'member':<10} {'breaker':<10} {'avail':<6} "
        f"{'ok':>8} {'fail':>6}  last failure",
    ]
    for node in nodes:
        entry = health_snapshot.get(node, {})
        last = entry.get("last_failure_at")
        lines.append(
            f"{node:<16} "
            f"{states.get(node, '-'):<10} "
            f"{entry.get('state', '-'):<10} "
            f"{('yes' if entry.get('available', True) else 'no'):<6} "
            f"{entry.get('successes', 0):>8} "
            f"{entry.get('failures', 0):>6}  "
            f"{f'{last:.1f}s' if last is not None else '-'}"
        )
    return "\n".join(lines)


def validate_bench_json(report_dir: Path) -> list[str]:
    """Sanity-check every ``BENCH_*.json`` machine artifact in the dir.

    These files are the perf-trajectory record CI diffs between PRs; a
    truncated or hand-mangled one must fail the report step, not silently
    ride along.  Returns a list of problems (empty = all valid).
    """
    problems = []
    for path in sorted(report_dir.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path.name}: {exc}")
            continue
        if not isinstance(doc, dict) or not doc:
            problems.append(f"{path.name}: expected a non-empty JSON object")
    return problems


def collate(report_dir: Path) -> str:
    """Build the markdown document from whatever reports exist."""
    sections: list[str] = ["# Benchmark report", ""]
    seen: set[str] = set()
    for stem, title in SECTION_ORDER:
        path = report_dir / f"{stem}.txt"
        if not path.exists():
            continue
        seen.add(stem)
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text(encoding="utf-8").rstrip())
        sections.append("```")
        sections.append("")
    # anything new that is not yet in the canonical order
    for path in sorted(report_dir.glob("*.txt")):
        if path.stem in seen:
            continue
        sections.append(f"## {path.stem}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text(encoding="utf-8").rstrip())
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Collate bench_reports/*.txt into one markdown file.",
    )
    parser.add_argument(
        "--reports", default="bench_reports",
        help="directory holding per-benchmark .txt reports",
    )
    parser.add_argument(
        "--out", default=None,
        help="output markdown path (default: stdout)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.  Every error path returns a non-zero exit code
    (and prints to stderr) so CI pipelines that chain this tool fail
    loudly instead of publishing an empty report."""
    args = build_parser().parse_args(argv)
    report_dir = Path(args.reports)
    if not report_dir.is_dir():
        print(f"error: {report_dir} is not a directory "
              f"(run `pytest benchmarks/ --benchmark-only` first)",
              file=sys.stderr)
        return 1
    problems = validate_bench_json(report_dir)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    document = collate(report_dir)
    if args.out:
        try:
            Path(args.out).write_text(document, encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        print(document)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
