"""``repro-perf-viz``: render and check kernel performance artifacts.

Consumes the scheduler profiler's outputs (DESIGN.md §12) and the
``BENCH_kernel.json`` perf ladder:

- ``folded``      profile JSON -> folded stacks (``flamegraph.pl`` input)
- ``speedscope``  folded stacks -> a speedscope.app JSON document
- ``report``      profile JSON -> human-readable wait-state/counter text
- ``check-bench`` compare a fresh ``BENCH_kernel.json`` against the
  committed seed: the deterministic ``work`` section (and ``scale.work``,
  when present) must match byte for byte; host-measured rates have to be
  within a (wide) ratio band, catching order-of-magnitude regressions
  without flaking on machine noise, and ``events_per_sec`` additionally
  has a one-sided floor (``--events-floor``, default 0.7x of the seed)
  guarding the scheduler's throughput wins against silent regression.

Every error path (missing file, malformed JSON, wrong schema) exits
non-zero with a message on stderr, so CI fails loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any


def folded_from_doc(doc: dict, *, host: bool = False) -> str:
    """Folded stacks from a profile JSON document (``KernelProfile.to_json``).

    Virtual mode folds the wait-state details (virtual microseconds);
    ``host=True`` folds per-ptype host-CPU microseconds instead.
    """
    lines = []
    if host:
        per_ptype = doc.get("host", {}).get("per_ptype", {})
        for ptype in sorted(per_ptype):
            us = int(round(per_ptype[ptype].get("cpu_seconds", 0.0) * 1e6))
            if us > 0:
                lines.append(f"{ptype} {us}")
    else:
        details = doc.get("virtual", {}).get("wait_details", {})
        for frames in sorted(details):
            us = int(round(details[frames] * 1e6))
            if us > 0:
                lines.append(f"{frames} {us}")
    return "\n".join(lines)


def parse_folded(text: str) -> list[tuple[list[str], int]]:
    """Parse folded-stack lines into ``([frame, ...], value)`` entries."""
    entries = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"line {lineno}: not a folded stack: {raw!r}")
        try:
            weight = int(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad weight {value!r}") from exc
        if weight < 0:
            raise ValueError(f"line {lineno}: negative weight {weight}")
        entries.append((stack.split(";"), weight))
    return entries


def speedscope_doc(entries: list[tuple[list[str], int]],
                   name: str = "kernel-profile") -> dict:
    """Build a speedscope ``sampled`` profile from folded entries.

    Weights are virtual microseconds; open the result at
    https://www.speedscope.app (or any compatible viewer).
    """
    frame_index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[int] = []
    for frames, weight in entries:
        if weight <= 0:
            continue
        stack = []
        for frame in frames:
            if frame not in frame_index:
                frame_index[frame] = len(frame_index)
            stack.append(frame_index[frame])
        samples.append(stack)
        weights.append(weight)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": f} for f in frame_index]},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
        "name": name,
    }


def format_profile(doc: dict) -> str:
    """Human-readable profile: counters, wait states, host CPU if present."""
    virtual = doc.get("virtual")
    if virtual is None:
        raise ValueError("profile document has no 'virtual' section")
    lines = ["== event-loop counters =="]
    for key, value in sorted(virtual.get("counters", {}).items()):
        lines.append(f"{key:<20} {value:>12}")
    lines.append("")
    lines.append("== wait-state attribution (virtual seconds) ==")
    lines.append(
        f"{'process type':<24} {'ready':>10} {'running':>10} "
        f"{'blocked':>10} {'sleeping':>10} {'total':>10}"
    )
    for ptype, states in sorted(virtual.get("wait_states", {}).items()):
        total = sum(states.values())
        lines.append(
            f"{ptype:<24} {states.get('ready', 0.0):>10.3f} "
            f"{states.get('running', 0.0):>10.3f} "
            f"{states.get('blocked', 0.0):>10.3f} "
            f"{states.get('sleeping', 0.0):>10.3f} {total:>10.3f}"
        )
    host = doc.get("host")
    if host:
        lines.append("")
        lines.append("== host CPU per resume (not determinism-checked) ==")
        lines.append(f"{'process type':<24} {'resumes':>10} "
                     f"{'cpu ms':>10} {'us/resume':>10}")
        for ptype, row in sorted(host.get("per_ptype", {}).items()):
            lines.append(
                f"{ptype:<24} {row.get('resumes', 0):>10} "
                f"{1e3 * row.get('cpu_seconds', 0.0):>10.2f} "
                f"{row.get('cpu_us_per_resume', 0.0):>10.2f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# BENCH_kernel.json checking

BENCH_SCHEMA = "bench-kernel/1"


def _numeric_leaves(node: Any, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key in node:
            out.update(_numeric_leaves(node[key], f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            out.update(_numeric_leaves(item, f"{prefix}[{i}]" if prefix else f"[{i}]"))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def _check_host(host_new: dict[str, float], host_old: dict[str, float], *,
                label: str, max_ratio: float, events_floor: float,
                problems: list[str]) -> None:
    """Ratio-band + events/sec-floor checks over one host leaf mapping."""
    if set(host_new) != set(host_old):
        missing = sorted(set(host_old) - set(host_new))
        extra = sorted(set(host_new) - set(host_old))
        problems.append(f"{label} keys differ: missing={missing} extra={extra}")
        return
    for key in sorted(host_old):
        old, new = host_old[key], host_new[key]
        if old <= 0 or new <= 0:
            if old <= 0 and new <= 0:
                continue
            problems.append(f"{label}.{key}: {old} -> {new} (sign change)")
            continue
        ratio = new / old if new > old else old / new
        if ratio > max_ratio:
            problems.append(
                f"{label}.{key}: {old:.4g} -> {new:.4g} "
                f"(ratio {ratio:.1f}x exceeds {max_ratio:g}x band)"
            )
        if (events_floor > 0
                and key.rsplit(".", 1)[-1] == "events_per_sec"
                and new < events_floor * old):
            problems.append(
                f"{label}.{key}: {new:.4g} events/sec is below the "
                f"{events_floor:g}x floor of the committed seed ({old:.4g}) "
                "-- scheduler throughput regression"
            )


def check_bench(candidate: dict, seed: dict, *, max_ratio: float,
                events_floor: float = 0.7) -> list[str]:
    """Compare a fresh bench document against the committed seed.

    Returns a list of problems (empty = pass).  The ``work`` section is
    deterministic by contract and must serialize identically; ``host``
    numbers are machine-dependent and checked for structural equality, a
    worst-case ratio band, and -- for ``events_per_sec`` leaves -- a
    one-sided *floor*: the candidate rate must stay above ``events_floor``
    times the seed rate (default 0.7), so a PR cannot silently shed the
    scheduler's throughput.  Pass ``events_floor=0`` to disable the floor.

    A ``scale`` section (request-count rungs beyond the standard ladder,
    e.g. the 1M constant-memory rung) is checked with the same rules when
    both documents carry one; a candidate may introduce the section, but
    dropping one the seed has is an error.
    """
    problems: list[str] = []
    for doc, label in ((candidate, "candidate"), (seed, "seed")):
        if doc.get("schema") != BENCH_SCHEMA:
            problems.append(
                f"{label}: schema {doc.get('schema')!r} != {BENCH_SCHEMA!r}"
            )
    if problems:
        return problems

    work_new = json.dumps(candidate.get("work"), sort_keys=True)
    work_old = json.dumps(seed.get("work"), sort_keys=True)
    if work_new != work_old:
        problems.append(
            "work section differs from seed (deterministic fields changed; "
            "if intentional, re-commit bench_reports/BENCH_kernel.json)"
        )

    _check_host(
        _numeric_leaves(candidate.get("host", {})),
        _numeric_leaves(seed.get("host", {})),
        label="host", max_ratio=max_ratio, events_floor=events_floor,
        problems=problems,
    )

    scale_new = candidate.get("scale")
    scale_old = seed.get("scale")
    if scale_old is not None and scale_new is None:
        problems.append(
            "scale section missing from candidate (the seed has one)"
        )
    elif scale_new is not None and scale_old is not None:
        if (json.dumps(scale_new.get("work"), sort_keys=True)
                != json.dumps(scale_old.get("work"), sort_keys=True)):
            problems.append(
                "scale.work section differs from seed (deterministic fields "
                "changed; if intentional, re-commit the bench seed)"
            )
        _check_host(
            _numeric_leaves(scale_new.get("host", {})),
            _numeric_leaves(scale_old.get("host", {})),
            label="scale.host", max_ratio=max_ratio,
            events_floor=events_floor, problems=problems,
        )
    return problems


# ---------------------------------------------------------------------------
# CLI


def _load_json(path: str) -> dict:
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: malformed JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return doc


def _write_or_print(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out}")
    else:
        print(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf-viz",
        description="Render/check kernel profiler and perf-ladder artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_folded = sub.add_parser(
        "folded", help="profile JSON -> folded stacks (flamegraph input)")
    p_folded.add_argument("profile", help="profile JSON (KernelProfile.to_json)")
    p_folded.add_argument("--host", action="store_true",
                          help="fold host-CPU per ptype instead of wait states")
    p_folded.add_argument("--out", default=None)

    p_speed = sub.add_parser(
        "speedscope", help="folded stacks -> speedscope.app JSON")
    p_speed.add_argument("folded", help="folded-stack text file")
    p_speed.add_argument("--name", default="kernel-profile")
    p_speed.add_argument("--out", default=None)

    p_report = sub.add_parser(
        "report", help="profile JSON -> human-readable text")
    p_report.add_argument("profile")
    p_report.add_argument("--out", default=None)

    p_check = sub.add_parser(
        "check-bench", help="diff BENCH_kernel.json against the committed seed")
    p_check.add_argument("candidate", help="freshly produced BENCH_kernel.json")
    p_check.add_argument("seed", help="committed seed BENCH_kernel.json")
    p_check.add_argument(
        "--max-ratio", type=float, default=25.0,
        help="allowed worst-case ratio for host-measured numbers "
             "(default 25x: catches order-of-magnitude regressions, "
             "tolerates machine variance)")
    p_check.add_argument(
        "--events-floor", type=float, default=0.7,
        help="fail when an events_per_sec leaf drops below this fraction "
             "of the committed seed (default 0.7; 0 disables).  Lower it "
             "on noisy shared runners rather than disabling it")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "folded":
            doc = _load_json(args.profile)
            text = folded_from_doc(doc, host=args.host)
            if not text:
                raise ValueError(
                    f"{args.profile}: no "
                    f"{'host-CPU' if args.host else 'wait-state'} data to fold"
                )
            _write_or_print(text, args.out)
        elif args.command == "speedscope":
            try:
                folded_text = Path(args.folded).read_text(encoding="utf-8")
            except OSError as exc:
                raise ValueError(f"cannot read {args.folded}: {exc}") from exc
            entries = parse_folded(folded_text)
            if not entries:
                raise ValueError(f"{args.folded}: no folded stacks found")
            doc = speedscope_doc(entries, name=args.name)
            _write_or_print(json.dumps(doc, indent=2, sort_keys=True), args.out)
        elif args.command == "report":
            doc = _load_json(args.profile)
            _write_or_print(format_profile(doc), args.out)
        elif args.command == "check-bench":
            candidate = _load_json(args.candidate)
            seed = _load_json(args.seed)
            problems = check_bench(candidate, seed, max_ratio=args.max_ratio,
                                   events_floor=args.events_floor)
            if problems:
                for problem in problems:
                    print(f"FAIL: {problem}", file=sys.stderr)
                return 1
            print(f"ok: {args.candidate} matches seed "
                  f"(work byte-identical, host within {args.max_ratio:g}x, "
                  f"events/sec floor {args.events_floor:g}x)")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
