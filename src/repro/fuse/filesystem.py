"""A POSIX-like file interface over the local cache.

The real deployment mounts Alluxio through libfuse; training jobs read
dataset files with ordinary ``open``/``read`` calls and the local cache
absorbs the re-reads across epochs.  This module reproduces that surface:
file handles with positions, ``read``/``pread``/``seek``, directory
listing, and stat -- all backed by a
:class:`~repro.core.cache_manager.LocalCacheManager` over a
:class:`~repro.storage.remote.DataSource`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.cache_manager import CacheReadResult, LocalCacheManager
from repro.core.scope import CacheScope
from repro.errors import FileNotFoundInStorageError
from repro.storage.remote import DataSource


@dataclass(frozen=True, slots=True)
class FileStat:
    """Stat result for one file."""

    path: str
    size: int


class FileHandle:
    """An open file with a position; reads go through the cache.

    Handles accumulate the modelled latency of their reads in
    :attr:`total_latency`, which the training simulator uses as virtual
    I/O time.
    """

    def __init__(
        self,
        filesystem: "CachedFileSystem",
        path: str,
        size: int,
    ) -> None:
        self._fs = filesystem
        self.path = path
        self.size = size
        self.position = 0
        self.closed = False
        self.total_latency = 0.0
        self.bytes_read = 0

    def read(self, length: int = -1) -> bytes:
        """Read from the current position (whole remainder when -1)."""
        if length < 0:
            length = self.size - self.position
        data = self.pread(self.position, length)
        self.position += len(data)
        return data

    def pread(self, offset: int, length: int) -> bytes:
        """Positional read; does not move the handle's position."""
        if self.closed:
            raise ValueError(f"I/O operation on closed file {self.path!r}")
        result = self._fs._read(self.path, offset, length)
        self.total_latency += result.latency
        self.bytes_read += len(result.data)
        return result.data

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        if self.closed:
            raise ValueError(f"I/O operation on closed file {self.path!r}")
        if whence == os.SEEK_SET:
            target = offset
        elif whence == os.SEEK_CUR:
            target = self.position + offset
        elif whence == os.SEEK_END:
            target = self.size + offset
        else:
            raise ValueError(f"invalid whence {whence}")
        if target < 0:
            raise ValueError(f"negative seek position {target}")
        self.position = target
        return self.position

    def tell(self) -> int:
        return self.position

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CachedFileSystem:
    """The FUSE-like mount: path namespace + cache-backed reads."""

    def __init__(
        self,
        cache: LocalCacheManager,
        source: DataSource,
        *,
        scope_fn=None,
    ) -> None:
        """``scope_fn(path) -> CacheScope`` optionally tags reads (defaults
        to the global scope)."""
        self.cache = cache
        self.source = source
        self._scope_fn = scope_fn
        self.total_latency = 0.0

    def _scope(self, path: str) -> CacheScope | None:
        return self._scope_fn(path) if self._scope_fn is not None else None

    def _read(self, path: str, offset: int, length: int) -> CacheReadResult:
        result = self.cache.read(
            path, offset, length, self.source, scope=self._scope(path)
        )
        self.total_latency += result.latency
        return result

    # -- POSIX-ish surface ---------------------------------------------------

    def open(self, path: str) -> FileHandle:
        return FileHandle(self, path, self.stat(path).size)

    def stat(self, path: str) -> FileStat:
        return FileStat(path=path, size=self.source.file_length(path))

    def exists(self, path: str) -> bool:
        try:
            self.source.file_length(path)
            return True
        except FileNotFoundInStorageError:
            return False

    def listdir(self, prefix: str) -> list[str]:
        """Paths under ``prefix`` (sources expose their namespace as flat
        ids; this filters by path prefix like an object-store listing)."""
        file_ids = getattr(self.source, "file_ids", None)
        if file_ids is None:
            raise NotImplementedError(
                f"{type(self.source).__name__} does not support listing"
            )
        prefix = prefix.rstrip("/") + "/" if prefix else ""
        return [f for f in file_ids() if f.startswith(prefix)]

    def read_file(self, path: str) -> bytes:
        """Convenience: whole-file read."""
        with self.open(path) as handle:
            return handle.read()
