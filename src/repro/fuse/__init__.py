"""FUSE-style file access over the local cache (Figure 6, compute layer).

"In the realm of machine learning, particularly in training phases,
Filesystem in Userspace (FUSE) utilizes the local cache to help improve
training performance and GPU utilization."

- :mod:`~repro.fuse.filesystem` -- a POSIX-like file API (open / read /
  seek / close, plus listing and stat) whose reads go through a
  :class:`~repro.core.cache_manager.LocalCacheManager`.
- :mod:`~repro.fuse.training` -- an epoch-based training-loop simulator:
  each step fetches a batch of samples through the FUSE layer and then
  "computes" for a fixed virtual time; GPU utilization is compute time
  over wall time, and the cache's effect is the epoch-over-epoch
  utilization climb.
"""

from repro.fuse.filesystem import CachedFileSystem, FileHandle, FileStat
from repro.fuse.training import EpochStats, TrainingLoop, TrainingConfig

__all__ = [
    "CachedFileSystem",
    "FileHandle",
    "FileStat",
    "TrainingLoop",
    "TrainingConfig",
    "EpochStats",
]
