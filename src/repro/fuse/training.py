"""Epoch-based ML-training-loop simulation over the FUSE layer.

The paper's ML use case: training re-reads the same dataset every epoch,
so the first epoch is I/O-bound against remote storage and later epochs
are served from the local SSD cache -- raising GPU utilization.

The model: each training step reads one batch of samples through
:class:`~repro.fuse.filesystem.CachedFileSystem` (virtual I/O time from
the cache/source latency models), then computes for a fixed virtual time.
GPU utilization for an epoch is ``compute_time / (compute_time +
io_stall_time)``, where a step's I/O only stalls the GPU to the extent it
exceeds the compute time of the *previous* step (single-stage prefetch
pipelining, as real data loaders do).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuse.filesystem import CachedFileSystem
from repro.sim.rng import RngStream


@dataclass(frozen=True, slots=True)
class TrainingConfig:
    """Shape of the training job.

    Attributes:
        batch_size: samples per step.
        sample_size: bytes per sample read.
        step_compute_seconds: virtual GPU time per step.
        shuffle: reshuffle sample order each epoch (True matches real
            training; the cache must absorb *random* re-reads, which is
            exactly why page-granular caching matters here).
        prefetch: overlap each step's I/O with the previous step's compute.
    """

    batch_size: int = 32
    sample_size: int = 64 * 1024
    step_compute_seconds: float = 0.05
    shuffle: bool = True
    prefetch: bool = True

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.sample_size <= 0:
            raise ValueError("batch_size and sample_size must be positive")
        if self.step_compute_seconds <= 0:
            raise ValueError("step_compute_seconds must be positive")


@dataclass(slots=True)
class EpochStats:
    """Outcome of one epoch."""

    epoch: int
    steps: int = 0
    io_seconds: float = 0.0
    stall_seconds: float = 0.0
    compute_seconds: float = 0.0
    bytes_read: int = 0
    cache_hit_ratio: float = 0.0

    @property
    def wall_seconds(self) -> float:
        return self.compute_seconds + self.stall_seconds

    @property
    def gpu_utilization(self) -> float:
        wall = self.wall_seconds
        return self.compute_seconds / wall if wall else 0.0


class TrainingLoop:
    """Runs epochs of batched reads through the cached filesystem."""

    def __init__(
        self,
        filesystem: CachedFileSystem,
        dataset_paths: list[str],
        config: TrainingConfig | None = None,
        *,
        rng: RngStream | None = None,
    ) -> None:
        if not dataset_paths:
            raise ValueError("dataset_paths must be non-empty")
        self.filesystem = filesystem
        self.dataset_paths = list(dataset_paths)
        self.config = config if config is not None else TrainingConfig()
        self._rng = rng if rng is not None else RngStream(0, "training")
        self.history: list[EpochStats] = []
        # (path, offset) sample index across the whole dataset
        self._samples: list[tuple[str, int]] = []
        for path in self.dataset_paths:
            size = filesystem.stat(path).size
            for offset in range(0, size - self.config.sample_size + 1,
                                self.config.sample_size):
                self._samples.append((path, offset))
        if not self._samples:
            raise ValueError(
                "dataset files are smaller than one sample; nothing to train on"
            )

    @property
    def samples_per_epoch(self) -> int:
        return len(self._samples)

    def run_epoch(self) -> EpochStats:
        """One pass over the dataset; returns the epoch's stats."""
        config = self.config
        epoch_number = len(self.history) + 1
        stats = EpochStats(epoch=epoch_number)
        order = list(range(len(self._samples)))
        if config.shuffle:
            self._rng.child(f"epoch{epoch_number}").rng.shuffle(order)

        hits_before = self.filesystem.cache.metrics.counter("get_hits").value
        misses_before = self.filesystem.cache.metrics.counter("get_misses").value

        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            io_time = 0.0
            for index in batch:
                path, offset = self._samples[index]
                result = self.filesystem._read(path, offset, config.sample_size)
                io_time += result.latency
                stats.bytes_read += len(result.data)
            stats.steps += 1
            stats.io_seconds += io_time
            stats.compute_seconds += config.step_compute_seconds
            if config.prefetch:
                # pipelined loader: I/O stalls only beyond the previous
                # step's compute window
                stats.stall_seconds += max(
                    io_time - config.step_compute_seconds, 0.0
                )
            else:
                stats.stall_seconds += io_time

        hits = self.filesystem.cache.metrics.counter("get_hits").value - hits_before
        misses = (
            self.filesystem.cache.metrics.counter("get_misses").value
            - misses_before
        )
        total = hits + misses
        stats.cache_hit_ratio = hits / total if total else 0.0
        self.history.append(stats)
        return stats

    def run(self, epochs: int) -> list[EpochStats]:
        return [self.run_epoch() for __ in range(epochs)]
