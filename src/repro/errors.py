"""Exception hierarchy shared across the reproduction.

The paper's failure case studies (Section 8) revolve around three concrete
failure modes observed in production: read hangs on the local SSD, corrupted
page files, and the device filling up before the configured cache capacity is
reached.  Each of those has a dedicated exception type here so that callers
(and tests) can react to the *specific* failure the way the paper describes
-- timeout fallback, early eviction, and early eviction respectively.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CacheError(ReproError):
    """Base class for local-cache errors."""


class PageNotFoundError(CacheError, KeyError):
    """A requested page is not present in the cache."""


class PageCorruptedError(CacheError):
    """A cached page failed its checksum verification (Section 8).

    The cache reacts by deleting the entry (early eviction) and falling back
    to the external data source.
    """


class CacheReadTimeoutError(CacheError, TimeoutError):
    """A local read exceeded the configured timeout (Section 8).

    The paper reports SSD read hangups of up to 10 minutes caused by resource
    contention; a 10-second ``read_file`` timeout with remote fallback proved
    effective, and the cache manager implements exactly that.
    """


class NoSpaceLeftError(CacheError, OSError):
    """The backing device ran out of space before the configured capacity.

    Mirrors the ``No space left on device`` errno the paper catches to
    trigger early eviction (Section 8).
    """


class QuotaExceededError(CacheError):
    """A put would exceed a quota and eviction could not reclaim enough."""


class AdmissionRejectedError(CacheError):
    """The admission controller declined to cache a page."""


class StorageError(ReproError):
    """Base class for simulated remote-storage errors."""


class BlockNotFoundError(StorageError, KeyError):
    """A requested HDFS block does not exist."""


class FileNotFoundInStorageError(StorageError, KeyError):
    """A requested file does not exist in the remote store."""


class StaleReadError(StorageError):
    """A read raced with a concurrent mutation and saw an old generation."""


class RemoteReadError(StorageError):
    """A remote read failed transiently (injected fault, dropped connection,
    storage-side 5xx).  Retryable, unlike :class:`FileNotFoundInStorageError`."""


class RemoteCorruptionError(RemoteReadError):
    """Remote bytes failed checksum verification in transit.

    Modelled as detected at the transport layer, so the reaction is the
    same as any transient remote failure: retry the request.
    """


class DataNodeOfflineError(StorageError, ConnectionError):
    """The DataNode is down (crashed, restarting, or partitioned away)."""


class CircuitOpenError(ReproError):
    """A circuit breaker rejected the call without attempting it."""


class RetriesExhaustedError(ReproError):
    """Every retry attempt against a remote target failed."""


class FormatError(ReproError):
    """A columnar container failed to parse (bad magic, truncated footer)."""


class SchedulerError(ReproError):
    """The split scheduler could not place a split."""
