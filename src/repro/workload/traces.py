"""HDFS block-access trace generation calibrated to Table 1.

The paper's Table 1 reports, for four production DataNodes over ~20 hours:

=================  ======  ======  ======  ======
Host               Host 1  Host 2  Host 3  Host 4
Total reads (M)      13.5    12.8     8.5    14.3
Total writes (K)      3.3     4.7     4.6      45
Reads / writes     4091.0  2723.4  1847.8   317.8
Top-10K share         89%     94%     99%     99%
=================  ======  ======  ======  ======

:class:`HostTraceSpec` carries those calibration targets (with the
published values as presets); :class:`TraceGenerator` produces a
time-ordered stream of block accesses whose aggregate statistics land on
them.  The Zipf exponent per host is solved numerically so that the top-10K
blocks carry the target share of reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.rng import RngStream
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True, slots=True)
class HostTraceSpec:
    """Calibration targets for one host's trace."""

    name: str
    total_reads: int
    total_writes: int
    n_blocks: int
    top_k: int
    top_k_share: float
    duration_seconds: float = 20 * 3600.0
    block_size: int = 128 * 1024 * 1024
    mean_read_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.total_reads <= 0 or self.total_writes < 0:
            raise ValueError("totals must be positive / non-negative")
        if not 0 < self.top_k_share <= 1:
            raise ValueError(f"top_k_share must be in (0, 1], got {self.top_k_share}")
        if self.top_k <= 0 or self.n_blocks <= 0:
            raise ValueError("top_k and n_blocks must be positive")

    @property
    def read_write_ratio(self) -> float:
        if self.total_writes == 0:
            return float("inf")
        return self.total_reads / self.total_writes


# The four hosts of Table 1, scaled down 100x by default so simulations
# stay laptop-sized; ratios and shares are preserved exactly.
def table1_hosts(scale: float = 0.01) -> list[HostTraceSpec]:
    """The paper's four production hosts, optionally scaled in volume."""
    raw = [
        ("host1", 13_500_000, 3_300, 0.89),
        ("host2", 12_800_000, 4_700, 0.94),
        ("host3", 8_500_000, 4_600, 0.99),
        ("host4", 14_300_000, 45_000, 0.99),
    ]
    specs = []
    for name, reads, writes, share in raw:
        specs.append(
            HostTraceSpec(
                name=name,
                total_reads=max(int(reads * scale), 1),
                total_writes=max(int(writes * scale), 1),
                n_blocks=max(int(200_000 * scale), 20_000),
                top_k=max(int(10_000 * scale), 100),
                top_k_share=share,
            )
        )
    return specs


@dataclass(frozen=True, slots=True)
class BlockAccess:
    """One trace record."""

    timestamp: float
    block_id: int
    nbytes: int
    is_read: bool


@dataclass(slots=True)
class TraceStats:
    """Aggregate statistics of a generated (or replayed) trace, in the
    shape of Table 1's rows."""

    total_reads: int = 0
    total_writes: int = 0
    read_counts: dict[int, int] = field(default_factory=dict)

    def record(self, access: BlockAccess) -> None:
        if access.is_read:
            self.total_reads += 1
            self.read_counts[access.block_id] = (
                self.read_counts.get(access.block_id, 0) + 1
            )
        else:
            self.total_writes += 1

    @property
    def read_write_ratio(self) -> float:
        if self.total_writes == 0:
            return float("inf")
        return self.total_reads / self.total_writes

    def top_k_share(self, k: int) -> float:
        """Fraction of read traffic hitting the k most-read blocks."""
        if self.total_reads == 0:
            return 0.0
        counts = sorted(self.read_counts.values(), reverse=True)
        return sum(counts[:k]) / self.total_reads


def solve_zipf_exponent_for_share(
    n_blocks: int, top_k: int, target_share: float, *, tolerance: float = 1e-4
) -> float:
    """Find s such that the top-k mass of Zipf(s) over n_blocks equals the
    target share, by bisection on the monotone share(s) curve."""
    if not 0 < target_share < 1:
        raise ValueError(f"target_share must be in (0, 1), got {target_share}")

    def share(s: float) -> float:
        weights = np.arange(1, n_blocks + 1, dtype=np.float64) ** (-s)
        return float(weights[:top_k].sum() / weights.sum())

    low, high = 0.0, 5.0
    if share(high) < target_share:
        return high
    for __ in range(100):
        mid = (low + high) / 2
        if share(mid) < target_share:
            low = mid
        else:
            high = mid
        if high - low < tolerance:
            break
    return (low + high) / 2


class TraceGenerator:
    """Generate a time-ordered block access trace for one host spec."""

    def __init__(self, spec: HostTraceSpec, rng: RngStream) -> None:
        self.spec = spec
        self._rng = rng
        self.exponent = solve_zipf_exponent_for_share(
            spec.n_blocks, spec.top_k, spec.top_k_share
        )
        self._sampler = ZipfSampler(spec.n_blocks, self.exponent, rng.child("zipf"))

    def generate(self) -> list[BlockAccess]:
        """The full trace, reads and writes interleaved uniformly in time."""
        spec = self.spec
        rng = self._rng.rng
        total = spec.total_reads + spec.total_writes
        timestamps = np.sort(rng.random(total) * spec.duration_seconds)
        is_read = np.ones(total, dtype=bool)
        write_positions = rng.choice(total, size=spec.total_writes, replace=False)
        is_read[write_positions] = False

        read_blocks = self._sampler.sample(spec.total_reads)
        # Writes touch uniformly random blocks: cold data being ingested.
        write_blocks = rng.integers(0, spec.n_blocks, size=spec.total_writes)

        read_sizes = self._read_sizes(spec.total_reads)
        accesses: list[BlockAccess] = []
        read_cursor = 0
        write_cursor = 0
        for index in range(total):
            if is_read[index]:
                accesses.append(
                    BlockAccess(
                        timestamp=float(timestamps[index]),
                        block_id=int(read_blocks[read_cursor]),
                        nbytes=int(read_sizes[read_cursor]),
                        is_read=True,
                    )
                )
                read_cursor += 1
            else:
                accesses.append(
                    BlockAccess(
                        timestamp=float(timestamps[index]),
                        block_id=int(write_blocks[write_cursor]),
                        nbytes=spec.block_size,
                        is_read=False,
                    )
                )
                write_cursor += 1
        return accesses

    def _read_sizes(self, count: int) -> np.ndarray:
        """Log-normal read sizes centred on the spec's mean (columnar reads
        are small and skewed)."""
        rng = self._rng.child("sizes").rng
        sigma = 1.2
        mu = np.log(self.spec.mean_read_bytes) - sigma**2 / 2
        sizes = rng.lognormal(mu, sigma, size=count)
        return np.clip(sizes, 512, self.spec.block_size).astype(np.int64)


def stats_of(trace: list[BlockAccess]) -> TraceStats:
    """Aggregate a trace into Table-1-shaped statistics."""
    stats = TraceStats()
    for access in trace:
        stats.record(access)
    return stats
