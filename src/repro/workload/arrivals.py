"""Query arrival processes for concurrent-load experiments.

The paper's production clusters serve ~500 K queries/day with pronounced
diurnal cycles and bursts (dashboards refresh together).  These generators
produce arrival timestamps for
:meth:`~repro.presto.coordinator.Coordinator.run_concurrent`:

- :func:`poisson_arrivals` -- homogeneous Poisson (memoryless baseline),
- :func:`diurnal_arrivals` -- sinusoidal rate via thinning (day/night),
- :func:`bursty_arrivals` -- a two-state on/off modulated process
  (dashboard storms over a quiet background).
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.rng import RngStream


def poisson_arrivals(
    rate: float, duration: float, rng: RngStream
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` events/second."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    # draw ~expected + slack exponential gaps, then trim to the horizon
    expected = int(rate * duration)
    slack = max(int(4 * math.sqrt(expected + 1)), 16)
    gaps = rng.rng.exponential(1.0 / rate, size=expected + slack)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration:
        more = rng.rng.exponential(1.0 / rate, size=slack)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < duration]


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    duration: float,
    rng: RngStream,
    *,
    period: float = 86_400.0,
) -> np.ndarray:
    """Non-homogeneous Poisson with a sinusoidal day/night rate.

    The instantaneous rate swings between ``base_rate`` (trough) and
    ``peak_rate`` (midday); implemented by thinning a homogeneous process
    at the peak rate.
    """
    if not 0 < base_rate <= peak_rate:
        raise ValueError(
            f"need 0 < base_rate <= peak_rate, got {base_rate}/{peak_rate}"
        )
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    candidates = poisson_arrivals(peak_rate, duration, rng.child("thinning"))
    mid = (base_rate + peak_rate) / 2
    amplitude = (peak_rate - base_rate) / 2
    instantaneous = mid - amplitude * np.cos(2 * math.pi * candidates / period)
    keep = rng.child("accept").rng.random(candidates.size) < (
        instantaneous / peak_rate
    )
    return candidates[keep]


def bursty_arrivals(
    quiet_rate: float,
    burst_rate: float,
    duration: float,
    rng: RngStream,
    *,
    mean_quiet_seconds: float = 300.0,
    mean_burst_seconds: float = 30.0,
) -> np.ndarray:
    """A two-state modulated Poisson process (quiet background + storms)."""
    if not 0 < quiet_rate <= burst_rate:
        raise ValueError(
            f"need 0 < quiet_rate <= burst_rate, got {quiet_rate}/{burst_rate}"
        )
    if mean_quiet_seconds <= 0 or mean_burst_seconds <= 0:
        raise ValueError("state durations must be positive")
    state_rng = rng.child("states").rng
    pieces: list[np.ndarray] = []
    now = 0.0
    bursting = False
    index = 0
    while now < duration:
        mean = mean_burst_seconds if bursting else mean_quiet_seconds
        hold = float(state_rng.exponential(mean))
        hold = min(hold, duration - now)
        rate = burst_rate if bursting else quiet_rate
        segment = poisson_arrivals(
            rate, hold, rng.child(f"segment{index}")
        )
        pieces.append(segment + now)
        now += hold
        bursting = not bursting
        index += 1
    if not pieces:
        return np.array([])
    return np.concatenate(pieces)
