"""Fragmented-read size distributions (Section 2.2).

"More than 50% of SQL requests on HDFS access less than 10 KB of data, and
over 90% involve less than 1 MB."  Predicate pushdown over columnar files
produces exactly this: many tiny column-chunk reads plus an occasional
large sequential scan.

:class:`FragmentedReadGenerator` draws read sizes from a mixture calibrated
to those two quantiles and positions them within files; it powers the page-
size ablation bench (read amplification vs request count, Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngStream

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """One positional read against one file."""

    file_id: str
    offset: int
    length: int


class FragmentedReadGenerator:
    """Read sizes matching the paper's CDF anchors.

    A three-component log-normal mixture:

    - ~55 % "footer/stat" reads centred near 2 KB   (the <10 KB mass),
    - ~37 % "column chunk" reads centred near 100 KB (the 10 KB-1 MB mass),
    - ~8 %  "large scan" reads centred near 4 MB     (the >1 MB tail),

    which lands P50 < 10 KB and P90 <= ~1 MB as published.
    """

    _COMPONENTS = (
        # (probability, median_bytes, sigma)
        (0.55, 2 * KIB, 0.9),
        (0.37, 100 * KIB, 0.8),
        (0.08, 4 * MIB, 0.6),
    )

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng

    def sizes(self, count: int) -> np.ndarray:
        """Draw ``count`` read sizes in bytes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = self._rng.rng
        probs = np.array([p for p, __, __ in self._COMPONENTS])
        choices = rng.choice(len(self._COMPONENTS), size=count, p=probs)
        sizes = np.empty(count, dtype=np.float64)
        for index, (__, median, sigma) in enumerate(self._COMPONENTS):
            mask = choices == index
            sizes[mask] = rng.lognormal(np.log(median), sigma, size=int(mask.sum()))
        return np.clip(sizes, 64, 64 * MIB).astype(np.int64)

    def requests(
        self,
        count: int,
        file_ids: list[str],
        file_length: int,
        *,
        popularity: np.ndarray | None = None,
    ) -> list[ReadRequest]:
        """Draw ``count`` positioned reads across ``file_ids``.

        ``popularity`` optionally supplies a per-file selection weight
        (e.g. Zipfian); defaults to uniform.
        """
        if not file_ids:
            raise ValueError("need at least one file")
        rng = self._rng.rng
        if popularity is not None:
            popularity = np.asarray(popularity, dtype=np.float64)
            popularity = popularity / popularity.sum()
        picks = rng.choice(len(file_ids), size=count, p=popularity)
        sizes = self.sizes(count)
        requests = []
        for pick, size in zip(picks, sizes):
            size = int(min(size, file_length))
            offset = int(rng.integers(0, max(file_length - size, 0) + 1))
            requests.append(ReadRequest(file_ids[int(pick)], offset, size))
        return requests


def read_size_cdf(sizes: np.ndarray, anchors: list[int]) -> dict[int, float]:
    """Fraction of reads at or below each anchor size (for the Section 2.2
    '<10 KB' / '<1 MB' checks)."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return {a: 0.0 for a in anchors}
    return {a: float((sizes <= a).mean()) for a in anchors}
