"""TPC-DS-shaped workload for the Presto simulator (Figures 9, 15, 16).

The paper evaluates Presto local cache on TPC-DS SF100 (Parquet on S3).  We
cannot run real SQL, but the *I/O behaviour* of each query is what the
figures measure, so each of the 99 queries is modelled as a
:class:`QueryProfile`: which tables it scans, what fraction of partitions
and row groups survive pruning, how many columns it projects, and how much
downstream compute follows the scan.  Profiles are generated
deterministically per query number, with the scan-vs-compute balance drawn
so warm-cache speedups land in the paper's ~10-30 % band.

The star schema mirrors TPC-DS's shape: three sales fact tables plus
inventory dominate bytes; dimensions are small and broadly shared.
"""

from __future__ import annotations

from repro.presto.catalog import Catalog, build_table
from repro.presto.query import QueryProfile, TableScan
from repro.presto.operators import ScanProfile
from repro.sim.rng import RngStream
from repro.storage.remote import NullDataSource, SyntheticDataSource

MIB = 1024 * 1024

# (table, share of total bytes, partitions, files per partition, columns)
_FACT_TABLES = (
    ("tpcds.store_sales", 0.40, 16, 4, 23),
    ("tpcds.catalog_sales", 0.22, 16, 4, 34),
    ("tpcds.web_sales", 0.14, 8, 4, 34),
    ("tpcds.inventory", 0.10, 8, 2, 4),
)
_DIM_TABLES = (
    ("tpcds.customer", 0.04, 1, 4, 18),
    ("tpcds.item", 0.03, 1, 2, 22),
    ("tpcds.date_dim", 0.01, 1, 1, 28),
    ("tpcds.store", 0.01, 1, 1, 29),
    ("tpcds.customer_address", 0.02, 1, 2, 13),
    ("tpcds.promotion", 0.01, 1, 1, 19),
    ("tpcds.warehouse", 0.01, 1, 1, 14),
    ("tpcds.web_site", 0.01, 1, 1, 26),
)


def build_tpcds_catalog(
    total_bytes: int = 256 * MIB,
) -> tuple[Catalog, SyntheticDataSource]:
    """The TPC-DS-shaped catalog plus a synthetic S3-like source.

    ``total_bytes`` scales the dataset (the paper's SF100 is ~100 GB; the
    default keeps simulations laptop-sized while preserving the byte-share
    ratios between tables).
    """
    catalog, source = _build(total_bytes, SyntheticDataSource())
    return catalog, source


def build_tpcds_catalog_fast(
    total_bytes: int = 256 * MIB,
) -> tuple[Catalog, NullDataSource]:
    """Same catalog over a zero-filled source (for latency-only benches)."""
    catalog, source = _build(total_bytes, NullDataSource())
    return catalog, source


def _build(total_bytes: int, source):
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    catalog = Catalog()
    for name, share, n_parts, files_per_part, n_columns in (
        *_FACT_TABLES,
        *_DIM_TABLES,
    ):
        schema, table_name = name.split(".")
        table_bytes = int(total_bytes * share)
        n_files = n_parts * files_per_part
        file_size = max(table_bytes // n_files, 64 * 1024)
        table = build_table(
            schema,
            table_name,
            n_partitions=n_parts,
            files_per_partition=files_per_part,
            file_size=file_size,
            n_columns=n_columns,
            n_row_groups=8,
        )
        catalog.add_table(table)
        for __, data_file in table.all_files():
            source.add_file(data_file.file_id, data_file.size)
    return catalog, source


def _scan_io_weight(table: str, scan: TableScan) -> float:
    """Relative I/O weight of one table scan: the fraction of the whole
    dataset its surviving chunks represent."""
    shares = {name: share for name, share, *__ in (*_FACT_TABLES, *_DIM_TABLES)}
    columns = {name: cols for name, __, __, __, cols in (*_FACT_TABLES, *_DIM_TABLES)}
    projected = min(scan.profile.columns_read, columns[table]) / columns[table]
    return (
        shares[table]
        * scan.partition_fraction
        * projected
        * scan.profile.row_group_selectivity
    )


def tpcds_queries(
    *, seed: int = 2024, count: int = 99, io_heavy: bool = False,
    compute_scale: float = 220.0,
) -> list[QueryProfile]:
    """The 99 query profiles (q1..q99), deterministic for a given seed.

    Each query scans one or two fact tables and a few dimensions, with
    per-query pruning selectivities.  The downstream-compute tail is
    proportional to the query's expected I/O weight (big scans feed big
    joins/aggregations), scaled by ``compute_scale`` and jittered -- this
    is what places warm-cache speedups in the paper's ~10-30 % band rather
    than letting I/O dominate unrealistically.  ``io_heavy`` removes most
    of the compute tail, useful for ablations that isolate I/O effects.
    """
    fact_names = [name for name, *__ in _FACT_TABLES]
    dim_names = [name for name, *__ in _DIM_TABLES]
    queries: list[QueryProfile] = []
    for number in range(1, count + 1):
        rng = RngStream(seed, f"tpcds/q{number}").rng
        n_facts = 1 if rng.random() < 0.7 else 2
        facts = list(rng.choice(fact_names, size=n_facts, replace=False))
        n_dims = int(rng.integers(1, 4))
        dims = list(rng.choice(dim_names, size=n_dims, replace=False))
        scans: list[TableScan] = []
        for table in facts:
            scans.append(
                TableScan(
                    table=str(table),
                    partition_fraction=float(rng.uniform(0.1, 0.6)),
                    profile=ScanProfile(
                        columns_read=int(rng.integers(3, 10)),
                        row_group_selectivity=float(rng.uniform(0.25, 1.0)),
                    ),
                )
            )
        for table in dims:
            scans.append(
                TableScan(
                    table=str(table),
                    partition_fraction=1.0,
                    profile=ScanProfile(
                        columns_read=int(rng.integers(2, 6)),
                        row_group_selectivity=1.0,
                    ),
                )
            )
        io_weight = sum(_scan_io_weight(s.table, s) for s in scans)
        compute = io_weight * compute_scale * float(
            rng.lognormal(mean=0.0, sigma=0.25)
        )
        if io_heavy:
            compute *= 0.05
        queries.append(
            QueryProfile(
                query_id=f"q{number}",
                scans=tuple(scans),
                compute_seconds=compute,
            )
        )
    return queries
