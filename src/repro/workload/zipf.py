"""Bounded Zipf sampling and exponent fitting (Figure 2).

The paper characterizes Presto file popularity as Zipfian with a factor of
up to 1.39: the k-th most popular file receives traffic proportional to
``k**-s``.  :class:`ZipfSampler` draws ranks from that law over a finite
universe; :func:`fit_zipf_exponent` recovers ``s`` from observed access
counts by least squares on the log-log rank-frequency curve, which is how
the paper's figure presents it (popularity rank vs frequency on log axes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngStream


class ZipfSampler:
    """Draw item indices 0..n-1 with P(rank k) proportional to (k+1)**-s.

    Unlike ``numpy.random.zipf`` (unbounded support), this sampler is over
    a finite catalog, matching a real file population.  Sampling uses the
    inverse-CDF over precomputed cumulative weights, O(log n) per draw.
    """

    def __init__(self, n_items: int, s: float, rng: RngStream) -> None:
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s}")
        self.n_items = n_items
        self.s = s
        self._rng = rng
        weights = np.arange(1, n_items + 1, dtype=np.float64) ** (-s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` ranks (0-based; 0 is the most popular item)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = self._rng.rng.random(count)
        return np.searchsorted(self._cdf, u, side="left")

    def expected_share_of_top(self, k: int) -> float:
        """The probability mass of the ``k`` most popular items.

        Useful to calibrate "top 10K blocks carry 89-99 % of reads"
        (Table 1) before generating a trace.
        """
        if k <= 0:
            return 0.0
        k = min(k, self.n_items)
        return float(self._cdf[k - 1])


@dataclass(frozen=True, slots=True)
class ZipfFit:
    """Result of a rank-frequency exponent fit."""

    s: float
    r_squared: float
    n_ranks: int


def fit_zipf_exponent(
    counts: np.ndarray | list[int], *, min_count: int = 1
) -> ZipfFit:
    """Fit ``frequency ~ rank**-s`` by least squares in log-log space.

    Args:
        counts: access counts per item (any order; ranked internally).
        min_count: ignore items with fewer accesses (the noisy tail).

    Returns the fitted exponent ``s`` (positive for a decaying law) and the
    goodness of fit on the log-log line.
    """
    ranked = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    ranked = ranked[ranked >= min_count]
    if ranked.size < 2:
        raise ValueError(
            f"need at least 2 items with count >= {min_count}, got {ranked.size}"
        )
    log_rank = np.log(np.arange(1, ranked.size + 1, dtype=np.float64))
    log_freq = np.log(ranked)
    slope, intercept = np.polyfit(log_rank, log_freq, deg=1)
    predicted = slope * log_rank + intercept
    residual = float(np.sum((log_freq - predicted) ** 2))
    total = float(np.sum((log_freq - log_freq.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return ZipfFit(s=float(-slope), r_squared=r_squared, n_ranks=int(ranked.size))
