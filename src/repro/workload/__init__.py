"""Workload generators calibrated to the paper's published statistics.

- :mod:`~repro.workload.zipf` -- bounded Zipf sampling and rank-frequency
  exponent fitting (Figure 2 reports a Zipfian factor up to 1.39 on Presto
  nodes at Uber).
- :mod:`~repro.workload.traces` -- HDFS block-access traces matching the
  Table 1 per-host statistics (total reads/writes, top-10K-block traffic
  concentration).
- :mod:`~repro.workload.fragments` -- ranged-read size distributions
  matching Section 2.2 (">50 % of SQL requests access <10 KB, >90 %
  <1 MB").
- :mod:`~repro.workload.tpcds` -- 99 TPC-DS-shaped query templates with
  scan/compute profiles driving the Presto simulator (Figures 9/15/16).
"""

from repro.workload.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.workload.fragments import FragmentedReadGenerator, read_size_cdf
from repro.workload.traces import BlockAccess, HostTraceSpec, TraceGenerator, TraceStats
from repro.workload.zipf import ZipfFit, ZipfSampler, fit_zipf_exponent

__all__ = [
    "ZipfSampler",
    "ZipfFit",
    "fit_zipf_exponent",
    "HostTraceSpec",
    "BlockAccess",
    "TraceGenerator",
    "TraceStats",
    "FragmentedReadGenerator",
    "read_size_cdf",
    "poisson_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
]
