"""Compatibility shim: the legacy ``EventLoop`` API over the event kernel.

Historically this module held its own heap of timestamped callbacks; that
machinery now lives in :class:`repro.sim.kernel.Kernel`, which serves both
plain timer callbacks (periodic TTL sweeps, rate-limiter bucket rotation,
metrics flushes) and generator-coroutine processes.  ``EventLoop`` remains
for existing callers (``trace_viz``, the chaos injector, the cache
manager's TTL sweep) and simply maps the old method names onto the
kernel's timer API.  New code should use :class:`~repro.sim.kernel.Kernel`
directly.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, _TimerHandle


class EventLoop(Kernel):
    """A heap of timestamped callbacks driven by a virtual clock.

    >>> loop = EventLoop()
    >>> hits = []
    >>> _ = loop.schedule(5.0, lambda: hits.append(loop.clock.now()))
    >>> loop.run_until(10.0)
    >>> hits
    [5.0]
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock)

    def schedule(self, when: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` to fire at absolute virtual time ``when``."""
        return self.call_at(when, callback)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.call_after(delay, callback)

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None], *, start: float | None = None
    ) -> _TimerHandle:
        """Fire ``callback`` every ``interval`` seconds until cancelled.

        Returns a single handle; cancelling it stops future firings.
        """
        return self.call_periodic(interval, callback, start=start)
