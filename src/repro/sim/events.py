"""A timestamped-callback event loop over a :class:`~repro.sim.clock.SimClock`.

Used for the periodic background jobs the paper describes: the TTL eviction
sweep (Section 4.1), the rate limiter's minute-bucket rotation (Section
6.2.2), and per-minute metrics aggregation (Section 6.1.3).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import SimClock


@dataclass(order=True, frozen=True)
class ScheduledEvent:
    """An event in the loop's heap, ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False, hash=False)


class _Handle:
    """Cancellation handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """A heap of timestamped callbacks driven by a virtual clock.

    >>> loop = EventLoop()
    >>> hits = []
    >>> _ = loop.schedule(5.0, lambda: hits.append(loop.clock.now()))
    >>> loop.run_until(10.0)
    >>> hits
    [5.0]
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, _Handle, Callable[[], None]]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for __, __, handle, __ in self._heap if not handle.cancelled)

    def schedule(self, when: float, callback: Callable[[], None]) -> _Handle:
        """Schedule ``callback`` to fire at absolute virtual time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past (when={when}, now={self.clock.now()})"
            )
        handle = _Handle()
        heapq.heappush(self._heap, (when, next(self._seq), handle, callback))
        return handle

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> _Handle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.schedule(self.clock.now() + delay, callback)

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None], *, start: float | None = None
    ) -> _Handle:
        """Fire ``callback`` every ``interval`` seconds until cancelled.

        Returns a single handle; cancelling it stops future firings.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        handle = _Handle()
        first = self.clock.now() + interval if start is None else start

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                heapq.heappush(
                    self._heap,
                    (self.clock.now() + interval, next(self._seq), handle, fire),
                )

        heapq.heappush(self._heap, (first, next(self._seq), handle, fire))
        return handle

    def run_until(self, deadline: float) -> None:
        """Advance the clock, firing every due callback, up to ``deadline``."""
        while self._heap and self._heap[0][0] <= deadline:
            when, __, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(when)
            callback()
        self.clock.advance_to(deadline)

    def run_all(self, *, max_events: int = 1_000_000) -> None:
        """Drain the heap completely (bounded by ``max_events``)."""
        fired = 0
        while self._heap:
            when, __, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(when)
            callback()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event loop did not quiesce after {max_events} events"
                )
