"""Named, seeded random streams -- re-exported from :mod:`repro.ports.rng`.

:class:`RngStream` moved to the leaf ``repro.ports`` package so the
transport-agnostic cache core can depend on it without importing the
simulation substrate (DESIGN.md §14).  This module remains as the
historical import path for simulation-side callers.
"""

from repro.ports.rng import RngStream

__all__ = ["RngStream"]
