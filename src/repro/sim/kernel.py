"""A process-based discrete-event kernel over :class:`~repro.sim.clock.SimClock`.

The analytic simulator computes queueing delay from closed-form channel
state: ``StorageDevice`` returns ``wait + service`` as a number and the
caller decides what to do with it.  That reproduces steady-state figures
but cannot express the phenomena the paper's robustness story hinges on --
processes *blocking* on a saturated device (Fig 14), a hedged read whose
loser is cancelled mid-flight, a worker pool draining a split queue.  This
module supplies the missing substrate:

- **Processes** are generator coroutines driven by the kernel.  A process
  yields *waitables* (a :class:`Timeout`, an :class:`Event`, a
  :class:`Resource` request, another :class:`Process`, or an
  :func:`any_of`/:func:`all_of` combinator) and is resumed when the wait
  completes.  Virtual time only moves between events.
- **Determinism**: the run queue is a heap ordered by ``(time, seq)``
  where ``seq`` is a global monotone counter, so same-timestamp events
  fire in schedule order (FIFO).  Process ids are sequential.  Two runs
  of the same scenario produce the identical event order.
- **Cancellation** is synchronous: ``process.cancel()`` detaches the
  process from whatever it is waiting on (including a resource's FIFO
  queue) and throws :class:`Cancelled` into the generator, so ``finally``
  blocks release resources and I/O models can account the bytes actually
  wasted by an abandoned transfer.
- **Deferred-I/O collection** bridges the synchronous decision logic
  (cache admission, eviction, scheduling) and the event kernel.  Under
  :func:`collecting_io`, device/remote models append replayable operation
  generators to a plan and return ~0 latency; the owning process then
  replays the plan with :func:`replay_plan`, *experiencing* queue waits
  at kernel resources.  Decisions happen at the arrival instant exactly
  as in analytic mode (so hit ratios agree); time becomes emergent.

The kernel also subsumes the old ``EventLoop`` timer API
(:meth:`Kernel.call_at` / :meth:`Kernel.call_after` /
:meth:`Kernel.call_periodic` / :meth:`Kernel.run_until` /
:meth:`Kernel.run_all`); ``repro.sim.events.EventLoop`` is now a thin
compatibility alias over it.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterator

from repro.obs.tracer import current_tracer
from repro.sim.clock import SimClock


class SimMode(enum.Enum):
    """Which simulation engine a harness drives.

    ANALYTIC: closed-form queueing (cheap, serial, no cancellation).
    KERNEL: process-based discrete events (concurrency is real).
    """

    ANALYTIC = "analytic"
    KERNEL = "kernel"


class Cancelled(Exception):
    """Thrown into a process's generator by :meth:`Process.cancel`."""


class KernelError(RuntimeError):
    """Misuse of the kernel API (yielding a non-waitable, self-cancel...)."""


# ---------------------------------------------------------------------------
# deferred-I/O collection


_COLLECTION_STACK: list[list] = []

# the kernel currently stepping a process (None outside process context);
# lets replayed operation generators reach the clock / spawn helpers
# without threading a kernel reference through every model layer.
_CURRENT_KERNEL: list["Kernel"] = []


@contextmanager
def collecting_io(plan: list) -> Iterator[list]:
    """Collect deferred I/O operations into ``plan`` instead of running them.

    While active, kernel-attached devices and remote models append
    zero-argument *operation generators* to ``plan`` via :func:`defer_io`
    and report ~0 latency to their synchronous callers.  Replay the plan
    from a process with ``yield from replay_plan(plan)``.
    """
    _COLLECTION_STACK.append(plan)
    try:
        yield plan
    finally:
        _COLLECTION_STACK.pop()


def io_collection_active() -> bool:
    """True when inside a :func:`collecting_io` block."""
    return bool(_COLLECTION_STACK)


def defer_io(op: Callable[[], Generator]) -> None:
    """Append an operation generator factory to the active collection plan."""
    _COLLECTION_STACK[-1].append(op)


def replay_plan(plan: list) -> Generator[Any, Any, float]:
    """Replay collected operations in order; returns total elapsed seconds.

    An operation is a zero-argument callable returning either a generator
    (replayed with ``yield from``, experiencing kernel waits) or a plain
    float (an instantaneous side effect, e.g. spawning a background load).
    """
    total = 0.0
    for op in plan:
        step = op()
        if hasattr(step, "__next__"):
            elapsed = yield from step
        else:
            elapsed = step
        total += float(elapsed or 0.0)
    return total


def current_kernel() -> "Kernel":
    """The kernel driving the currently-executing process."""
    if not _CURRENT_KERNEL:
        raise KernelError("no kernel is currently stepping a process")
    return _CURRENT_KERNEL[-1]


def charge_wasted_bytes(nbytes: int) -> None:
    """Account bytes a cancelled transfer had already moved.

    Called from an I/O operation's ``except Cancelled`` handler; the bytes
    accrue on the process being cancelled so a hedge can read how much its
    loser actually wasted.
    """
    if _CURRENT_KERNEL:
        process = _CURRENT_KERNEL[-1].active
        if process is not None:
            process.wasted_bytes += int(nbytes)


# ---------------------------------------------------------------------------
# waitables


class Timeout:
    """Yield ``Timeout(delay)`` to sleep ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot triggerable waitable carrying an optional value."""

    __slots__ = ("kernel", "name", "triggered", "value", "_callbacks", "_on_abandon")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []
        # hook a queue owner (e.g. Channel) installs so an abandoned wait
        # can be withdrawn from the owner's FIFO
        self._on_abandon: Callable[[], None] | None = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event; waiters are resumed via the kernel heap."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["Event"], None]) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def abandon(self) -> None:
        """Withdraw an untriggered wait from its owner's queue, if any."""
        if not self.triggered and self._on_abandon is not None:
            self._on_abandon()

    def _wait_value(self) -> tuple[Any, BaseException | None]:
        return self.value, None


class Timer(Event):
    """An :class:`Event` that triggers itself at an absolute virtual time."""

    __slots__ = ("when", "_handle")

    def __init__(self, kernel: "Kernel", when: float, name: str = "") -> None:
        super().__init__(kernel, name=name)
        self.when = when
        self._handle = kernel.call_at(when, self.trigger)

    def cancel(self) -> None:
        """Stop the timer; it will never trigger."""
        self._handle.cancel()


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "released", "grant_time")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.kernel, name=f"req:{resource.name}")
        self.resource = resource
        self.released = False
        self.grant_time: float | None = None

    def abandon(self) -> None:
        # cancelled while still queued: withdraw from the resource FIFO
        if not self.triggered:
            self.resource.release(self)


class Resource:
    """``capacity`` parallel slots with a real FIFO queue of waiters.

    ``request()`` returns a :class:`Request`; yield it to block until a
    slot is free, and pass it back to :meth:`release` when done (use
    ``try/finally`` so cancellation releases too).  Releasing a request
    that is still queued withdraws it (cancel-while-queued).
    """

    __slots__ = ("kernel", "capacity", "name", "in_use", "_queue")

    def __init__(self, kernel: "Kernel", capacity: int, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[Request] = deque()

    def request(self) -> Request:
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.triggered = True  # granted immediately; no waiters yet
            req.grant_time = self.kernel.clock.now()
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if req.released:
            return
        req.released = True
        if not req.triggered:
            # still waiting: withdraw from the FIFO
            try:
                self._queue.remove(req)
            except ValueError:
                pass
            return
        self.in_use -= 1
        while self._queue and self.in_use < self.capacity:
            nxt = self._queue.popleft()
            self.in_use += 1
            nxt.grant_time = self.kernel.clock.now()
            nxt.trigger(None)

    @property
    def waiting(self) -> int:
        """Processes blocked in the FIFO right now."""
        return len(self._queue)

    @property
    def queue_depth(self) -> int:
        """Requests in service plus requests waiting (live occupancy)."""
        return self.in_use + len(self._queue)


class Channel:
    """An unbounded FIFO message queue; ``get()`` blocks when empty.

    Feeds worker pools: producers :meth:`put` items synchronously, consumer
    processes ``yield channel.get()`` and are resumed with the item.
    """

    __slots__ = ("kernel", "name", "_items", "_getters", "puts", "gets")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.puts = 0
        self.gets = 0

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self.gets += 1
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.kernel, name=f"get:{self.name}")
        if self._items:
            ev.triggered = True
            ev.value = self._items.popleft()
            self.gets += 1
        else:
            self._getters.append(ev)

            def _withdraw(ev: Event = ev) -> None:
                try:
                    self._getters.remove(ev)
                except ValueError:
                    pass

            ev._on_abandon = _withdraw
        return ev

    def drain(self) -> list[Any]:
        """Remove and return every queued item (consumer-pool retirement).

        Blocked getters are untouched -- they stay queued for whatever is
        put next (typically poison pills).
        """
        items = list(self._items)
        self._items.clear()
        return items

    @property
    def backlog(self) -> int:
        """Items queued and not yet claimed by a getter."""
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


class _Combinator:
    """Base for :func:`any_of` / :func:`all_of` wait groups."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: tuple) -> None:
        if not waitables:
            raise ValueError("need at least one waitable")
        self.waitables = waitables


class AnyOf(_Combinator):
    """Resume when the first member completes; the value is that member."""


class AllOf(_Combinator):
    """Resume when every member has completed; the value is the tuple."""


def any_of(*waitables) -> AnyOf:
    return AnyOf(waitables)


def all_of(*waitables) -> AllOf:
    return AllOf(waitables)


# ---------------------------------------------------------------------------
# processes


def _is_done(waitable: Any) -> bool:
    if isinstance(waitable, Process):
        return waitable.done
    return bool(waitable.triggered)


class Process:
    """A generator coroutine scheduled by the kernel.

    Exposes the :class:`Event` waitable protocol so processes can be
    yielded (joined) or combined with :func:`any_of`/:func:`all_of`.
    Joining a process that failed re-raises its exception in the joiner
    (including :class:`Cancelled` for a cancelled process).
    """

    __slots__ = (
        "kernel", "name", "pid", "done", "cancelled", "value", "exception",
        "wasted_bytes", "_gen", "_callbacks", "_cleanup", "_start_handle",
        "_span_context", "started",
    )

    def __init__(self, kernel: "Kernel", gen: Generator, name: str, pid: int) -> None:
        self.kernel = kernel
        self.name = name
        self.pid = pid
        self.done = False
        self.cancelled = False
        self.started = False
        self.value: Any = None
        self.exception: BaseException | None = None
        # bytes a cancelled transfer had already moved (hedge-loser waste)
        self.wasted_bytes = 0
        self._gen = gen
        self._callbacks: list[Callable[["Process"], None]] = []
        # detaches the process from its current wait (set by the kernel)
        self._cleanup: Callable[[], None] | None = None
        self._start_handle = None
        self._span_context: list | None = None

    # -- Event-compatible waitable protocol ---------------------------------

    @property
    def triggered(self) -> bool:
        return self.done

    def add_callback(self, callback: Callable[["Process"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["Process"], None]) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def abandon(self) -> None:  # joining a process holds no queue slot
        return None

    def _wait_value(self) -> tuple[Any, BaseException | None]:
        return self.value, self.exception

    # -- lifecycle ----------------------------------------------------------

    def cancel(self, reason: str = "") -> bool:
        """Cancel the process *now*: detach its wait, throw :class:`Cancelled`.

        Synchronous -- on return the process has run its ``finally``
        blocks (releasing resource slots, accounting wasted bytes) and is
        done.  Returns False if the process had already finished.
        """
        if self.done:
            return False
        if self.kernel.active is self:
            raise KernelError("a process cannot cancel itself")
        if not self.started:
            # never ran: unschedule the start, close the generator quietly
            if self._start_handle is not None:
                self._start_handle.cancel()
            self._gen.close()
            self._complete(None, Cancelled(reason or "cancelled before start"),
                           cancelled=True)
            if self.kernel._profiling:
                self.kernel.profiler.on_exit(self)
            return True
        if self._cleanup is not None:
            self._cleanup()
            self._cleanup = None
        self.kernel._step(self, exc=Cancelled(reason or f"cancel {self.name}"))
        return True

    def _complete(self, value: Any, exception: BaseException | None,
                  *, cancelled: bool = False) -> None:
        self.done = True
        self.value = value
        self.exception = exception
        self.cancelled = cancelled
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled else
                 "done" if self.done else
                 "running" if self.started else "new")
        return f"Process(pid={self.pid}, name={self.name!r}, {state})"


class _TimerHandle:
    """Cancellation handle for a scheduled callback.

    ``on_cancel`` is set only by a profiling kernel (timer-cancel
    counting); the unprofiled path pays one ``None`` store at creation.
    """

    __slots__ = ("cancelled", "on_cancel")

    def __init__(self) -> None:
        self.cancelled = False
        self.on_cancel: Callable[[], None] | None = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.on_cancel is not None:
                self.on_cancel()


class Kernel:
    """The discrete-event scheduler: a callback heap plus process driver.

    >>> kernel = Kernel()
    >>> order = []
    >>> def proc(tag, delay):
    ...     yield Timeout(delay)
    ...     order.append(tag)
    >>> _ = kernel.spawn(proc("b", 2.0))
    >>> _ = kernel.spawn(proc("a", 1.0))
    >>> kernel.run_all()
    >>> order
    ['a', 'b']
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, _TimerHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._pids = itertools.count(1)
        self.active: Process | None = None
        self.processes_spawned = 0
        self.processes_completed = 0
        self.processes_cancelled = 0
        # non-cancelled events drained by run_until/run_all; always counted
        # (one int add per event) so perf harnesses need no profiler
        self.events_fired = 0
        # pluggable scheduler profiler (repro.obs.profiler); duck-typed so
        # this module never imports obs beyond the tracer slot.  Every hook
        # site is guarded by the cached bool, keeping the unprofiled hot
        # path at one attribute read per operation.
        self.profiler: Any = None
        self._profiling = False

    def attach_profiler(self, profiler: Any) -> None:
        """Install a scheduler profiler (attach before spawning processes).

        Pass ``repro.obs.profiler.NOOP_PROFILER`` (or any object with
        ``enabled = False``) to explicitly disable; hooks then stay cold.
        """
        self.profiler = profiler
        self._profiling = bool(getattr(profiler, "enabled", False))

    # -- timer API (subsumes the old EventLoop) -----------------------------

    def __len__(self) -> int:
        return sum(1 for __, __, handle, __ in self._heap if not handle.cancelled)

    def call_at(self, when: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past (when={when}, now={self.clock.now()})"
            )
        handle = _TimerHandle()
        heapq.heappush(self._heap, (when, next(self._seq), handle, callback))
        if self._profiling:
            handle.on_cancel = self.profiler.on_timer_cancel
            self.profiler.on_heap_push(len(self._heap), timer=True)
        return handle

    def call_after(self, delay: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.call_at(self.clock.now() + delay, callback)

    def call_periodic(
        self, interval: float, callback: Callable[[], None], *,
        start: float | None = None,
    ) -> _TimerHandle:
        """Fire ``callback`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        handle = _TimerHandle()
        first = self.clock.now() + interval if start is None else start

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                heapq.heappush(
                    self._heap,
                    (self.clock.now() + interval, next(self._seq), handle, fire),
                )
                if self._profiling:
                    self.profiler.on_heap_push(len(self._heap), timer=True)

        heapq.heappush(self._heap, (first, next(self._seq), handle, fire))
        if self._profiling:
            handle.on_cancel = self.profiler.on_timer_cancel
            self.profiler.on_heap_push(len(self._heap), timer=True)
        return handle

    def run_until(self, deadline: float) -> None:
        """Fire every due event up to ``deadline``, advancing the clock."""
        while self._heap and self._heap[0][0] <= deadline:
            when, __, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                if self._profiling:
                    self.profiler.on_event_pop(True)
                continue
            self.clock.advance_to(when)
            callback()
            self.events_fired += 1
            if self._profiling:
                self.profiler.on_event_pop(False)
        self.clock.advance_to(deadline)

    def run_all(self, *, max_events: int = 10_000_000) -> None:
        """Drain the heap completely (bounded by ``max_events``)."""
        fired = 0
        while self._heap:
            when, __, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                if self._profiling:
                    self.profiler.on_event_pop(True)
                continue
            self.clock.advance_to(when)
            callback()
            self.events_fired += 1
            if self._profiling:
                self.profiler.on_event_pop(False)
            fired += 1
            if fired >= max_events:
                raise KernelError(
                    f"kernel did not quiesce after {max_events} events"
                )

    run = run_all

    # -- factories ----------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timer(self, delay: float, name: str = "") -> Timer:
        """An event that triggers ``delay`` seconds from now."""
        return Timer(self, self.clock.now() + delay, name=name)

    def resource(self, capacity: int, name: str = "") -> Resource:
        return Resource(self, capacity, name=name)

    def channel(self, name: str = "") -> Channel:
        return Channel(self, name=name)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str | None = None) -> Process:
        """Start a process at the current virtual time."""
        return self.spawn_at(self.clock.now(), gen, name=name)

    def spawn_at(self, when: float, gen: Generator,
                 name: str | None = None) -> Process:
        """Start a process at absolute virtual time ``when``."""
        pid = next(self._pids)
        process = Process(self, gen, name or f"proc-{pid}", pid)
        self.processes_spawned += 1
        # child processes inherit the spawner's open-span stack so their
        # spans parent correctly (a query's splits nest under the query)
        tracer = current_tracer()
        capture = getattr(tracer, "capture_context", None)
        if capture is not None:
            process._span_context = capture()
        process._start_handle = self.call_at(
            when, lambda: self._step(process, value=None)
        )
        if self._profiling:
            self.profiler.on_spawn(process)
        return process

    # -- the process driver -------------------------------------------------

    def _step(self, process: Process, value: Any = None,
              exc: BaseException | None = None) -> None:
        """Advance ``process`` by one yield, delivering ``value`` or ``exc``."""
        if process.done:
            return
        process.started = True
        process._cleanup = None
        profiling = self._profiling
        if profiling:
            self.profiler.on_resume_start(process)
        tracer = current_tracer()
        has_context = hasattr(tracer, "capture_context")
        if has_context:
            saved_context = tracer.capture_context()
            tracer.restore_context(process._span_context or [])
        previous_active = self.active
        self.active = process
        _CURRENT_KERNEL.append(self)
        try:
            try:
                if exc is not None:
                    yielded = process._gen.throw(exc)
                else:
                    yielded = process._gen.send(value)
            except StopIteration as stop:
                self.processes_completed += 1
                process._complete(stop.value, None)
                if profiling:
                    self.profiler.on_exit(process)
                return
            except Cancelled as cancelled_exc:
                self.processes_cancelled += 1
                process._complete(None, cancelled_exc, cancelled=True)
                if profiling:
                    self.profiler.on_exit(process)
                return
            except Exception as error:
                self.processes_completed += 1
                had_waiters = bool(process._callbacks)
                process._complete(None, error)
                if profiling:
                    self.profiler.on_exit(process)
                if not had_waiters and exc is None:
                    # nobody is joining: fail fast rather than swallow
                    raise
                return
            if profiling:
                # record the suspension BEFORE arming the wait: an
                # already-done waitable schedules the wakeup immediately,
                # and the wakeup hook must see the blocked state
                self.profiler.on_wait_yield(process, yielded)
            self._wait_on(process, yielded)
        finally:
            _CURRENT_KERNEL.pop()
            self.active = previous_active
            if has_context:
                process._span_context = tracer.capture_context()
                tracer.restore_context(saved_context)
            if profiling:
                self.profiler.on_resume_end(process)

    def _resume_at_now(self, process: Process, value: Any = None,
                       exc: BaseException | None = None) -> _TimerHandle:
        handle = _TimerHandle()
        heapq.heappush(
            self._heap,
            (self.clock.now(), next(self._seq), handle,
             lambda: self._step(process, value=value, exc=exc)),
        )
        if self._profiling:
            self.profiler.on_heap_push(len(self._heap), timer=False)
            self.profiler.on_runnable(process)
        return handle

    def _wait_on(self, process: Process, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            handle = self.call_after(yielded.delay,
                                     lambda: self._step(process, value=None))
            process._cleanup = handle.cancel
            return

        if isinstance(yielded, (Event, Process)):
            self._wait_single(process, yielded)
            return

        if isinstance(yielded, AnyOf):
            self._wait_any(process, yielded)
            return

        if isinstance(yielded, AllOf):
            self._wait_all(process, yielded)
            return

        raise KernelError(
            f"process {process.name!r} yielded non-waitable {yielded!r}"
        )

    def _wait_single(self, process: Process, waitable: Any) -> None:
        if _is_done(waitable):
            value, error = waitable._wait_value()
            handle = self._resume_at_now(process, value=value, exc=error)
            process._cleanup = handle.cancel
            return

        def on_fire(_w: Any, process: Process = process) -> None:
            value, error = _w._wait_value()
            self._resume_at_now(process, value=value, exc=error)

        waitable.add_callback(on_fire)

        def cleanup() -> None:
            waitable.discard_callback(on_fire)
            waitable.abandon()

        process._cleanup = cleanup

    def _wait_any(self, process: Process, group: AnyOf) -> None:
        for waitable in group.waitables:
            if _is_done(waitable):
                handle = self._resume_at_now(process, value=waitable)
                process._cleanup = handle.cancel
                return

        fired = [False]
        registered: list[tuple[Any, Callable]] = []

        def detach() -> None:
            for waitable, callback in registered:
                waitable.discard_callback(callback)

        for waitable in group.waitables:
            def on_fire(_w: Any, waitable: Any = waitable) -> None:
                if fired[0]:
                    return
                fired[0] = True
                detach()
                self._resume_at_now(process, value=waitable)

            waitable.add_callback(on_fire)
            registered.append((waitable, on_fire))

        def cleanup() -> None:
            fired[0] = True
            detach()
            # note: members are deliberately NOT abandoned -- an any_of
            # loser (e.g. the still-running primary of a hedge) keeps
            # going until explicitly cancelled.

        process._cleanup = cleanup

    def _wait_all(self, process: Process, group: AllOf) -> None:
        remaining = [sum(1 for w in group.waitables if not _is_done(w))]
        if remaining[0] == 0:
            handle = self._resume_at_now(process, value=list(group.waitables))
            process._cleanup = handle.cancel
            return

        cancelled = [False]
        registered: list[tuple[Any, Callable]] = []

        def on_fire(_w: Any) -> None:
            if cancelled[0]:
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                self._resume_at_now(process, value=list(group.waitables))

        for waitable in group.waitables:
            if not _is_done(waitable):
                waitable.add_callback(on_fire)
                registered.append((waitable, on_fire))

        def cleanup() -> None:
            cancelled[0] = True
            for waitable, callback in registered:
                waitable.discard_callback(callback)

        process._cleanup = cleanup
