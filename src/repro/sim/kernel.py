"""A process-based discrete-event kernel over :class:`~repro.sim.clock.SimClock`.

The analytic simulator computes queueing delay from closed-form channel
state: ``StorageDevice`` returns ``wait + service`` as a number and the
caller decides what to do with it.  That reproduces steady-state figures
but cannot express the phenomena the paper's robustness story hinges on --
processes *blocking* on a saturated device (Fig 14), a hedged read whose
loser is cancelled mid-flight, a worker pool draining a split queue.  This
module supplies the missing substrate:

- **Processes** are generator coroutines driven by the kernel.  A process
  yields *waitables* (a :class:`Timeout`, an :class:`Event`, a
  :class:`Resource` request, another :class:`Process`, or an
  :func:`any_of`/:func:`all_of` combinator) and is resumed when the wait
  completes.  Virtual time only moves between events.
- **Determinism**: every schedule action (timer insert or same-instant
  resume) consumes one tick of a global monotone ``seq`` counter, and
  events fire in exact ``(time, seq)`` order, so same-timestamp events
  fire in schedule order (FIFO).  Process ids are sequential.  Two runs
  of the same scenario produce the identical event order.
- **Two-lane scheduling**: genuinely-future timers live on a heap keyed
  by ``(when, seq)``; same-instant resumes (the dominant operation --
  event triggers, resource grants, channel gets, already-done waits) go
  onto a FIFO *ready deque* instead of paying a heap push, a lambda and
  a handle allocation each.  The drain loop merges the two lanes by
  ``seq`` whenever both are due at the current instant, which reproduces
  the single-heap ``(time, seq)`` order exactly (see DESIGN.md §13).
- **Cancellation** is synchronous: ``process.cancel()`` detaches the
  process from whatever it is waiting on (including a resource's FIFO
  queue) and throws :class:`Cancelled` into the generator, so ``finally``
  blocks release resources and I/O models can account the bytes actually
  wasted by an abandoned transfer.  Pending scheduler entries are
  invalidated by stamping, not by mutating the lanes: each live entry
  carries the ``seq`` it was queued under and the process remembers it in
  ``_wait_seq``; cancelling resets the stamp and the stale entry is
  skipped when popped.
- **Deferred-I/O collection** bridges the synchronous decision logic
  (cache admission, eviction, scheduling) and the event kernel.  Under
  :func:`collecting_io`, device/remote models append replayable operation
  generators to a plan and return ~0 latency; the owning process then
  replays the plan with :func:`replay_plan`, *experiencing* queue waits
  at kernel resources.  Decisions happen at the arrival instant exactly
  as in analytic mode (so hit ratios agree); time becomes emergent.

The kernel also subsumes the old ``EventLoop`` timer API
(:meth:`Kernel.call_at` / :meth:`Kernel.call_after` /
:meth:`Kernel.call_periodic` / :meth:`Kernel.run_until` /
:meth:`Kernel.run_all`); ``repro.sim.events.EventLoop`` is now a thin
compatibility alias over it.

The kernel requires a :class:`~repro.sim.clock.SimClock` (or a subclass
exposing ``_now``): the drain loops advance virtual time by writing the
slot directly rather than calling ``advance_to`` per event.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable, Iterator

from repro.obs import tracer as _tracer_slot
from repro.sim.clock import SimClock

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimMode(enum.Enum):
    """Which simulation engine a harness drives.

    ANALYTIC: closed-form queueing (cheap, serial, no cancellation).
    KERNEL: process-based discrete events (concurrency is real).
    """

    ANALYTIC = "analytic"
    KERNEL = "kernel"


class Cancelled(Exception):
    """Thrown into a process's generator by :meth:`Process.cancel`."""


class KernelError(RuntimeError):
    """Misuse of the kernel API (yielding a non-waitable, self-cancel...)."""


# ---------------------------------------------------------------------------
# deferred-I/O collection


_COLLECTION_STACK: list[list] = []

# the kernel currently stepping a process (None outside process context);
# lets replayed operation generators reach the clock / spawn helpers
# without threading a kernel reference through every model layer.  A
# module scalar (saved/restored around each step, so nested kernels work)
# instead of a stack: a global store is cheaper than a list append+pop on
# the per-resume hot path.
_ACTIVE_KERNEL: "Kernel | None" = None


@contextmanager
def collecting_io(plan: list) -> Iterator[list]:
    """Collect deferred I/O operations into ``plan`` instead of running them.

    While active, kernel-attached devices and remote models append
    zero-argument *operation generators* to ``plan`` via :func:`defer_io`
    and report ~0 latency to their synchronous callers.  Replay the plan
    from a process with ``yield from replay_plan(plan)``.
    """
    _COLLECTION_STACK.append(plan)
    try:
        yield plan
    finally:
        _COLLECTION_STACK.pop()


def io_collection_active() -> bool:
    """True when inside a :func:`collecting_io` block."""
    return bool(_COLLECTION_STACK)


def defer_io(op: Callable[[], Generator]) -> None:
    """Append an operation generator factory to the active collection plan."""
    _COLLECTION_STACK[-1].append(op)


def replay_plan(plan: list) -> Generator[Any, Any, float]:
    """Replay collected operations in order; returns total elapsed seconds.

    An operation is a zero-argument callable returning either a generator
    (replayed with ``yield from``, experiencing kernel waits) or a plain
    float (an instantaneous side effect, e.g. spawning a background load).
    """
    total = 0.0
    for op in plan:
        step = op()
        if hasattr(step, "__next__"):
            elapsed = yield from step
        else:
            elapsed = step
        total += float(elapsed or 0.0)
    return total


def current_kernel() -> "Kernel":
    """The kernel driving the currently-executing process."""
    kernel = _ACTIVE_KERNEL
    if kernel is None:
        raise KernelError("no kernel is currently stepping a process")
    return kernel


def charge_wasted_bytes(nbytes: int) -> None:
    """Account bytes a cancelled transfer had already moved.

    Called from an I/O operation's ``except Cancelled`` handler; the bytes
    accrue on the process being cancelled so a hedge can read how much its
    loser actually wasted.
    """
    kernel = _ACTIVE_KERNEL
    if kernel is not None:
        process = kernel.active
        if process is not None:
            process.wasted_bytes += int(nbytes)


# ---------------------------------------------------------------------------
# cancellation sentinels
#
# ``Process._cleanup`` holds either one of these markers (the common,
# allocation-free waits) or a closure (combinator waits).  The markers are
# interpreted by :meth:`Process.cancel`; using sentinels instead of bound
# methods keeps the hot wait paths free of per-wait closure allocation.

_CLEANUP_SLEEP = object()   # pending heap entry (Timeout / unstarted spawn)
_CLEANUP_READY = object()   # pending ready-lane resume
_CLEANUP_WAITER = object()  # registered directly on an Event/Process

# forces the first _step/spawn to classify whatever tracer is installed
_TRACER_UNSET = object()


# ---------------------------------------------------------------------------
# waitables


class Timeout:
    """Yield ``Timeout(delay)`` to sleep ``delay`` virtual seconds.

    Immutable -- a hot loop may allocate one instance and yield it every
    iteration (the telemetry sampler does).
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot triggerable waitable carrying an optional value.

    Waiter storage is allocation-free for the common case: the first
    waiter (a :class:`Process` registered by the kernel, or a plain
    callback) occupies the ``_cb0`` slot; only a second concurrent waiter
    promotes to a list.
    """

    __slots__ = ("kernel", "name", "triggered", "value", "_cb0",
                 "_callbacks", "_on_abandon")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._cb0: Any = None
        self._callbacks: list | None = None
        # hook a queue owner installs so an abandoned wait can be
        # withdrawn from the owner's FIFO: either a zero-arg callable or
        # the owner deque itself (the Event is removed from it)
        self._on_abandon: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event; process waiters go onto the kernel ready lane."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        cb = self._cb0
        if cb is not None:
            self._cb0 = None
            if cb.__class__ is Process:
                # _ready_push inlined: one waiter resuming on a trigger is
                # the hottest handoff in the system (channel put -> getter)
                kernel = cb.kernel
                seq = kernel._seq
                kernel._seq = seq + 1
                cb._wait_seq = seq
                cb._cleanup = _CLEANUP_READY
                cb._waiting_on = None
                kernel._ready.append((seq, cb, value, None))
                kernel._pending += 1
                if kernel._profiling:
                    kernel.profiler.on_ready_push(len(kernel._ready))
                    kernel.profiler.on_runnable(cb)
            else:
                cb(self)
        cbs = self._callbacks
        if cbs:
            self._callbacks = None
            for cb in cbs:
                if cb.__class__ is Process:
                    cb.kernel._ready_push(cb, value, None)
                else:
                    cb(self)

    def add_callback(self, callback: Any) -> None:
        """Register a waiter: a callable taking the event, or a Process."""
        if self.triggered:
            if callback.__class__ is Process:
                callback.kernel._ready_push(callback, self.value, None)
            else:
                callback(self)
        elif self._cb0 is None and self._callbacks is None:
            self._cb0 = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Any) -> None:
        if self._cb0 is callback:
            self._cb0 = None
            return
        cbs = self._callbacks
        if cbs is not None:
            try:
                cbs.remove(callback)
            except ValueError:
                pass

    def abandon(self) -> None:
        """Withdraw an untriggered wait from its owner's queue, if any."""
        if not self.triggered:
            owner = self._on_abandon
            if owner is None:
                return
            if owner.__class__ is deque:
                try:
                    owner.remove(self)
                except ValueError:
                    pass
            else:
                owner()

    def _wait_value(self) -> tuple[Any, BaseException | None]:
        return self.value, None


class Timer(Event):
    """An :class:`Event` that triggers itself at an absolute virtual time."""

    __slots__ = ("when", "_handle")

    def __init__(self, kernel: "Kernel", when: float, name: str = "") -> None:
        super().__init__(kernel, name=name)
        self.when = when
        self._handle = kernel.call_at(when, self.trigger)

    def cancel(self) -> None:
        """Stop the timer; it will never trigger."""
        self._handle.cancel()


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "released", "grant_time")

    def __init__(self, resource: "Resource") -> None:
        # Event.__init__ inlined: one Request per resource claim makes this
        # a per-request allocation, so skip the superclass call frame
        self.kernel = resource.kernel
        self.name = resource._req_name
        self.triggered = False
        self.value = None
        self._cb0 = None
        self._callbacks = None
        self._on_abandon = None
        self.resource = resource
        self.released = False
        self.grant_time: float | None = None

    def abandon(self) -> None:
        # cancelled while still queued: withdraw from the resource FIFO
        if not self.triggered:
            self.resource.release(self)


class Resource:
    """``capacity`` parallel slots with a real FIFO queue of waiters.

    ``request()`` returns a :class:`Request`; yield it to block until a
    slot is free, and pass it back to :meth:`release` when done (use
    ``try/finally`` so cancellation releases too).  Releasing a request
    that is still queued withdraws it (cancel-while-queued).
    """

    __slots__ = ("kernel", "capacity", "name", "in_use", "_queue", "_req_name")

    def __init__(self, kernel: "Kernel", capacity: int, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[Request] = deque()
        self._req_name = f"req:{name}"

    def request(self) -> Request:
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.triggered = True  # granted immediately; no waiters yet
            req.grant_time = self.kernel.clock._now
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if req.released:
            return
        req.released = True
        if not req.triggered:
            # still waiting: withdraw from the FIFO
            try:
                self._queue.remove(req)
            except ValueError:
                pass
            return
        self.in_use -= 1
        while self._queue and self.in_use < self.capacity:
            nxt = self._queue.popleft()
            self.in_use += 1
            nxt.grant_time = self.kernel.clock._now
            nxt.trigger(None)

    @property
    def waiting(self) -> int:
        """Processes blocked in the FIFO right now."""
        return len(self._queue)

    @property
    def queue_depth(self) -> int:
        """Requests in service plus requests waiting (live occupancy)."""
        return self.in_use + len(self._queue)


class Channel:
    """An unbounded FIFO message queue; ``get()`` blocks when empty.

    Feeds worker pools: producers :meth:`put` items synchronously, consumer
    processes ``yield channel.get()`` and are resumed with the item.
    """

    __slots__ = ("kernel", "name", "_items", "_getters", "puts", "gets",
                 "_get_name")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.puts = 0
        self.gets = 0
        self._get_name = f"get:{name}"

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self.gets += 1
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.kernel, self._get_name)
        if self._items:
            ev.triggered = True
            ev.value = self._items.popleft()
            self.gets += 1
        else:
            self._getters.append(ev)
            # abandoning the wait removes the Event from this deque
            ev._on_abandon = self._getters
        return ev

    def drain(self) -> list[Any]:
        """Remove and return every queued item (consumer-pool retirement).

        Blocked getters are untouched -- they stay queued for whatever is
        put next (typically poison pills).
        """
        items = list(self._items)
        self._items.clear()
        return items

    @property
    def backlog(self) -> int:
        """Items queued and not yet claimed by a getter."""
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


class _Combinator:
    """Base for :func:`any_of` / :func:`all_of` wait groups."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: tuple) -> None:
        if not waitables:
            raise ValueError("need at least one waitable")
        self.waitables = waitables


class AnyOf(_Combinator):
    """Resume when the first member completes; the value is that member."""


class AllOf(_Combinator):
    """Resume when every member has completed; the value is the tuple."""


def any_of(*waitables) -> AnyOf:
    return AnyOf(waitables)


def all_of(*waitables) -> AllOf:
    return AllOf(waitables)


# ---------------------------------------------------------------------------
# processes


def _is_done(waitable: Any) -> bool:
    if isinstance(waitable, Process):
        return waitable.done
    return bool(waitable.triggered)


class Process:
    """A generator coroutine scheduled by the kernel.

    Exposes the :class:`Event` waitable protocol so processes can be
    yielded (joined) or combined with :func:`any_of`/:func:`all_of`.
    Joining a process that failed re-raises its exception in the joiner
    (including :class:`Cancelled` for a cancelled process).
    """

    __slots__ = (
        "kernel", "name", "pid", "done", "cancelled", "value", "exception",
        "wasted_bytes", "_gen", "_send", "_throw", "_cb0", "_callbacks",
        "_cleanup", "_wait_seq", "_waiting_on", "_span_context", "started",
    )

    def __init__(self, kernel: "Kernel", gen: Generator, name: str, pid: int) -> None:
        self.kernel = kernel
        self.name = name
        self.pid = pid
        self.done = False
        self.cancelled = False
        self.started = False
        self.value: Any = None
        self.exception: BaseException | None = None
        # bytes a cancelled transfer had already moved (hedge-loser waste)
        self.wasted_bytes = 0
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self._cb0: Any = None
        self._callbacks: list | None = None
        # how to detach from the current wait: a sentinel or a closure
        self._cleanup: Any = None
        # seq stamp of the pending scheduler entry (-1 = none); a popped
        # entry whose seq no longer matches is stale and is skipped
        self._wait_seq = -1
        self._waiting_on: Any = None
        self._span_context: list | None = None

    # -- Event-compatible waitable protocol ---------------------------------

    @property
    def triggered(self) -> bool:
        return self.done

    def add_callback(self, callback: Any) -> None:
        if self.done:
            if callback.__class__ is Process:
                callback.kernel._ready_push(callback, self.value, self.exception)
            else:
                callback(self)
        elif self._cb0 is None and self._callbacks is None:
            self._cb0 = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Any) -> None:
        if self._cb0 is callback:
            self._cb0 = None
            return
        cbs = self._callbacks
        if cbs is not None:
            try:
                cbs.remove(callback)
            except ValueError:
                pass

    def abandon(self) -> None:  # joining a process holds no queue slot
        return None

    def _wait_value(self) -> tuple[Any, BaseException | None]:
        return self.value, self.exception

    # -- lifecycle ----------------------------------------------------------

    def cancel(self, reason: str = "") -> bool:
        """Cancel the process *now*: detach its wait, throw :class:`Cancelled`.

        Synchronous -- on return the process has run its ``finally``
        blocks (releasing resource slots, accounting wasted bytes) and is
        done.  Returns False if the process had already finished.
        """
        if self.done:
            return False
        kernel = self.kernel
        if kernel.active is self:
            raise KernelError("a process cannot cancel itself")
        if not self.started:
            # never ran: invalidate the start entry, close the generator
            if self._wait_seq != -1:
                self._wait_seq = -1
                kernel._pending -= 1
                if kernel._profiling:
                    kernel.profiler.on_timer_cancel()
            self._cleanup = None
            self._gen.close()
            self._complete(None, Cancelled(reason or "cancelled before start"),
                           cancelled=True)
            if kernel._profiling:
                kernel.profiler.on_exit(self)
            return True
        cleanup = self._cleanup
        if cleanup is not None:
            self._cleanup = None
            if cleanup is _CLEANUP_READY:
                # the stale lane entry keeps its value alive until drained;
                # that's bounded by the current instant's queue depth
                self._wait_seq = -1
                kernel._pending -= 1
            elif cleanup is _CLEANUP_SLEEP:
                self._wait_seq = -1
                kernel._pending -= 1
                if kernel._profiling:
                    kernel.profiler.on_timer_cancel()
            elif cleanup is _CLEANUP_WAITER:
                waitable = self._waiting_on
                self._waiting_on = None
                waitable.discard_callback(self)
                waitable.abandon()
            else:
                cleanup()
        kernel._step(self, None, Cancelled(reason or f"cancel {self.name}"))
        return True

    def _complete(self, value: Any, exception: BaseException | None,
                  *, cancelled: bool = False) -> None:
        self.done = True
        self.value = value
        self.exception = exception
        self.cancelled = cancelled
        cb = self._cb0
        if cb is not None:
            self._cb0 = None
            if cb.__class__ is Process:
                cb.kernel._ready_push(cb, value, exception)
            else:
                cb(self)
        cbs = self._callbacks
        if cbs:
            self._callbacks = None
            for cb in cbs:
                if cb.__class__ is Process:
                    cb.kernel._ready_push(cb, value, exception)
                else:
                    cb(self)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled else
                 "done" if self.done else
                 "running" if self.started else "new")
        return f"Process(pid={self.pid}, name={self.name!r}, {state})"


class _TimerHandle:
    """Cancellation handle for a scheduled callback.

    ``scheduled`` is True while the handle's entry sits in the heap; the
    drain loop clears it on pop, so :meth:`cancel` knows whether the
    kernel's live-entry count still includes it.  ``on_cancel`` is set
    only by a profiling kernel (timer-cancel counting).
    """

    __slots__ = ("cancelled", "scheduled", "on_cancel", "_kernel")

    def __init__(self, kernel: "Kernel") -> None:
        self.cancelled = False
        self.scheduled = True
        self.on_cancel: Callable[[], None] | None = None
        self._kernel = kernel

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.scheduled:
                self.scheduled = False
                self._kernel._pending -= 1
            if self.on_cancel is not None:
                self.on_cancel()


class Kernel:
    """The discrete-event scheduler: a two-lane run queue plus process driver.

    >>> kernel = Kernel()
    >>> order = []
    >>> def proc(tag, delay):
    ...     yield Timeout(delay)
    ...     order.append(tag)
    >>> _ = kernel.spawn(proc("b", 2.0))
    >>> _ = kernel.spawn(proc("a", 1.0))
    >>> kernel.run_all()
    >>> order
    ['a', 'b']
    """

    __slots__ = (
        "clock", "_heap", "_ready", "_seq", "_next_pid", "_pending",
        "active", "processes_spawned", "processes_completed",
        "processes_cancelled", "events_fired", "profiler", "_profiling",
        "_cached_tracer", "_tracer_ctx",
    )

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        # future-timer lane: (when, seq, handle_or_None, callback_or_process)
        self._heap: list[tuple] = []
        # same-instant lane: (seq, process, value, exc); always due at the
        # current time -- the entry carries the resume payload so waking a
        # process never round-trips through per-process slots
        self._ready: deque[tuple] = deque()
        self._seq = 0
        self._next_pid = 1
        # live (non-cancelled, not yet fired) entries across both lanes
        self._pending = 0
        self.active: Process | None = None
        self.processes_spawned = 0
        self.processes_completed = 0
        self.processes_cancelled = 0
        # non-cancelled events drained by run_until/run_all; always counted
        # (one int add per event) so perf harnesses need no profiler
        self.events_fired = 0
        # pluggable scheduler profiler (repro.obs.profiler); duck-typed so
        # this module never imports obs beyond the tracer slot.  Every hook
        # site is guarded by the cached bool, keeping the unprofiled hot
        # path at one attribute read per operation.
        self.profiler: Any = None
        self._profiling = False
        # cached classification of the installed tracer: recomputed by
        # identity whenever repro.obs.tracer._active_tracer changes, so
        # the NOOP default skips per-resume context capture entirely
        self._cached_tracer: Any = _TRACER_UNSET
        self._tracer_ctx = False

    def attach_profiler(self, profiler: Any) -> None:
        """Install a scheduler profiler (attach before spawning processes).

        Pass ``repro.obs.profiler.NOOP_PROFILER`` (or any object with
        ``enabled = False``) to explicitly disable; hooks then stay cold.
        """
        self.profiler = profiler
        self._profiling = bool(getattr(profiler, "enabled", False))
        # drop the tracer classification too: (re)installing observability
        # is the moment cached hot-path shortcuts must be revalidated
        self._cached_tracer = _TRACER_UNSET

    # -- timer API (subsumes the old EventLoop) -----------------------------

    def __len__(self) -> int:
        """Live scheduled entries (cancelled-but-unpopped ones excluded)."""
        return self._pending

    def call_at(self, when: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past (when={when}, now={self.clock.now()})"
            )
        handle = _TimerHandle(self)
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (when, seq, handle, callback))
        self._pending += 1
        if self._profiling:
            handle.on_cancel = self.profiler.on_timer_cancel
            self.profiler.on_heap_push(len(self._heap), timer=True)
        return handle

    def call_after(self, delay: float, callback: Callable[[], None]) -> _TimerHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.call_at(self.clock._now + delay, callback)

    def call_after_many(
        self, items: Iterable[tuple[float, Callable[[], None]]],
    ) -> list[_TimerHandle]:
        """Batch-schedule ``(delay, callback)`` pairs; one handle each.

        Semantically identical to ``[call_after(d, cb) for d, cb in items]``
        -- sequence numbers are assigned in iteration order, so ties at one
        instant fire in submission order exactly as with the loop.  For
        large batches the heap is rebuilt once with ``heapq.heapify``
        (O(n+m)) instead of m pushes (O(m log n)), which is what bulk
        arrival injection (trace replay, periodic fan-out) wants.
        """
        now = self.clock._now
        seq = self._seq
        entries: list[tuple] = []
        handles: list[_TimerHandle] = []
        for delay, callback in items:
            if delay < 0:
                raise ValueError(f"delay must be >= 0, got {delay}")
            handle = _TimerHandle(self)
            entries.append((now + delay, seq, handle, callback))
            handles.append(handle)
            seq += 1
        self._seq = seq
        if not entries:
            return handles
        heap = self._heap
        # pop order depends only on (when, seq), so push-vs-heapify is
        # unobservable; pick whichever is cheaper for this batch size
        if len(entries) * 8 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                _heappush(heap, entry)
        self._pending += len(entries)
        if self._profiling:
            for handle in handles:
                handle.on_cancel = self.profiler.on_timer_cancel
                self.profiler.on_heap_push(len(heap), timer=True)
        return handles

    def call_periodic(
        self, interval: float, callback: Callable[[], None], *,
        start: float | None = None,
    ) -> _TimerHandle:
        """Fire ``callback`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        handle = _TimerHandle(self)
        first = self.clock._now + interval if start is None else start

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                seq = self._seq
                self._seq = seq + 1
                _heappush(self._heap,
                          (self.clock._now + interval, seq, handle, fire))
                handle.scheduled = True
                self._pending += 1
                if self._profiling:
                    self.profiler.on_heap_push(len(self._heap), timer=True)

        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (first, seq, handle, fire))
        self._pending += 1
        if self._profiling:
            handle.on_cancel = self.profiler.on_timer_cancel
            self.profiler.on_heap_push(len(self._heap), timer=True)
        return handle

    # -- the drain loops ----------------------------------------------------
    #
    # Four specializations of one merge loop (see DESIGN.md §13 for the
    # order-preservation argument).  The unprofiled run_until/run_all
    # bodies are the hottest code in the repository: lane heads, the heap
    # pop and the step driver are bound to locals, the clock slot is
    # written directly, and the fired-event counters are reconciled once
    # in a ``finally`` instead of per event.

    def run_until(self, deadline: float) -> None:
        """Fire every due event up to ``deadline``, advancing the clock."""
        if self._profiling:
            self._drain_profiled(deadline, 0)
            self.clock.advance_to(deadline)
            return
        clock = self.clock
        if clock._now > deadline:
            return
        heap = self._heap
        ready = self._ready
        popleft = ready.popleft
        pop = _heappop
        step = self._step
        fired = 0
        try:
            while True:
                if ready:
                    if heap:
                        entry = heap[0]
                        if entry[0] <= clock._now and entry[1] < ready[0][0]:
                            # a due timer scheduled before the queued resume
                            pop(heap)
                            handle = entry[2]
                            target = entry[3]
                            if handle is None:
                                if target._wait_seq != entry[1]:
                                    continue
                                target._wait_seq = -1
                                target._cleanup = None
                                step(target)
                            elif handle.cancelled:
                                continue
                            else:
                                handle.scheduled = False
                                target()
                            fired += 1
                            continue
                    entry = popleft()
                    proc = entry[1]
                    if proc._wait_seq != entry[0]:
                        continue
                    proc._wait_seq = -1
                    proc._cleanup = None
                    step(proc, entry[2], entry[3])
                    fired += 1
                    continue
                if not heap:
                    break
                entry = heap[0]
                when = entry[0]
                if when > deadline:
                    break
                pop(heap)
                handle = entry[2]
                target = entry[3]
                if handle is None:
                    if target._wait_seq != entry[1]:
                        continue
                    target._wait_seq = -1
                    target._cleanup = None
                    if when > clock._now:
                        clock._now = when
                    step(target)
                elif handle.cancelled:
                    continue
                else:
                    handle.scheduled = False
                    if when > clock._now:
                        clock._now = when
                    target()
                fired += 1
        finally:
            self.events_fired += fired
            self._pending -= fired
        clock.advance_to(deadline)

    def run_all(self, *, max_events: int = 10_000_000) -> None:
        """Drain both lanes completely (bounded by ``max_events``)."""
        if self._profiling:
            self._drain_profiled(None, max_events)
            return
        clock = self.clock
        heap = self._heap
        ready = self._ready
        popleft = ready.popleft
        pop = _heappop
        step = self._step
        fired = 0
        try:
            while True:
                if ready:
                    if heap:
                        entry = heap[0]
                        if entry[0] <= clock._now and entry[1] < ready[0][0]:
                            pop(heap)
                            handle = entry[2]
                            target = entry[3]
                            if handle is None:
                                if target._wait_seq != entry[1]:
                                    continue
                                target._wait_seq = -1
                                target._cleanup = None
                                step(target)
                            elif handle.cancelled:
                                continue
                            else:
                                handle.scheduled = False
                                target()
                            fired += 1
                            if fired >= max_events:
                                raise KernelError(
                                    f"kernel did not quiesce after {max_events} events"
                                )
                            continue
                    entry = popleft()
                    proc = entry[1]
                    if proc._wait_seq != entry[0]:
                        continue
                    proc._wait_seq = -1
                    proc._cleanup = None
                    step(proc, entry[2], entry[3])
                else:
                    if not heap:
                        break
                    entry = pop(heap)
                    handle = entry[2]
                    target = entry[3]
                    if handle is None:
                        if target._wait_seq != entry[1]:
                            continue
                        target._wait_seq = -1
                        target._cleanup = None
                        when = entry[0]
                        if when > clock._now:
                            clock._now = when
                        step(target)
                    elif handle.cancelled:
                        continue
                    else:
                        handle.scheduled = False
                        when = entry[0]
                        if when > clock._now:
                            clock._now = when
                        target()
                fired += 1
                if fired >= max_events:
                    raise KernelError(
                        f"kernel did not quiesce after {max_events} events"
                    )
        finally:
            self.events_fired += fired
            self._pending -= fired

    run = run_all

    def _drain_profiled(self, deadline: float | None, max_events: int) -> None:
        """The instrumented merge loop (hook calls per pop; not hot)."""
        clock = self.clock
        if deadline is not None and clock._now > deadline:
            return
        heap = self._heap
        ready = self._ready
        profiler = self.profiler
        fired = 0
        while True:
            entry = None
            if ready:
                if heap:
                    head = heap[0]
                    if head[0] <= clock._now and head[1] < ready[0][0]:
                        entry = _heappop(heap)
                if entry is None:
                    seq, proc, value, error = ready.popleft()
                    if proc._wait_seq != seq:
                        profiler.on_event_pop(True)
                        continue
                    proc._wait_seq = -1
                    proc._cleanup = None
                    self._step(proc, value, error)
                    self.events_fired += 1
                    self._pending -= 1
                    profiler.on_event_pop(False)
                    fired += 1
                    if max_events and fired >= max_events:
                        raise KernelError(
                            f"kernel did not quiesce after {max_events} events"
                        )
                    continue
            else:
                if not heap:
                    break
                if deadline is not None and heap[0][0] > deadline:
                    break
                entry = _heappop(heap)
            when, seq, handle, target = entry
            if handle is None:
                if target._wait_seq != seq:
                    profiler.on_event_pop(True)
                    continue
                target._wait_seq = -1
                target._cleanup = None
                clock.advance_to(when)
                self._step(target)
            elif handle.cancelled:
                profiler.on_event_pop(True)
                continue
            else:
                handle.scheduled = False
                clock.advance_to(when)
                target()
            self.events_fired += 1
            self._pending -= 1
            profiler.on_event_pop(False)
            fired += 1
            if max_events and fired >= max_events:
                raise KernelError(
                    f"kernel did not quiesce after {max_events} events"
                )

    # -- factories ----------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timer(self, delay: float, name: str = "") -> Timer:
        """An event that triggers ``delay`` seconds from now."""
        return Timer(self, self.clock._now + delay, name=name)

    def resource(self, capacity: int, name: str = "") -> Resource:
        return Resource(self, capacity, name=name)

    def channel(self, name: str = "") -> Channel:
        return Channel(self, name=name)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str | None = None) -> Process:
        """Start a process at the current virtual time."""
        return self.spawn_at(self.clock._now, gen, name=name)

    def spawn_at(self, when: float, gen: Generator,
                 name: str | None = None) -> Process:
        """Start a process at absolute virtual time ``when``."""
        pid = self._next_pid
        self._next_pid = pid + 1
        process = Process(self, gen, name or f"proc-{pid}", pid)
        self.processes_spawned += 1
        # child processes inherit the spawner's open-span stack so their
        # spans parent correctly (a query's splits nest under the query)
        tracer = _tracer_slot._active_tracer
        if tracer is not self._cached_tracer:
            self._cached_tracer = tracer
            self._tracer_ctx = (
                getattr(tracer, "enabled", True) is not False
                and hasattr(tracer, "capture_context")
            )
        if self._tracer_ctx:
            process._span_context = tracer.capture_context()
        if when < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past (when={when}, now={self.clock.now()})"
            )
        seq = self._seq
        self._seq = seq + 1
        process._wait_seq = seq
        _heappush(self._heap, (when, seq, None, process))
        self._pending += 1
        if self._profiling:
            self.profiler.on_heap_push(len(self._heap), timer=True)
            self.profiler.on_spawn(process)
        return process

    # -- the process driver -------------------------------------------------

    def _ready_push(self, process: "Process", value: Any,
                    error: BaseException | None) -> None:
        """Queue a same-instant resume on the ready lane (FIFO)."""
        seq = self._seq
        self._seq = seq + 1
        process._wait_seq = seq
        process._cleanup = _CLEANUP_READY
        process._waiting_on = None
        self._ready.append((seq, process, value, error))
        self._pending += 1
        if self._profiling:
            self.profiler.on_ready_push(len(self._ready))
            self.profiler.on_runnable(process)

    def _step(self, process: Process, value: Any = None,
              exc: BaseException | None = None) -> None:
        """Advance ``process`` by one yield, delivering ``value`` or ``exc``."""
        if process.done:
            return
        process.started = True
        profiling = self._profiling
        if profiling:
            self.profiler.on_resume_start(process)
        tracer = _tracer_slot._active_tracer
        if tracer is not self._cached_tracer:
            self._cached_tracer = tracer
            self._tracer_ctx = (
                getattr(tracer, "enabled", True) is not False
                and hasattr(tracer, "capture_context")
            )
        tracing = self._tracer_ctx
        if tracing:
            saved_context = tracer.capture_context()
            tracer.restore_context(process._span_context or [])
        global _ACTIVE_KERNEL
        previous_active = self.active
        previous_kernel = _ACTIVE_KERNEL
        self.active = process
        _ACTIVE_KERNEL = self
        try:
            try:
                if exc is not None:
                    yielded = process._throw(exc)
                else:
                    yielded = process._send(value)
            except StopIteration as stop:
                self.processes_completed += 1
                process._complete(stop.value, None)
                if profiling:
                    self.profiler.on_exit(process)
                return
            except Cancelled as cancelled_exc:
                self.processes_cancelled += 1
                process._complete(None, cancelled_exc, cancelled=True)
                if profiling:
                    self.profiler.on_exit(process)
                return
            except Exception as error:
                self.processes_completed += 1
                had_waiters = (process._cb0 is not None
                               or bool(process._callbacks))
                process._complete(None, error)
                if profiling:
                    self.profiler.on_exit(process)
                if not had_waiters and exc is None:
                    # nobody is joining: fail fast rather than swallow
                    raise
                return
            if profiling:
                # record the suspension BEFORE arming the wait: an
                # already-done waitable schedules the wakeup immediately,
                # and the wakeup hook must see the blocked state
                self.profiler.on_wait_yield(process, yielded)
            cls = yielded.__class__
            if cls is Timeout:
                # the dominant wait: one heap tuple, no handle, no closure
                seq = self._seq
                self._seq = seq + 1
                process._wait_seq = seq
                process._cleanup = _CLEANUP_SLEEP
                _heappush(self._heap,
                          (self.clock._now + yielded.delay, seq, None, process))
                self._pending += 1
                if profiling:
                    self.profiler.on_heap_push(len(self._heap), timer=True)
            elif cls is Event or cls is Request:
                # second-hottest: channel gets and resource grants, inlined
                if yielded.triggered:
                    # _ready_push inlined (immediate grant / non-empty get);
                    # _waiting_on needs no clear -- every resume path nulls
                    # it before _step runs, and this process is mid-step
                    seq = self._seq
                    self._seq = seq + 1
                    process._wait_seq = seq
                    process._cleanup = _CLEANUP_READY
                    self._ready.append((seq, process, yielded.value, None))
                    self._pending += 1
                    if profiling:
                        self.profiler.on_ready_push(len(self._ready))
                        self.profiler.on_runnable(process)
                elif yielded._cb0 is None and yielded._callbacks is None:
                    yielded._cb0 = process
                    process._waiting_on = yielded
                    process._cleanup = _CLEANUP_WAITER
                else:
                    if yielded._callbacks is None:
                        yielded._callbacks = [process]
                    else:
                        yielded._callbacks.append(process)
                    process._waiting_on = yielded
                    process._cleanup = _CLEANUP_WAITER
            else:
                handler = _WAIT_HANDLERS.get(cls)
                if handler is not None:
                    handler(self, process, yielded)
                else:
                    self._wait_on(process, yielded)
        finally:
            _ACTIVE_KERNEL = previous_kernel
            self.active = previous_active
            if tracing:
                process._span_context = tracer.capture_context()
                tracer.restore_context(saved_context)
            if profiling:
                self.profiler.on_resume_end(process)

    # -- wait registration --------------------------------------------------

    def _wait_event(self, process: Process, waitable: Event) -> None:
        """Wait on an Event/Timer/Request: register the process directly."""
        if waitable.triggered:
            self._ready_push(process, waitable.value, None)
        elif waitable._cb0 is None and waitable._callbacks is None:
            waitable._cb0 = process
            process._waiting_on = waitable
            process._cleanup = _CLEANUP_WAITER
        else:
            if waitable._callbacks is None:
                waitable._callbacks = [process]
            else:
                waitable._callbacks.append(process)
            process._waiting_on = waitable
            process._cleanup = _CLEANUP_WAITER

    def _wait_join(self, process: Process, target: "Process") -> None:
        """Join another process (re-raises its exception in the joiner)."""
        if target.done:
            self._ready_push(process, target.value, target.exception)
        elif target._cb0 is None and target._callbacks is None:
            target._cb0 = process
            process._waiting_on = target
            process._cleanup = _CLEANUP_WAITER
        else:
            if target._callbacks is None:
                target._callbacks = [process]
            else:
                target._callbacks.append(process)
            process._waiting_on = target
            process._cleanup = _CLEANUP_WAITER

    def _wait_on(self, process: Process, yielded: Any) -> None:
        """Fallback dispatch for waitable *subclasses* (isinstance chain).

        The hot paths dispatch on exact type via ``_WAIT_HANDLERS``; this
        keeps user-defined subclasses of the waitable protocol working.
        """
        if isinstance(yielded, Timeout):
            seq = self._seq
            self._seq = seq + 1
            process._wait_seq = seq
            process._cleanup = _CLEANUP_SLEEP
            _heappush(self._heap,
                      (self.clock._now + yielded.delay, seq, None, process))
            self._pending += 1
            if self._profiling:
                self.profiler.on_heap_push(len(self._heap), timer=True)
            return

        if isinstance(yielded, Process):
            self._wait_join(process, yielded)
            return

        if isinstance(yielded, Event):
            self._wait_event(process, yielded)
            return

        if isinstance(yielded, AnyOf):
            self._wait_any(process, yielded)
            return

        if isinstance(yielded, AllOf):
            self._wait_all(process, yielded)
            return

        raise KernelError(
            f"process {process.name!r} yielded non-waitable {yielded!r}"
        )

    def _wait_any(self, process: Process, group: AnyOf) -> None:
        for waitable in group.waitables:
            if _is_done(waitable):
                self._ready_push(process, waitable, None)
                return

        fired = [False]
        registered: list[tuple[Any, Callable]] = []

        def detach() -> None:
            for waitable, callback in registered:
                waitable.discard_callback(callback)

        for waitable in group.waitables:
            def on_fire(_w: Any, waitable: Any = waitable) -> None:
                if fired[0]:
                    return
                fired[0] = True
                detach()
                self._ready_push(process, waitable, None)

            waitable.add_callback(on_fire)
            registered.append((waitable, on_fire))

        def cleanup() -> None:
            fired[0] = True
            detach()
            # note: members are deliberately NOT abandoned -- an any_of
            # loser (e.g. the still-running primary of a hedge) keeps
            # going until explicitly cancelled.

        process._cleanup = cleanup

    def _wait_all(self, process: Process, group: AllOf) -> None:
        remaining = [sum(1 for w in group.waitables if not _is_done(w))]
        if remaining[0] == 0:
            self._ready_push(process, list(group.waitables), None)
            return

        cancelled = [False]
        registered: list[tuple[Any, Callable]] = []

        def on_fire(_w: Any) -> None:
            if cancelled[0]:
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                self._ready_push(process, list(group.waitables), None)

        for waitable in group.waitables:
            if not _is_done(waitable):
                waitable.add_callback(on_fire)
                registered.append((waitable, on_fire))

        def cleanup() -> None:
            cancelled[0] = True
            for waitable, callback in registered:
                waitable.discard_callback(callback)

        process._cleanup = cleanup


# exact-type dispatch for the wait paths the hot loop actually sees;
# subclasses fall through to Kernel._wait_on's isinstance chain
_WAIT_HANDLERS: dict[type, Callable] = {
    Event: Kernel._wait_event,
    Timer: Kernel._wait_event,
    Request: Kernel._wait_event,
    Process: Kernel._wait_join,
    AnyOf: Kernel._wait_any,
    AllOf: Kernel._wait_all,
}
