"""Discrete-event simulation kernel.

The paper's evaluation numbers come from production clusters; we reproduce
their *shape* on a virtual clock.  The kernel is intentionally small:

- :class:`~repro.sim.clock.SimClock` -- monotonic virtual time in seconds.
- :class:`~repro.sim.kernel.Kernel` -- the process-based discrete-event
  scheduler: generator-coroutine processes, FIFO :class:`~repro.sim.kernel.
  Resource`/:class:`~repro.sim.kernel.Channel` primitives with real queues
  and cancellation, plus the timer API for periodic background jobs (TTL
  eviction sweeps, rate-limiter bucket rotation, metrics flushes).
  :class:`~repro.sim.events.EventLoop` is the legacy name for the timer
  surface.
- :class:`~repro.sim.rng.RngStream` -- named, seeded random streams so every
  experiment is reproducible bit-for-bit.
- :mod:`repro.sim.sanitizer` -- the runtime determinism sanitizer: a
  double-run harness that diffs event-sequence hashes, plus a write-write
  conflict detector for the generation-stamp invariant.

Device queueing (the part of the paper that produces "blocked processes")
has two engines selected by :class:`~repro.sim.kernel.SimMode`: the analytic
channel-state model in :mod:`repro.storage.device`, and kernel processes
that *block* on device resources so queue depth is measured, not derived.
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Cancelled,
    Channel,
    Event,
    Kernel,
    KernelError,
    Process,
    Resource,
    SimMode,
    Timeout,
    Timer,
    all_of,
    any_of,
    collecting_io,
    current_kernel,
    defer_io,
    io_collection_active,
    replay_plan,
)
from repro.sim.rng import RngStream
from repro.sim.sanitizer import (
    DeterminismHarness,
    DeterminismViolation,
    EventTrace,
    WriteWriteConflictDetector,
)

__all__ = [
    "SimClock",
    "EventLoop",
    "Kernel",
    "KernelError",
    "SimMode",
    "Process",
    "Resource",
    "Channel",
    "Event",
    "Timer",
    "Timeout",
    "Cancelled",
    "AnyOf",
    "AllOf",
    "any_of",
    "all_of",
    "collecting_io",
    "defer_io",
    "io_collection_active",
    "replay_plan",
    "current_kernel",
    "RngStream",
    "DeterminismHarness",
    "DeterminismViolation",
    "EventTrace",
    "WriteWriteConflictDetector",
]
