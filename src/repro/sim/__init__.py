"""Discrete-event simulation kernel.

The paper's evaluation numbers come from production clusters; we reproduce
their *shape* on a virtual clock.  The kernel is intentionally small:

- :class:`~repro.sim.clock.SimClock` -- monotonic virtual time in seconds.
- :class:`~repro.sim.events.EventLoop` -- a heap of timestamped callbacks,
  used for periodic background jobs (TTL eviction sweeps, rate-limiter bucket
  rotation, metrics flushes).
- :class:`~repro.sim.rng.RngStream` -- named, seeded random streams so every
  experiment is reproducible bit-for-bit.
- :mod:`repro.sim.sanitizer` -- the runtime determinism sanitizer: a
  double-run harness that diffs event-sequence hashes, plus a write-write
  conflict detector for the generation-stamp invariant.

Device queueing (the part of the paper that produces "blocked processes")
is modelled analytically in :mod:`repro.storage.device` on top of the same
clock, so no coroutine machinery is needed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, ScheduledEvent
from repro.sim.rng import RngStream
from repro.sim.sanitizer import (
    DeterminismHarness,
    DeterminismViolation,
    EventTrace,
    WriteWriteConflictDetector,
)

__all__ = [
    "SimClock",
    "EventLoop",
    "ScheduledEvent",
    "RngStream",
    "DeterminismHarness",
    "DeterminismViolation",
    "EventTrace",
    "WriteWriteConflictDetector",
]
