"""Runtime determinism sanitizer.

The static rules in :mod:`repro.devtools` catch nondeterminism you can see
in the source; this module catches the kind you can only see by running.
Two detectors:

- :class:`DeterminismHarness` -- runs a scenario twice from the same seed,
  folding every event it emits (event type, virtual timestamp, actor id)
  into a rolling hash, and reports the **first divergent event** when the
  two trails differ.  This is the property every benchmark number rests
  on: same seed, bit-identical event sequence.
- :class:`WriteWriteConflictDetector` -- the generation-stamp invariant
  from the paper's HDFS consistency machinery (Section 6.2.3): two logical
  actors must never mutate the same page/shard at an identical virtual
  timestamp without a version bump between them, because the cache keys
  snapshots by ``(id, generation)`` and an un-bumped concurrent write
  makes two different byte contents share one cache identity.
- :class:`SpanLeakDetector` -- a span still open when the harness
  finishes means some code path skipped its ``finish()`` (an exception
  escaped outside the ``with``, or a hand-managed span lost its
  ``finally``); attribution and critical-path analysis over such a trace
  silently undercount, so a leak is a finding, not a warning.

Both integrate with pytest via the fixtures in the repo-root
``conftest.py``; tests opt in with ``@pytest.mark.determinism``, which CI
runs as a dedicated sanitizer job alongside the lint gate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One entry in an event trail: what happened, when, to whom."""

    kind: str
    timestamp: float
    actor: str
    detail: str = ""

    def encode(self) -> bytes:
        return (
            f"{self.kind}|{self.timestamp!r}|{self.actor}|{self.detail}".encode()
        )


class EventTrace:
    """An append-only event trail with an incrementally folded hash.

    The rolling hash commits to the full prefix at every step, so two
    traces can be compared in O(1) (final digest) and diffed in O(n)
    (first index where the event streams differ).
    """

    def __init__(self) -> None:
        self._events: list[SimEvent] = []
        self._hasher = hashlib.blake2b(digest_size=16)

    def record(
        self, kind: str, timestamp: float, actor: str, detail: str = ""
    ) -> None:
        """Append one event and fold it into the rolling hash."""
        event = SimEvent(kind=kind, timestamp=float(timestamp), actor=actor,
                         detail=detail)
        self._events.append(event)
        self._hasher.update(event.encode())

    def record_all(self, events: list[tuple[float, str, str]]) -> None:
        """Bulk-record ``(virtual_time, action, target)`` tuples -- the
        shape :class:`~repro.resilience.injector.ChaosInjector` and
        ``BreakerBoard`` event logs use."""
        for timestamp, action, target in events:
            self.record(action, timestamp, target)

    @property
    def events(self) -> list[SimEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def rolling_hash(self) -> str:
        """Hex digest committing to the entire event sequence so far."""
        return self._hasher.hexdigest()


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two same-seed runs disagree."""

    index: int
    first: SimEvent | None     # None: run ended early (missing event)
    second: SimEvent | None

    def describe(self) -> str:
        if self.first is None:
            return (f"event #{self.index}: first run ended, second run "
                    f"continued with {self.second}")
        if self.second is None:
            return (f"event #{self.index}: second run ended, first run "
                    f"continued with {self.first}")
        return (f"event #{self.index} diverged:\n"
                f"  run 1: {self.first}\n"
                f"  run 2: {self.second}")


@dataclass(frozen=True, slots=True)
class DeterminismReport:
    """Outcome of a double run: both hashes plus the first divergence."""

    hash_first: str
    hash_second: str
    events_first: int
    events_second: int
    divergence: Divergence | None
    result_first: Any = field(compare=False, default=None)
    result_second: Any = field(compare=False, default=None)

    @property
    def deterministic(self) -> bool:
        return self.divergence is None and self.hash_first == self.hash_second


class DeterminismViolation(AssertionError):
    """Raised by :meth:`DeterminismHarness.check` on a divergent re-run."""

    def __init__(self, report: DeterminismReport) -> None:
        self.report = report
        detail = (
            report.divergence.describe()
            if report.divergence is not None
            else "event trails match but results differ"
        )
        super().__init__(
            "scenario is not deterministic under a fixed seed\n"
            f"  run 1: {report.events_first} events, hash {report.hash_first}\n"
            f"  run 2: {report.events_second} events, hash {report.hash_second}\n"
            f"  {detail}"
        )


class DeterminismHarness:
    """Run a scenario twice and demand bit-identical event trails.

    ``scenario`` receives a fresh :class:`EventTrace` and records every
    observable event into it (fault injections, breaker transitions,
    request completions -- whatever defines the run); its return value is
    compared as a secondary signal.  The scenario must derive **all** of
    its randomness and time from its own seed/clock -- that is exactly the
    property under test.

    With a ``tracer_factory``, each run executes under a freshly built
    tracer (installed via :func:`repro.obs.tracer.installed_tracer`) and
    the harness additionally demands that no span leaked open at run end
    (:class:`SpanLeakViolation` otherwise) -- a scenario whose span tree
    is incomplete cannot be attributed, so the leak check runs *before*
    the trail diff.

    >>> def scenario(trace):
    ...     for step in range(3):
    ...         trace.record("tick", float(step), "loop")
    ...     return "done"
    >>> DeterminismHarness(scenario).check().deterministic
    True
    """

    def __init__(
        self,
        scenario: Callable[[EventTrace], Any],
        *,
        tracer_factory: Callable[[], Any] | None = None,
    ) -> None:
        self.scenario = scenario
        self.tracer_factory = tracer_factory

    def _run_once(self, trace: EventTrace) -> Any:
        if self.tracer_factory is None:
            return self.scenario(trace)
        # lazy import: the sanitizer must stay importable without obs
        from repro.obs.tracer import installed_tracer

        tracer = self.tracer_factory()
        with installed_tracer(tracer):
            result = self.scenario(trace)
        SpanLeakDetector(tracer).assert_clean()
        return result

    def run_twice(self) -> DeterminismReport:
        """Execute both runs and diff the trails (leaks raise; divergence
        does not -- it is reported)."""
        first_trace, second_trace = EventTrace(), EventTrace()
        first_result = self._run_once(first_trace)
        second_result = self._run_once(second_trace)
        divergence = self._first_divergence(first_trace, second_trace)
        report = DeterminismReport(
            hash_first=first_trace.rolling_hash(),
            hash_second=second_trace.rolling_hash(),
            events_first=len(first_trace),
            events_second=len(second_trace),
            divergence=divergence,
            result_first=first_result,
            result_second=second_result,
        )
        if divergence is None and first_result != second_result:
            # identical trails but divergent results: the scenario observes
            # state it does not record; surface it as an end-of-trail diff
            report = DeterminismReport(
                hash_first=report.hash_first,
                hash_second=report.hash_second,
                events_first=report.events_first,
                events_second=report.events_second,
                divergence=Divergence(len(first_trace), None, None),
                result_first=first_result,
                result_second=second_result,
            )
        return report

    def check(self) -> DeterminismReport:
        """Run twice; raise :class:`DeterminismViolation` on divergence."""
        report = self.run_twice()
        if not report.deterministic:
            raise DeterminismViolation(report)
        return report

    @staticmethod
    def _first_divergence(
        first: EventTrace, second: EventTrace
    ) -> Divergence | None:
        a, b = first.events, second.events
        for index in range(min(len(a), len(b))):
            if a[index] != b[index]:
                return Divergence(index, a[index], b[index])
        if len(a) != len(b):
            index = min(len(a), len(b))
            return Divergence(
                index,
                a[index] if index < len(a) else None,
                b[index] if index < len(b) else None,
            )
        return None


@dataclass(frozen=True, slots=True)
class WriteConflict:
    """Two actors mutated one key at one virtual instant, same generation."""

    key: str
    timestamp: float
    generation: int
    first_actor: str
    second_actor: str

    def describe(self) -> str:
        return (
            f"write-write conflict on {self.key!r} at t={self.timestamp}: "
            f"{self.first_actor!r} and {self.second_actor!r} both wrote "
            f"generation {self.generation} with no version bump between"
        )


class WriteConflictViolation(AssertionError):
    """Raised by :meth:`WriteWriteConflictDetector.assert_clean`."""

    def __init__(self, conflicts: list[WriteConflict]) -> None:
        self.conflicts = conflicts
        lines = "\n".join(f"  {c.describe()}" for c in conflicts)
        super().__init__(
            f"{len(conflicts)} generation-stamp violation(s):\n{lines}"
        )


@dataclass(frozen=True, slots=True)
class SpanLeak:
    """One span that was still open at the end of a run."""

    trace_id: str
    span_id: str
    name: str
    actor: str
    start: float

    def describe(self) -> str:
        actor = f" @{self.actor}" if self.actor else ""
        return (
            f"span {self.name!r}{actor} (trace={self.trace_id} "
            f"id={self.span_id}) opened at t={self.start} never finished"
        )


class SpanLeakViolation(AssertionError):
    """Raised by :meth:`SpanLeakDetector.assert_clean`."""

    def __init__(self, leaks: list[SpanLeak]) -> None:
        self.leaks = leaks
        lines = "\n".join(f"  {leak.describe()}" for leak in leaks)
        super().__init__(f"{len(leaks)} span(s) leaked open:\n{lines}")


class SpanLeakDetector:
    """Flags spans left open when a scenario finishes.

    Duck-typed over anything exposing ``open_spans()`` (the tracer
    protocol from :mod:`repro.obs.tracer`); the no-op tracer reports no
    open spans, so the detector is safe to run unconditionally.
    """

    def __init__(self, tracer: Any) -> None:
        self._tracer = tracer

    def leaks(self) -> list[SpanLeak]:
        found = []
        for span in self._tracer.open_spans():
            found.append(
                SpanLeak(
                    trace_id=span.trace_id,
                    span_id=span.span_id,
                    name=span.name,
                    actor=span.actor,
                    start=span.start,
                )
            )
        return found

    @property
    def clean(self) -> bool:
        return not self.leaks()

    def assert_clean(self) -> None:
        """Raise :class:`SpanLeakViolation` if any span is still open."""
        leaks = self.leaks()
        if leaks:
            raise SpanLeakViolation(leaks)


class WriteWriteConflictDetector:
    """Flags concurrent same-generation writes to one page/shard.

    Call :meth:`record_write` from wherever mutations happen (a metastore
    put, a shard write, an HDFS append).  A write is in conflict when the
    same key was last written at the **same virtual timestamp** by a
    **different actor** with **no generation bump** -- the paper's
    ``(blockId, generation stamp)`` keying makes such a pair
    indistinguishable to the cache, i.e. a silent consistency bug.
    """

    def __init__(self) -> None:
        # key -> (timestamp, generation, actor) of the latest write
        self._last: dict[str, tuple[float, int, str]] = {}
        self.conflicts: list[WriteConflict] = []
        self.writes = 0

    def record_write(
        self, key: str, *, actor: str, timestamp: float, generation: int
    ) -> WriteConflict | None:
        """Record one mutation; returns the conflict if this write races."""
        self.writes += 1
        previous = self._last.get(key)
        conflict: WriteConflict | None = None
        if previous is not None:
            last_ts, last_gen, last_actor = previous
            if generation < last_gen:
                raise ValueError(
                    f"generation moved backwards on {key!r}: "
                    f"{last_gen} -> {generation}"
                )
            if (
                timestamp == last_ts
                and actor != last_actor
                and generation == last_gen
            ):
                conflict = WriteConflict(
                    key=key, timestamp=timestamp, generation=generation,
                    first_actor=last_actor, second_actor=actor,
                )
                self.conflicts.append(conflict)
        self._last[key] = (timestamp, generation, actor)
        return conflict

    @property
    def clean(self) -> bool:
        return not self.conflicts

    def assert_clean(self) -> None:
        """Raise :class:`WriteConflictViolation` if any write raced."""
        if self.conflicts:
            raise WriteConflictViolation(list(self.conflicts))
