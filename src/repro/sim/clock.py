"""Virtual clocks -- re-exported from :mod:`repro.ports.clock`.

The clock types moved to the leaf ``repro.ports`` package so the
transport-agnostic cache core can depend on them without importing the
simulation substrate (DESIGN.md §14).  This module remains as the
historical import path for simulation-side callers.
"""

from repro.ports.clock import Clock, SimClock, WallClock

__all__ = ["Clock", "SimClock", "WallClock"]
