"""The sanctioned host-clock API (profiling only).

Everything simulated reads virtual time from a
:class:`~repro.sim.clock.SimClock`; the replint DET001 rule and the
benchmark conftest guard exist to keep it that way.  But *profiling the
simulator itself* -- how many host-CPU microseconds one process resume
costs, how many events the scheduler drains per wall second -- is a
measurement **about the host**, not about the simulation, and it cannot
come from the virtual clock by construction.

This module is the single sanctioned doorway for those reads:

- :func:`host_perf_now` -- monotonic host wall time (throughput ladders);
- :func:`host_cpu_now` -- process CPU time (per-resume profiler charges);
- :func:`installed_host_clock` -- swap both sources for a fake in tests,
  so host-time *consumers* (the profiler, the perf harness) stay fully
  deterministic under test without ever touching the real clock.

Two invariants keep the determinism story intact:

1. Nothing in this module (or derived from its readings) may influence a
   simulation decision -- host time flows only into profiler/benchmark
   *outputs*, and those outputs segregate host fields from virtual fields
   so the determinism sanitizer compares only the virtual part.
2. Every other module still fails DET001 for a direct
   ``time.perf_counter`` / ``time.process_time`` read; only this file is
   allowlisted (enforced by ``tests/devtools`` regression tests).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

# module-level slots, mirroring repro.core.page's time-source shim
_perf_source: Callable[[], float] = time.perf_counter
_cpu_source: Callable[[], float] = time.process_time


def host_perf_now() -> float:
    """Monotonic host wall-clock seconds (includes time spent blocked)."""
    return _perf_source()


def host_cpu_now() -> float:
    """Host CPU seconds consumed by this process (excludes sleep/blocked)."""
    return _cpu_source()


def set_host_clock(
    perf: Callable[[], float] | None = None,
    cpu: Callable[[], float] | None = None,
) -> None:
    """Replace one or both host time sources (tests / replay tooling)."""
    global _perf_source, _cpu_source
    if perf is not None:
        _perf_source = perf
    if cpu is not None:
        _cpu_source = cpu


def reset_host_clock() -> None:
    """Restore the real host time sources."""
    global _perf_source, _cpu_source
    _perf_source = time.perf_counter
    _cpu_source = time.process_time


@contextmanager
def installed_host_clock(
    perf: Callable[[], float] | None = None,
    cpu: Callable[[], float] | None = None,
) -> Iterator[None]:
    """Scope a fake host clock over a ``with`` block, always restoring.

    >>> ticks = iter(float(i) for i in range(10))
    >>> with installed_host_clock(cpu=lambda: next(ticks)):
    ...     host_cpu_now() < host_cpu_now()
    True
    """
    global _perf_source, _cpu_source
    previous = (_perf_source, _cpu_source)
    if perf is not None:
        _perf_source = perf
    if cpu is not None:
        _cpu_source = cpu
    try:
        yield
    finally:
        _perf_source, _cpu_source = previous
