"""Cluster-level chaos injection.

The seed repo could only inject faults into the *local* simulated SSD page
store (``FaultPlan``); this module extends fault injection to every remote
actor in the cluster:

- **crash/revive/restart** any registered node (cache workers, DataNodes,
  Presto workers, cached DataNodes) -- immediately, on an
  :class:`~repro.sim.events.EventLoop` schedule, or probabilistically;
- **delay / fail / corrupt** remote requests through a
  :class:`RemoteFaultState` attached to an
  :class:`~repro.storage.object_store.ObjectStore` or a
  :class:`FaultyDataSource` wrapper around any ``DataSource``;
- **partition** a node from a consistent-hash ring (reachable storage,
  unreachable peer).

All randomness comes from a named :class:`~repro.sim.rng.RngStream` and
every injected fault is appended to :attr:`ChaosInjector.events`, so a
chaos scenario is reproducible bit-for-bit and its event sequence can be
compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MetricsRegistry
from repro.errors import RemoteCorruptionError, RemoteReadError
from repro.sim.clock import Clock, SimClock
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.storage.remote import DataSource, ReadResult


@dataclass(slots=True)
class RemoteFaultState:
    """Probabilistic fault knobs applied to remote requests.

    Attributes:
        fail_probability: request raises :class:`RemoteReadError`.
        corrupt_probability: request raises :class:`RemoteCorruptionError`
            (bytes flipped in transit, caught by transport checksums).
        delay_probability: request completes but pays ``delay_seconds``
            extra latency (brownout rather than blackout).
        delay_seconds: the extra latency charged to delayed requests.
    """

    fail_probability: float = 0.0
    corrupt_probability: float = 0.0
    delay_probability: float = 0.0
    delay_seconds: float = 0.2

    def __post_init__(self) -> None:
        for name in ("fail_probability", "corrupt_probability", "delay_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    @property
    def active(self) -> bool:
        return (
            self.fail_probability > 0
            or self.corrupt_probability > 0
            or self.delay_probability > 0
        )


def apply_remote_faults(
    state: RemoteFaultState | None,
    rng: RngStream,
    latency: float,
    *,
    target: str,
    metrics: MetricsRegistry | None = None,
) -> float:
    """Roll the fault dice for one remote request; returns adjusted latency.

    Raises :class:`RemoteReadError` / :class:`RemoteCorruptionError` on
    injected hard faults.  Draws happen only for armed fault types, so a
    zero-probability configuration consumes no randomness.
    """
    if state is None or not state.active:
        return latency
    if state.fail_probability > 0 and (
        float(rng.rng.random()) < state.fail_probability
    ):
        if metrics is not None:
            metrics.counter("chaos_remote_failures").inc()
        raise RemoteReadError(f"injected remote failure on {target}")
    if state.corrupt_probability > 0 and (
        float(rng.rng.random()) < state.corrupt_probability
    ):
        if metrics is not None:
            metrics.counter("chaos_remote_corruptions").inc()
        raise RemoteCorruptionError(f"injected corruption in transit on {target}")
    if state.delay_probability > 0 and (
        float(rng.rng.random()) < state.delay_probability
    ):
        if metrics is not None:
            metrics.counter("chaos_remote_delays").inc()
        return latency + state.delay_seconds
    return latency


class FaultyDataSource:
    """Wraps any ``DataSource`` with injectable delay/failure/corruption."""

    def __init__(
        self,
        inner: DataSource,
        rng: RngStream,
        *,
        faults: RemoteFaultState | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.rng = rng
        self.faults = faults if faults is not None else RemoteFaultState()
        self.metrics = metrics

    def file_length(self, file_id: str) -> int:
        return self.inner.file_length(file_id)

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        result = self.inner.read(file_id, offset, length)
        latency = apply_remote_faults(
            self.faults, self.rng, result.latency,
            target=file_id, metrics=self.metrics,
        )
        if latency == result.latency:
            return result
        return ReadResult(data=result.data, latency=latency)


class ChaosInjector:
    """Registry + orchestration of cluster-wide fault injection.

    Nodes register under a name and must expose ``fail()``/``recover()``
    (crash/revive) or ``restart()`` (process restart losing volatile
    state).  Faults fire immediately, on an event-loop schedule, or
    probabilistically per call; each one lands in :attr:`events` as
    ``(virtual_time, action, target)``.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        rng: RngStream | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.rng = rng if rng is not None else RngStream(0, "chaos")
        self.metrics = metrics if metrics is not None else MetricsRegistry("chaos")
        self._targets: dict[str, object] = {}
        self.events: list[tuple[float, str, str]] = []

    # -- registry ------------------------------------------------------------

    def register(self, name: str, target: object) -> None:
        self._targets[name] = target

    def register_all(self, targets: dict[str, object]) -> None:
        for name, target in targets.items():
            self.register(name, target)

    def target(self, name: str) -> object:
        return self._targets[name]

    @property
    def target_names(self) -> list[str]:
        return sorted(self._targets)

    def _record(self, action: str, target: str) -> None:
        self.events.append((self.clock.now(), action, target))
        self.metrics.counter("chaos_faults_injected").inc()

    # -- node lifecycle faults -----------------------------------------------

    def crash(self, name: str) -> None:
        """Take a node down (container kill); state survives for revive."""
        self._targets[name].fail()
        self._record("crash", name)

    def revive(self, name: str) -> None:
        self._targets[name].recover()
        self._record("revive", name)

    def restart(self, name: str) -> None:
        """Process restart: the target loses its volatile state."""
        self._targets[name].restart()
        self._record("restart", name)

    def schedule_crash(
        self, loop: EventLoop, name: str, at: float, duration: float
    ) -> None:
        """Crash ``name`` at virtual time ``at`` and revive it after
        ``duration`` seconds (a fault window)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        loop.schedule(at, lambda: self.crash(name))
        loop.schedule(at + duration, lambda: self.revive(name))

    def schedule_restart(self, loop: EventLoop, name: str, at: float) -> None:
        loop.schedule(at, lambda: self.restart(name))

    def maybe_crash(self, name: str, probability: float) -> bool:
        """Crash ``name`` with the given probability (one rng draw)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if probability > 0 and float(self.rng.rng.random()) < probability:
            self.crash(name)
            return True
        return False

    # -- network faults ------------------------------------------------------

    def partition(self, name: str, ring) -> None:
        """Partition a node from the ring: peers stop routing to it while
        the node itself stays up (split-brain-lite)."""
        ring.mark_offline(name, self.clock.now())
        self._record("partition", name)

    def heal_partition(self, name: str, ring) -> None:
        ring.mark_online(name)
        self._record("heal_partition", name)

    # -- remote-request faults -----------------------------------------------

    def set_remote_faults(self, target: object, state: RemoteFaultState) -> None:
        """Arm probabilistic request faults on an ``ObjectStore`` (via
        ``set_chaos``) or a :class:`FaultyDataSource` (``faults``)."""
        if hasattr(target, "set_chaos"):
            rng = getattr(target, "chaos_rng", None)
            if rng is None:
                rng = self.rng.child(f"remote/{type(target).__name__}")
            target.set_chaos(state, rng)
        elif hasattr(target, "faults"):
            target.faults = state
        else:
            raise TypeError(
                f"{type(target).__name__} accepts no remote fault state"
            )
        self._record("remote_faults", type(target).__name__)

    def clear_remote_faults(self, target: object) -> None:
        self.set_remote_faults(target, RemoteFaultState())
