"""Resilience layer: retries, circuit breakers, hedged reads, chaos injection.

The paper's Section 8 ("fault tolerance is hard") and the Section 7 lessons
(node timeouts, at most two cache replicas with remote fallback) are about
surviving failures.  This package makes degraded-mode behaviour a
first-class, testable property of every remote-read path:

- :mod:`~repro.resilience.policy` -- exponential backoff with deterministic
  jitter and per-attempt deadlines;
- :mod:`~repro.resilience.breaker` -- sliding-window circuit breakers with
  per-target state;
- :mod:`~repro.resilience.hedge` -- hedged reads fired after a latency
  percentile threshold (the "lazy data movement" companion for
  slow-but-alive nodes);
- :mod:`~repro.resilience.health` -- per-node health feeding the Presto
  soft-affinity scheduler and the distributed-tier failover;
- :mod:`~repro.resilience.injector` -- cluster-level chaos: crash/revive
  nodes, delay/fail/corrupt remote requests, partition nodes from the ring;
- :mod:`~repro.resilience.source` -- a ``DataSource`` wrapper applying
  retry + breaker + hedging to any remote source.

Everything runs on the sim clock and named RNG streams, so two runs with
the same seed produce identical retry/hedge/breaker event sequences.
"""

from repro.resilience.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.resilience.health import NodeHealthTracker
from repro.resilience.hedge import HedgePolicy
from repro.resilience.injector import ChaosInjector, FaultyDataSource, RemoteFaultState
from repro.resilience.policy import RetryPolicy
from repro.resilience.source import ResilientDataSource

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "ChaosInjector",
    "CircuitBreaker",
    "FaultyDataSource",
    "HedgePolicy",
    "NodeHealthTracker",
    "RemoteFaultState",
    "ResilientDataSource",
    "RetryPolicy",
]
