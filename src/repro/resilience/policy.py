"""Retry policy: exponential backoff with deterministic jitter.

Backoff delays are computed, never slept -- simulations charge them as
latency on the virtual clock.  Jitter draws from a named
:class:`~repro.sim.rng.RngStream`, so retry schedules are reproducible
bit-for-bit from the root seed (the same property every other stochastic
component of the repo has).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RngStream


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a remote call is retried.

    Attributes:
        max_attempts: total tries, including the first (1 = no retries).
        base_delay: backoff before the second attempt, seconds.
        multiplier: exponential growth factor per subsequent attempt.
        max_delay: backoff ceiling, seconds.
        jitter: fraction of each delay randomized uniformly in
            ``[-jitter, +jitter]`` (0 disables jitter; draws come from the
            caller-supplied stream, keeping schedules deterministic).
        attempt_timeout: per-attempt latency deadline, seconds.  An attempt
            whose modelled latency exceeds it is abandoned at the deadline
            and retried; ``None`` waits attempts out however long they take.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    attempt_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {self.attempt_timeout}"
            )

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        return cls(max_attempts=1)

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Low-latency tier: quick, tightly bounded retries."""
        return cls(max_attempts=4, base_delay=0.01, max_delay=0.5,
                   attempt_timeout=1.0)

    def backoff(self, attempt: int, rng: RngStream | None = None) -> float:
        """Delay charged before attempt ``attempt + 1`` (``attempt`` is the
        1-based attempt that just failed)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and rng is not None and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.rng.random()) - 1.0)
        return delay

    def total_backoff_budget(self, rng: RngStream | None = None) -> float:
        """Worst-case backoff a call can accumulate (planning helper)."""
        return sum(self.backoff(a, rng) for a in range(1, self.max_attempts))
