"""Per-node health tracking feeding schedulers and failover paths.

The tracker is a thin coordination layer over a shared
:class:`~repro.resilience.breaker.BreakerBoard`: the read path records
successes/failures per node, and placement logic (the Presto soft-affinity
scheduler, the distributed-tier client) asks ``is_available`` *before*
routing work -- so open-breaker nodes are skipped instead of timed out on,
the exact behaviour the paper's node-timeout lesson is after.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerBoard, CircuitBreaker
from repro.sim.clock import Clock, SimClock


class NodeHealthTracker:
    """Cluster view of which nodes are currently worth sending work to."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        breakers: BreakerBoard | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry("health")
        self.breakers = (
            breakers
            if breakers is not None
            else BreakerBoard(clock=self.clock, metrics=self.metrics)
        )
        self._successes: dict[str, int] = defaultdict(int)
        self._failures: dict[str, int] = defaultdict(int)
        self._last_failure_at: dict[str, float] = {}

    # -- recording -----------------------------------------------------------

    def breaker_for(self, node: str) -> CircuitBreaker:
        return self.breakers.for_target(node)

    def record_success(self, node: str) -> None:
        self._successes[node] += 1
        self.breakers.for_target(node).record_success()

    def record_failure(self, node: str) -> None:
        self._failures[node] += 1
        self._last_failure_at[node] = self.clock.now()
        self.breakers.for_target(node).record_failure()

    # -- queries -------------------------------------------------------------

    def is_available(self, node: str) -> bool:
        """Non-consuming check used by placement logic.

        A node never seen by the tracker is presumed healthy (breakers are
        created lazily, on first recorded outcome or explicit lookup).
        """
        if node not in self.breakers:
            return True
        return self.breakers.for_target(node).available

    def filter_available(self, nodes) -> list[str]:
        return [node for node in nodes if self.is_available(node)]

    def snapshot(self) -> dict[str, dict]:
        """Per-node health summary for dashboards and tests."""
        nodes = (
            set(self._successes) | set(self._failures) | set(self.breakers.states())
        )
        return {
            node: {
                "state": (
                    self.breakers.for_target(node).state.value
                    if node in self.breakers
                    else "closed"
                ),
                "available": self.is_available(node),
                "successes": self._successes.get(node, 0),
                "failures": self._failures.get(node, 0),
                "last_failure_at": self._last_failure_at.get(node),
            }
            for node in sorted(nodes)
        }
