"""Sliding-window circuit breakers with per-target state.

A breaker watches the recent outcomes of calls to one target (a cache
worker, a DataNode, the object store).  When the failure ratio over the
window crosses the threshold it *opens*: further calls are rejected
instantly instead of timing out against a dead node -- the detection the
paper's node-timeout lesson (Section 7) relies on.  After ``reset_timeout``
the breaker turns *half-open* and admits a bounded number of probe calls;
one success closes it, one failure re-opens it.

Every transition is observable: trips/rejections/probes go to the metrics
registry, and an optional shared event log records ``(time, target,
transition)`` tuples so tests can assert two same-seed runs produce
identical breaker event sequences.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.core.metrics import MetricsRegistry
from repro.sim.clock import Clock, SimClock


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-ratio breaker over a sliding time window.

    Args:
        name: target this breaker guards (label for metrics/events).
        clock: time source (virtual in simulations).
        window_seconds: how far back outcomes count toward the ratio.
        failure_threshold: open when ``failures / calls`` in the window
            reaches this, provided at least ``min_volume`` calls were seen.
        min_volume: minimum windowed calls before the ratio is trusted.
        reset_timeout: seconds the breaker stays open before probing.
        half_open_probes: probe calls admitted while half-open.
        metrics: counter sink (``breaker_trips`` / ``breaker_rejections`` /
            ``breaker_probes``).
        event_log: optional shared list receiving ``(now, name, event)``.
    """

    def __init__(
        self,
        name: str = "target",
        *,
        clock: Clock | None = None,
        window_seconds: float = 60.0,
        failure_threshold: float = 0.5,
        min_volume: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        metrics: MetricsRegistry | None = None,
        event_log: list | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_volume < 1:
            raise ValueError(f"min_volume must be >= 1, got {min_volume}")
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self.window_seconds = window_seconds
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.metrics = metrics if metrics is not None else MetricsRegistry(name)
        self.event_log = event_log
        self._events: deque[tuple[float, bool]] = deque()
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._probes_used = 0
        self.trips = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state; lazily moves OPEN -> HALF_OPEN once the reset
        timeout has elapsed (read-only view, consumes no probe)."""
        self._maybe_half_open()
        return self._state

    @property
    def available(self) -> bool:
        """Non-consuming view: would a call currently be admitted?"""
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN:
            return self._probes_used < self.half_open_probes
        return False

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self.clock.now() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_used = 0
            self._log("half_open")

    def failure_ratio(self) -> float:
        self._prune(self.clock.now())
        if not self._events:
            return 0.0
        failures = sum(1 for __, ok in self._events if not ok)
        return failures / len(self._events)

    # -- call-site protocol --------------------------------------------------

    def allow(self) -> bool:
        """Admit or reject one call (consumes a probe while half-open)."""
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_used < self.half_open_probes:
                self._probes_used += 1
                self.metrics.counter("breaker_probes").inc()
                self._log("probe")
                return True
        self.metrics.counter("breaker_rejections").inc()
        return False

    def record_success(self) -> None:
        now = self.clock.now()
        self._events.append((now, True))
        self._prune(now)
        if self._state is BreakerState.HALF_OPEN:
            self._close()

    def record_failure(self) -> None:
        now = self.clock.now()
        self._events.append((now, False))
        self._prune(now)
        if self._state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        if self._state is BreakerState.CLOSED and len(self._events) >= self.min_volume:
            failures = sum(1 for __, ok in self._events if not ok)
            if failures / len(self._events) >= self.failure_threshold:
                self._trip(now)

    # -- transitions ---------------------------------------------------------

    def _trip(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._probes_used = 0
        self.trips += 1
        self.metrics.counter("breaker_trips").inc()
        self._log("trip")

    def _close(self) -> None:
        self._state = BreakerState.CLOSED
        self._events.clear()
        self._probes_used = 0
        self._log("close")

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def _log(self, event: str) -> None:
        if self.event_log is not None:
            self.event_log.append((self.clock.now(), self.name, event))

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state.value})"


class BreakerBoard:
    """A registry of per-target breakers sharing configuration and sinks.

    The distributed client, the DFS client, and the health tracker all key
    breakers by node name through one board, so a trip observed on the read
    path is immediately visible to the scheduler.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        **breaker_kwargs,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry("breakers")
        self.events: list[tuple[float, str, str]] = []
        self._breaker_kwargs = breaker_kwargs
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_target(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                clock=self.clock,
                metrics=self.metrics,
                event_log=self.events,
                **self._breaker_kwargs,
            )
            self._breakers[name] = breaker
        return breaker

    def __contains__(self, name: str) -> bool:
        return name in self._breakers

    def __len__(self) -> int:
        return len(self._breakers)

    def states(self) -> dict[str, str]:
        return {name: b.state.value for name, b in sorted(self._breakers.items())}

    def open_targets(self) -> set[str]:
        return {
            name
            for name, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        }

    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())
