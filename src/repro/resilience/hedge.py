"""Hedged reads: fire a backup request when the primary runs long.

The consistent-hashing lesson of Section 7 handles nodes that are *dead*;
hedging handles nodes that are *slow but alive* (a stalled SSD, a deep
device queue).  The policy tracks recent request latencies and derives a
percentile threshold; when a primary read's modelled latency exceeds the
threshold, a backup request is launched on the sim clock at the threshold
instant, and the request completes at::

    min(primary_latency, threshold + backup_latency)

which is exactly the tail-at-scale hedging formula under a virtual clock.
Counters: ``hedged_requests`` (backups launched), ``hedge_wins`` (backup
finished first), and ``hedge_errors`` (backup attempts that failed; the
primary result stood).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.core.metrics import MetricsRegistry
from repro.errors import ReproError


class HedgePolicy:
    """Latency-percentile hedging decision + completion-time arithmetic.

    Args:
        threshold_percentile: hedge when the primary exceeds this percentile
            of recently observed latencies (the classic choice is p95).
        min_observations: observations required before hedging arms; until
            then every read passes through unhedged.
        max_history: sliding window of latency observations kept.
        metrics: counter sink (``hedged_requests`` / ``hedge_wins``).
    """

    def __init__(
        self,
        *,
        threshold_percentile: float = 95.0,
        min_observations: int = 20,
        max_history: int = 4096,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0 < threshold_percentile < 100:
            raise ValueError(
                f"threshold_percentile must be in (0, 100), got {threshold_percentile}"
            )
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if max_history < min_observations:
            raise ValueError("max_history must be >= min_observations")
        self.threshold_percentile = threshold_percentile
        self.min_observations = min_observations
        self.metrics = metrics if metrics is not None else MetricsRegistry("hedge")
        self._history: deque[float] = deque(maxlen=max_history)
        self.hedged_requests = 0
        self.hedge_wins = 0
        self.hedge_errors = 0
        # bytes actually moved by cancelled hedge losers (kernel mode
        # measures the partial transfer; the analytic engine cannot)
        self.wasted_bytes = 0

    def record_cancelled(self, nbytes: int) -> None:
        """Account a cancelled loser's partially transferred bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.wasted_bytes += int(nbytes)
        self.metrics.counter("hedge_wasted_bytes").inc(int(nbytes))

    # -- observation ---------------------------------------------------------

    def observe(self, latency: float) -> None:
        """Feed one completed request's latency into the window."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self._history.append(latency)

    @property
    def observations(self) -> int:
        return len(self._history)

    def threshold(self) -> float | None:
        """Current hedge-trigger latency, or ``None`` while unarmed."""
        if len(self._history) < self.min_observations:
            return None
        return float(
            np.percentile(np.asarray(self._history), self.threshold_percentile)
        )

    def should_hedge(self, primary_latency: float) -> bool:
        threshold = self.threshold()
        return threshold is not None and primary_latency > threshold

    # -- completion arithmetic -----------------------------------------------

    def apply(
        self, primary_latency: float, backup: Callable[[], float]
    ) -> tuple[float, bool, bool]:
        """Resolve one read: returns ``(effective_latency, hedged, won)``.

        ``backup`` is invoked only when hedging triggers; it returns the
        backup request's modelled latency (or raises one of the modelled
        failure types, in which case the primary result stands and the
        failure is accounted under ``hedge_errors``).  The effective
        latency is the virtual time at which the *first* of the two copies
        completes.
        """
        threshold = self.threshold()
        if threshold is None or primary_latency <= threshold:
            self.observe(primary_latency)
            return primary_latency, False, False
        self.hedged_requests += 1
        self.metrics.counter("hedged_requests").inc()
        try:
            backup_latency = backup()
        except (ReproError, ConnectionError, TimeoutError) as exc:
            # backup target failed; the slow primary still serves the read,
            # and the degraded hedge is accounted (ERR001: no silent swallow)
            self.hedge_errors += 1
            self.metrics.counter("hedge_errors").inc()
            self.metrics.record_error("hedge_backup", exc)
            self.observe(primary_latency)
            return primary_latency, True, False
        effective = min(primary_latency, threshold + backup_latency)
        won = threshold + backup_latency < primary_latency
        if won:
            self.hedge_wins += 1
            self.metrics.counter("hedge_wins").inc()
        self.observe(effective)
        return effective, True, won
