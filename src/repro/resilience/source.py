"""``ResilientDataSource``: retry + breaker + hedging around any source.

This is the wrapper the remote-read paths put between themselves and an
unreliable backend (object store, synthetic lake, DFS).  Per request it:

1. consults the breaker -- an open breaker is recorded as degraded-mode
   operation, and (because remote storage is the *final* fallback, with
   nothing behind it) the request is still attempted rather than rejected;
2. attempts the read under the retry policy: transient failures
   (:class:`~repro.errors.RemoteReadError`, ``ConnectionError``) back off
   exponentially with deterministic jitter, charged as virtual latency;
   an attempt whose modelled latency exceeds the per-attempt deadline is
   abandoned at the deadline and retried;
3. optionally hedges the winning attempt through a
   :class:`~repro.resilience.hedge.HedgePolicy`.

``FileNotFoundInStorageError`` is permanent and never retried.  All
outcomes are observable: ``retries`` / ``retry_exhausted`` /
``degraded_serves`` counters plus per-operation error breakdowns.
"""

from __future__ import annotations

from repro.core.metrics import MetricsRegistry
from repro.errors import RemoteReadError, RetriesExhaustedError
from repro.obs.tracer import current_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.hedge import HedgePolicy
from repro.resilience.policy import RetryPolicy
from repro.sim.kernel import (
    Cancelled,
    Timeout,
    any_of,
    collecting_io,
    current_kernel,
    defer_io,
    io_collection_active,
    replay_plan,
)
from repro.sim.rng import RngStream
from repro.storage.remote import DataSource, ReadResult

_RETRYABLE = (RemoteReadError, ConnectionError)


class ResilientDataSource:
    """A ``DataSource`` that survives transient backend failures."""

    def __init__(
        self,
        inner: DataSource,
        *,
        policy: RetryPolicy | None = None,
        rng: RngStream | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
        metrics: MetricsRegistry | None = None,
        operation: str = "remote_read",
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng if rng is not None else RngStream(0, "resilience/retry")
        self.breaker = breaker
        self.hedge = hedge
        self.metrics = metrics if metrics is not None else MetricsRegistry("resilient-source")
        self.operation = operation
        # side channels for latency attribution (read by the cache manager
        # after each call): backoff folded into the returned latency, and
        # queueing/throttle wait reported by the inner source
        self.last_retry_backoff = 0.0
        self.last_queue_wait = 0.0

    def file_length(self, file_id: str) -> int:
        return self.inner.file_length(file_id)

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        if io_collection_active():
            return self._read_collected(file_id, offset, length)
        policy = self.policy
        span = current_tracer().current()
        breaker_open = self.breaker is not None and not self.breaker.allow()
        if breaker_open:
            span.event("breaker_open", operation=self.operation)
        extra_latency = 0.0
        self.last_retry_backoff = 0.0
        self.last_queue_wait = 0.0
        last_exc: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = self.inner.read(file_id, offset, length)
            except _RETRYABLE as exc:
                last_exc = exc
                self.metrics.record_error(self.operation, exc)
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt < policy.max_attempts:
                    self.metrics.counter("retries").inc()
                    extra_latency += policy.backoff(attempt, self.rng)
                    span.event(
                        "retry", attempt=attempt, error=type(exc).__name__
                    )
                continue
            if (
                policy.attempt_timeout is not None
                and result.latency > policy.attempt_timeout
                and attempt < policy.max_attempts
            ):
                # the attempt ran past its deadline: abandon it there and
                # retry (the abandoned attempt cost exactly the deadline)
                self.metrics.record_error(self.operation, "AttemptDeadlineExceeded")
                if self.breaker is not None:
                    self.breaker.record_failure()
                self.metrics.counter("retries").inc()
                extra_latency += policy.attempt_timeout + policy.backoff(
                    attempt, self.rng
                )
                span.event("retry", attempt=attempt, error="AttemptDeadlineExceeded")
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            latency = result.latency
            if self.hedge is not None:
                latency, hedged, hedge_won = self.hedge.apply(
                    latency,
                    lambda: self._hedged_backup(file_id, offset, length),
                )
                if hedged:
                    span.event("hedge", won=hedge_won)
            if attempt > 1 or breaker_open:
                self.metrics.counter("degraded_serves").inc()
            self.last_retry_backoff = extra_latency
            self.last_queue_wait = getattr(self.inner, "last_queue_wait", 0.0)
            return ReadResult(data=result.data, latency=extra_latency + latency)
        self.metrics.counter("retry_exhausted").inc()
        span.event("retries_exhausted", attempts=policy.max_attempts)
        raise RetriesExhaustedError(
            f"{self.operation} of {file_id!r} failed after "
            f"{policy.max_attempts} attempts"
        ) from last_exc

    def _hedged_backup(self, file_id: str, offset: int, length: int) -> float:
        """Backup attempt for the hedge policy, traced as speculative work.

        The ``hedge_attempt`` attr excludes the subtree from latency
        attribution -- only ``min(primary, threshold + backup)`` lands on
        the serving path.
        """
        tracer = current_tracer()
        with tracer.span("hedge_attempt", actor=self.operation, hedge_attempt=True):
            return self.inner.read(file_id, offset, length).latency

    # -- kernel mode ---------------------------------------------------------
    #
    # Under IO collection the retry loop still runs *synchronously* at the
    # arrival instant (so chaos dice, breaker state, and counters resolve
    # exactly as in analytic mode and the returned data is final), but the
    # time cost is deferred: one composite replay op re-experiences failed
    # attempts, sleeps backoffs on kernel timers, and runs the winning
    # attempt as a real process -- optionally racing a hedge backup that is
    # cancelled mid-flight when it loses.

    def _read_collected(self, file_id: str, offset: int, length: int) -> ReadResult:
        policy = self.policy
        span = current_tracer().current()
        breaker_open = self.breaker is not None and not self.breaker.allow()
        if breaker_open:
            span.event("breaker_open", operation=self.operation)
        self.last_retry_backoff = 0.0
        self.last_queue_wait = 0.0
        failed: list[tuple[list, float]] = []
        last_exc: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            subplan: list = []
            try:
                with collecting_io(subplan):
                    result = self.inner.read(file_id, offset, length)
            except _RETRYABLE as exc:
                last_exc = exc
                self.metrics.record_error(self.operation, exc)
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt < policy.max_attempts:
                    self.metrics.counter("retries").inc()
                    backoff = policy.backoff(attempt, self.rng)
                    span.event(
                        "retry", attempt=attempt, error=type(exc).__name__
                    )
                    failed.append((subplan, backoff))
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            if attempt > 1 or breaker_open:
                self.metrics.counter("degraded_serves").inc()
            defer_io(
                self._resilient_op(file_id, offset, length, failed, subplan, attempt)
            )
            return ReadResult(data=result.data, latency=0.0)
        self.metrics.counter("retry_exhausted").inc()
        span.event("retries_exhausted", attempts=policy.max_attempts)
        raise RetriesExhaustedError(
            f"{self.operation} of {file_id!r} failed after "
            f"{policy.max_attempts} attempts"
        ) from last_exc

    def _resilient_op(
        self,
        file_id: str,
        offset: int,
        length: int,
        failed: list[tuple[list, float]],
        winner_plan: list,
        attempt_no: int,
    ):
        """Composite replay op: failed attempts' IO, backoff timers, then
        the winning attempt (deadline-capped or hedge-raced)."""

        def op():
            span = current_tracer().current()
            clock = current_kernel().clock
            start = clock.now()
            backoff_total = 0.0
            for subplan, backoff in failed:
                # a failed attempt's partial IO (ops deferred before the
                # failure raised) is real wasted time on the serving path
                yield from replay_plan(subplan)
                if backoff > 0:
                    yield Timeout(backoff)
                    span.charge("retry_backoff", backoff)
                    backoff_total += backoff
            if self.hedge is not None:
                yield from self._hedged_replay(
                    file_id, offset, length, winner_plan, span
                )
            else:
                yield from self._deadline_replay(
                    file_id, offset, length, winner_plan, attempt_no, span
                )
            return clock.now() - start

        return op

    @staticmethod
    def _plan_proc(plan: list):
        """Process body that replays one attempt's collected IO plan."""
        elapsed = yield from replay_plan(plan)
        return elapsed

    def _deadline_replay(
        self,
        file_id: str,
        offset: int,
        length: int,
        plan: list,
        attempt_no: int,
        span,
    ):
        """Replay the winning attempt under the per-attempt deadline.

        The analytic engine compares a *derived* latency against the
        deadline; here the attempt runs as a process raced against a
        kernel timer and is cancelled mid-flight on expiry, after which a
        fresh attempt is collected at the current instant and retried.
        If a replay-time re-attempt fails (fresh chaos dice) or attempts
        run out, the original winning plan is replayed uncapped -- the
        caller already holds its data.
        """
        policy = self.policy
        kernel = current_kernel()
        while True:
            if policy.attempt_timeout is None or attempt_no >= policy.max_attempts:
                elapsed = yield from replay_plan(plan)
                return elapsed
            proc = kernel.spawn(
                self._plan_proc(plan),
                name=f"{self.operation}/attempt-{attempt_no}",
            )
            timer = kernel.timer(policy.attempt_timeout)
            try:
                yield any_of(proc, timer)
            except Cancelled:
                # the read itself was cancelled mid-race: reap the attempt
                # and the deadline timer, or they run on as orphans -- the
                # attempt holding a device/connection slot, the timer
                # keeping the kernel awake (any_of losers are not reaped)
                proc.cancel("deadline race cancelled")
                timer.cancel()
                raise
            if proc.done:
                timer.cancel()
                if proc.exception is not None:
                    raise proc.exception
                return proc.value
            proc.cancel("attempt deadline")
            self.metrics.record_error(self.operation, "AttemptDeadlineExceeded")
            if self.breaker is not None:
                self.breaker.record_failure()
            self.metrics.counter("retries").inc()
            backoff = policy.backoff(attempt_no, self.rng)
            span.event("retry", attempt=attempt_no, error="AttemptDeadlineExceeded")
            if backoff > 0:
                yield Timeout(backoff)
                span.charge("retry_backoff", backoff)
            attempt_no += 1
            subplan: list = []
            try:
                with collecting_io(subplan):
                    self.inner.read(file_id, offset, length)
            except _RETRYABLE as exc:
                self.metrics.record_error(self.operation, exc)
                if self.breaker is not None:
                    self.breaker.record_failure()
                # fall through with the original plan; the next loop
                # iteration may still race it against the deadline
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            plan = subplan

    def _hedged_replay(
        self,
        file_id: str,
        offset: int,
        length: int,
        plan: list,
        span,
    ):
        """Race the winning attempt against a hedge backup, for real.

        The primary replays as a process.  If it outlives the hedge
        threshold, a backup process launches (collecting a *fresh* inner
        read at that instant) and whichever finishes second is cancelled
        mid-flight -- its partially moved bytes land in
        ``HedgePolicy.wasted_bytes``.  When hedging is configured the
        per-attempt deadline is not applied; the hedge is the tail guard.
        """
        hedge = self.hedge
        kernel = current_kernel()
        clock = kernel.clock
        start = clock.now()
        primary = kernel.spawn(
            self._plan_proc(plan), name=f"{self.operation}/hedge-primary"
        )
        timer = None
        backup = None
        try:
            threshold = hedge.threshold()
            if threshold is None:
                yield primary
                elapsed = clock.now() - start
                hedge.observe(elapsed)
                return elapsed
            timer = kernel.timer(threshold)
            yield any_of(primary, timer)
            if primary.done:
                timer.cancel()
                if primary.exception is not None:
                    raise primary.exception
                elapsed = clock.now() - start
                hedge.observe(elapsed)
                return elapsed
            hedge.hedged_requests += 1
            hedge.metrics.counter("hedged_requests").inc()
            backup = kernel.spawn(
                self._backup_proc(file_id, offset, length),
                name=f"{self.operation}/hedge-backup",
            )
            yield any_of(primary, backup)
            if backup.done and backup.exception is not None and not backup.cancelled:
                # backup target failed; the slow primary still serves the read
                hedge.hedge_errors += 1
                hedge.metrics.counter("hedge_errors").inc()
                hedge.metrics.record_error("hedge_backup", backup.exception)
                if not primary.done:
                    yield primary
                elapsed = clock.now() - start
                hedge.observe(elapsed)
                span.event("hedge", won=False)
                return elapsed
            won = backup.done and not primary.done
            loser = primary if won else backup
            if not loser.done:
                loser.cancel("hedge loser")
                hedge.record_cancelled(loser.wasted_bytes)
            if won:
                hedge.hedge_wins += 1
                hedge.metrics.counter("hedge_wins").inc()
            elapsed = clock.now() - start
            hedge.observe(elapsed)
            span.event("hedge", won=won)
            return elapsed
        except Cancelled:
            # the read itself was cancelled mid-race: reap whichever race
            # members are still in flight (the kernel deliberately leaves
            # any_of losers running, so without this they orphan -- the
            # attempts keep their device/connection slots, the hedge timer
            # keeps the kernel awake)
            if not primary.done:
                primary.cancel("hedge race cancelled")
            if timer is not None:
                timer.cancel()
            if backup is not None and not backup.done:
                backup.cancel("hedge race cancelled")
            raise

    def _backup_proc(self, file_id: str, offset: int, length: int):
        """Hedge backup process: fresh inner read, collected then replayed.

        Collection happens at launch time (the threshold instant), so
        chaos dice and token-bucket state resolve exactly when the backup
        actually fires.  The ``hedge_attempt`` span attr keeps the
        subtree off the serving-path attribution.
        """
        tracer = current_tracer()
        with tracer.span(
            "hedge_attempt", actor=self.operation, hedge_attempt=True
        ):
            subplan: list = []
            with collecting_io(subplan):
                self.inner.read(file_id, offset, length)
            elapsed = yield from replay_plan(subplan)
        return elapsed

    def read_proc(self, file_id: str, offset: int, length: int):
        """Kernel-process entry point: collect this read, then live it.

        ``yield from`` inside a kernel process; returns a
        :class:`ReadResult` whose latency is measured wall time.
        """
        plan: list = []
        with collecting_io(plan):
            result = self.read(file_id, offset, length)
        latency = yield from replay_plan(plan)
        return ReadResult(data=result.data, latency=latency)
