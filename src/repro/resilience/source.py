"""``ResilientDataSource``: retry + breaker + hedging around any source.

This is the wrapper the remote-read paths put between themselves and an
unreliable backend (object store, synthetic lake, DFS).  Per request it:

1. consults the breaker -- an open breaker is recorded as degraded-mode
   operation, and (because remote storage is the *final* fallback, with
   nothing behind it) the request is still attempted rather than rejected;
2. attempts the read under the retry policy: transient failures
   (:class:`~repro.errors.RemoteReadError`, ``ConnectionError``) back off
   exponentially with deterministic jitter, charged as virtual latency;
   an attempt whose modelled latency exceeds the per-attempt deadline is
   abandoned at the deadline and retried;
3. optionally hedges the winning attempt through a
   :class:`~repro.resilience.hedge.HedgePolicy`.

``FileNotFoundInStorageError`` is permanent and never retried.  All
outcomes are observable: ``retries`` / ``retry_exhausted`` /
``degraded_serves`` counters plus per-operation error breakdowns.
"""

from __future__ import annotations

from repro.core.metrics import MetricsRegistry
from repro.errors import RemoteReadError, RetriesExhaustedError
from repro.obs.tracer import current_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.hedge import HedgePolicy
from repro.resilience.policy import RetryPolicy
from repro.sim.rng import RngStream
from repro.storage.remote import DataSource, ReadResult

_RETRYABLE = (RemoteReadError, ConnectionError)


class ResilientDataSource:
    """A ``DataSource`` that survives transient backend failures."""

    def __init__(
        self,
        inner: DataSource,
        *,
        policy: RetryPolicy | None = None,
        rng: RngStream | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
        metrics: MetricsRegistry | None = None,
        operation: str = "remote_read",
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng if rng is not None else RngStream(0, "resilience/retry")
        self.breaker = breaker
        self.hedge = hedge
        self.metrics = metrics if metrics is not None else MetricsRegistry("resilient-source")
        self.operation = operation
        # side channels for latency attribution (read by the cache manager
        # after each call): backoff folded into the returned latency, and
        # queueing/throttle wait reported by the inner source
        self.last_retry_backoff = 0.0
        self.last_queue_wait = 0.0

    def file_length(self, file_id: str) -> int:
        return self.inner.file_length(file_id)

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        policy = self.policy
        span = current_tracer().current()
        breaker_open = self.breaker is not None and not self.breaker.allow()
        if breaker_open:
            span.event("breaker_open", operation=self.operation)
        extra_latency = 0.0
        self.last_retry_backoff = 0.0
        self.last_queue_wait = 0.0
        last_exc: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = self.inner.read(file_id, offset, length)
            except _RETRYABLE as exc:
                last_exc = exc
                self.metrics.record_error(self.operation, exc)
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt < policy.max_attempts:
                    self.metrics.counter("retries").inc()
                    extra_latency += policy.backoff(attempt, self.rng)
                    span.event(
                        "retry", attempt=attempt, error=type(exc).__name__
                    )
                continue
            if (
                policy.attempt_timeout is not None
                and result.latency > policy.attempt_timeout
                and attempt < policy.max_attempts
            ):
                # the attempt ran past its deadline: abandon it there and
                # retry (the abandoned attempt cost exactly the deadline)
                self.metrics.record_error(self.operation, "AttemptDeadlineExceeded")
                if self.breaker is not None:
                    self.breaker.record_failure()
                self.metrics.counter("retries").inc()
                extra_latency += policy.attempt_timeout + policy.backoff(
                    attempt, self.rng
                )
                span.event("retry", attempt=attempt, error="AttemptDeadlineExceeded")
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            latency = result.latency
            if self.hedge is not None:
                latency, hedged, hedge_won = self.hedge.apply(
                    latency,
                    lambda: self._hedged_backup(file_id, offset, length),
                )
                if hedged:
                    span.event("hedge", won=hedge_won)
            if attempt > 1 or breaker_open:
                self.metrics.counter("degraded_serves").inc()
            self.last_retry_backoff = extra_latency
            self.last_queue_wait = getattr(self.inner, "last_queue_wait", 0.0)
            return ReadResult(data=result.data, latency=extra_latency + latency)
        self.metrics.counter("retry_exhausted").inc()
        span.event("retries_exhausted", attempts=policy.max_attempts)
        raise RetriesExhaustedError(
            f"{self.operation} of {file_id!r} failed after "
            f"{policy.max_attempts} attempts"
        ) from last_exc

    def _hedged_backup(self, file_id: str, offset: int, length: int) -> float:
        """Backup attempt for the hedge policy, traced as speculative work.

        The ``hedge_attempt`` attr excludes the subtree from latency
        attribution -- only ``min(primary, threshold + backup)`` lands on
        the serving path.
        """
        tracer = current_tracer()
        with tracer.span("hedge_attempt", actor=self.operation, hedge_attempt=True):
            return self.inner.read(file_id, offset, length).latency
