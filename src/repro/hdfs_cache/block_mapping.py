"""The in-memory block -> cache-entry mapping (Section 6.2.3, "delete a block").

"To improve the efficiency and delete outdated cache entries more timely,
we introduced an in-memory mapping within each DataNode ... of the form
``<blockId, (cacheId, fileLength)>``, where fileLength helps compute the
relevant page files."  The mapping is volatile: a DataNode restart loses
it, and the compromise the paper adopts is to clear the whole cache and
rebuild from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MappingEntry:
    """Where a block's cached copy lives and how big it is."""

    cache_id: str
    file_length: int

    def page_count(self, page_size: int) -> int:
        """How many page files the cached block occupies (the computation
        ``fileLength`` exists to enable)."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        return -(-self.file_length // page_size)  # ceil division


class BlockMapping:
    """Volatile ``blockId -> MappingEntry`` map."""

    def __init__(self) -> None:
        self._entries: dict[int, MappingEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    def record(self, block_id: int, cache_id: str, file_length: int) -> None:
        self._entries[block_id] = MappingEntry(cache_id, file_length)

    def lookup(self, block_id: int) -> MappingEntry | None:
        return self._entries.get(block_id)

    def remove(self, block_id: int) -> MappingEntry | None:
        return self._entries.pop(block_id, None)

    def clear(self) -> None:
        """Forget everything (what a process restart does)."""
        self._entries.clear()

    def cache_ids(self) -> list[str]:
        return [entry.cache_id for entry in self._entries.values()]
