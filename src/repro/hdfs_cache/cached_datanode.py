"""A DataNode wrapped with the Alluxio local cache (Figure 11).

Read workflow for a block request:

1. If the block's current version is cached (SSD), serve it from the cache
   -- both the block bytes and its checksum meta travel together (the
   all-or-nothing rule).
2. Otherwise the **cache rate limiter** records the access; a block that
   has been accessed more than X times in the past Y minutes is deemed
   cache-worthy, loaded into the cache (one full HDD read + SSD write), and
   served.
3. Anything else takes the non-cache read path straight to the HDD, whose
   single channel is where blocked processes pile up.

Snapshot isolation across appends comes from the cache key
``blk_<id>@gs<stamp>``: an in-flight append creates a *new* generation, so
readers of the old stamp keep hitting the old cache entry, and the new
version becomes a distinct entry on first admission (Section 6.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission.rate_limiter import BucketTimeRateLimit
from repro.core.config import CacheConfig, CacheDirectory, GIB
from repro.core.metrics import MetricsRegistry
from repro.errors import BlockNotFoundError
from repro.hdfs_cache.block_mapping import BlockMapping
from repro.obs.tracer import current_tracer
from repro.service.sim_transport import build_sim_cache
from repro.sim.clock import Clock
from repro.sim.kernel import (
    collecting_io,
    current_kernel,
    defer_io,
    io_collection_active,
    replay_plan,
)
from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.hdfs.block import BlockId
from repro.storage.hdfs.datanode import DataNode
from repro.storage.remote import ReadResult


@dataclass(frozen=True, slots=True)
class CachedReadResult:
    """One block read and where its bytes came from."""

    data: bytes
    latency: float
    from_cache: bool


@dataclass(slots=True)
class TrafficSample:
    """One data point for the cache-vs-non-cache rate series (Figure 13)."""

    timestamp: float
    bytes_read: int
    from_cache: bool


class _DataNodeSource:
    """Adapts the underlying DataNode's HDD to the cache's ``DataSource``
    interface, keyed by the versioned cache id."""

    def __init__(self, owner: "CachedDataNode") -> None:
        self._owner = owner
        # HDD queue wait of the last read, forwarded for latency attribution
        self.last_queue_wait = 0.0

    def file_length(self, file_id: str) -> int:
        identity = self._owner._identity_of(file_id)
        return self._owner.datanode.block_length(identity) + self._owner._meta_size(
            identity
        )

    def read(self, file_id: str, offset: int, length: int) -> ReadResult:
        identity = self._owner._identity_of(file_id)
        result = self._owner._read_block_and_meta(identity, offset, length)
        self.last_queue_wait = self._owner.datanode.device.last_wait
        return result


class CachedDataNode:
    """DataNode + embedded local cache + BucketTimeRateLimit admission."""

    def __init__(
        self,
        datanode: DataNode,
        *,
        clock: Clock,
        cache_capacity_bytes: int = 2 * GIB,
        page_size: int = 1024 * 1024,
        rate_limiter: BucketTimeRateLimit | None = None,
        ssd_profile: DeviceProfile | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.datanode = datanode
        self.clock = clock
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(datanode.name)
        )
        self.rate_limiter = (
            rate_limiter
            if rate_limiter is not None
            else BucketTimeRateLimit(threshold=15, window_buckets=10)
        )
        self.ssd = StorageDevice(
            ssd_profile if ssd_profile is not None else DeviceProfile.ssd_local(),
            clock,
            service_bucket="cache_ssd",
        )
        config = CacheConfig(
            page_size=page_size,
            directories=[CacheDirectory(f"/{datanode.name}/ssd0", cache_capacity_bytes)],
        )
        self.cache = build_sim_cache(
            config,
            clock=clock,
            device=self.ssd,
            metrics=self.metrics,
        )
        self.mapping = BlockMapping()
        self._source = _DataNodeSource(self)
        self._identities: dict[str, BlockId] = {}
        self.enabled = True
        self.traffic: list[TrafficSample] = []

    def attach_kernel(self, kernel) -> "CachedDataNode":
        """Bind both devices (HDD, cache SSD) to an event kernel.

        Kernel-mode reads (:meth:`read_block_proc`) then block in real
        device FIFOs; the HDD exports live ``device_queue_depth`` /
        ``blocked_processes`` gauges through this node's registry.
        """
        self.datanode.device.attach_kernel(kernel)
        self.datanode.device.metrics = self.metrics
        self.ssd.attach_kernel(kernel)
        return self

    # -- identity plumbing ----------------------------------------------------

    def _register(self, identity: BlockId) -> str:
        key = identity.cache_key()
        self._identities[key] = identity
        return key

    def _identity_of(self, cache_id: str) -> BlockId:
        try:
            return self._identities[cache_id]
        except KeyError:
            raise BlockNotFoundError(cache_id) from None

    def _meta_size(self, identity: BlockId) -> int:
        block = self.datanode._get(identity)
        return block.meta.size_bytes

    def _read_block_and_meta(
        self, identity: BlockId, offset: int, length: int
    ) -> ReadResult:
        """Serve the concatenated (block || meta) image off the HDD.

        Caching the pair as one image keeps the block file and its checksum
        meta file inseparable, the paper's reliability rule.
        """
        block = self.datanode._get(identity)
        meta_blob = b"META" + bytes(
            b
            for checksum in block.meta.checksums
            for b in checksum.to_bytes(4, "big")
        )
        meta_blob = meta_blob[: block.meta.size_bytes].ljust(block.meta.size_bytes, b"\0")
        image = block.data + meta_blob
        data = image[offset : offset + length]
        latency = self.datanode.device.read(len(data))
        return ReadResult(data=data, latency=latency)

    # -- the read path -------------------------------------------------------------

    def read_block(
        self, identity: BlockId, offset: int = 0, length: int | None = None
    ) -> CachedReadResult:
        """Read a block range through the Figure-11 workflow."""
        tracer = current_tracer()
        with tracer.span(
            "block_read", actor=self.datanode.name, block=str(identity)
        ) as span:
            result = self._read_block(identity, offset, length, span)
            span.annotate("latency", result.latency)
            span.annotate("from_cache", result.from_cache)
            return result

    def read_block_proc(
        self, identity: BlockId, offset: int = 0, length: int | None = None
    ):
        """Kernel-mode block read: decisions at the arrival instant, waits
        experienced.

        The Figure-11 workflow (mapping lookup, admission, eviction) runs
        synchronously exactly as in :meth:`read_block`, under deferred-I/O
        collection; the calling process then replays the collected device
        transfers, genuinely blocking in the HDD/SSD FIFO queues, and the
        result's latency is *measured* from the virtual clock.  Replay the
        generator with ``yield from`` inside a kernel process.
        """
        tracer = current_tracer()
        with tracer.span(
            "block_read", actor=self.datanode.name, block=str(identity)
        ) as span:
            start = self.clock.now()
            plan: list = []
            with collecting_io(plan):
                result = self._read_block(identity, offset, length, span)
            yield from replay_plan(plan)
            latency = self.clock.now() - start
            span.annotate("latency", latency)
            span.annotate("from_cache", result.from_cache)
            return CachedReadResult(
                data=result.data, latency=latency, from_cache=result.from_cache
            )

    def _read_block(
        self, identity: BlockId, offset: int, length: int | None, span
    ) -> CachedReadResult:
        if length is None:
            length = self.datanode.block_length(identity) - offset
        if not self.enabled:
            return self._non_cache_read(identity, offset, length)

        key = self._register(identity)
        now = self.clock.now()
        cached = self.mapping.lookup(identity.block_id)
        if cached is not None and cached.cache_id == key:
            return self._cache_read(identity, key, offset, length)
        if cached is not None and cached.cache_id != key:
            # A newer generation superseded the cached one: drop the stale
            # entry; the new version competes for admission like any block.
            self._purge_cache_entry(identity.block_id)

        if self.rate_limiter.record_and_check(str(identity.block_id), now):
            span.event("cache_load", block=str(identity))
            self._load_into_cache(identity, key)
            return self._cache_read(identity, key, offset, length)
        return self._non_cache_read(identity, offset, length)

    def _cache_read(
        self, identity: BlockId, key: str, offset: int, length: int
    ) -> CachedReadResult:
        result = self.cache.read(key, offset, length, self._source)
        now = self.clock.now()
        # bytes are attributed to their true origin: pages the cache had to
        # read through from the HDD count as non-cache traffic (this is the
        # split Figure 13 plots)
        if result.bytes_from_cache:
            self.traffic.append(
                TrafficSample(now, result.bytes_from_cache, from_cache=True)
            )
        if result.bytes_from_remote:
            self.traffic.append(
                TrafficSample(now, result.bytes_from_remote, from_cache=False)
            )
        if result.fallbacks:
            # the cache timed out / errored and the HDD bailed it out --
            # served, but in degraded mode
            self.metrics.counter("degraded_serves").inc()
        return CachedReadResult(
            data=result.data, latency=result.latency, from_cache=True
        )

    def _non_cache_read(
        self, identity: BlockId, offset: int, length: int
    ) -> CachedReadResult:
        result = self.datanode.read_block(identity, offset, length)
        self.traffic.append(
            TrafficSample(self.clock.now(), len(result.data), from_cache=False)
        )
        return CachedReadResult(
            data=result.data, latency=result.latency, from_cache=False
        )

    def _load_into_cache(self, identity: BlockId, key: str) -> None:
        """Admit the whole (block || meta) image into the SSD cache.

        The load's latency is not charged to the triggering read (the
        reader is served from the freshly warmed cache); the ``off_path``
        attr keeps its charges out of that read's latency attribution.
        """
        tracer = current_tracer()
        with tracer.span(
            "cache_load", actor=self.datanode.name, off_path=True
        ):
            total = self._source.file_length(key)
            if io_collection_active():
                # kernel mode: the load's device transfers must not extend
                # the triggering read (it is served from the warmed cache),
                # but they *do* compete for the HDD/SSD -- collect them in
                # a sub-plan and replay it in a background process.
                subplan: list = []
                with collecting_io(subplan):
                    self.cache.read(key, 0, total, self._source)

                def _spawn_load(subplan: list = subplan) -> float:
                    def load_proc():
                        with current_tracer().span(
                            "cache_load_io", actor=self.datanode.name, off_path=True
                        ):
                            yield from replay_plan(subplan)

                    current_kernel().spawn(
                        load_proc(), name=f"cache-load/{self.datanode.name}"
                    )
                    return 0.0

                defer_io(_spawn_load)
            else:
                self.cache.read(key, 0, total, self._source)
        self.mapping.record(identity.block_id, key, total)

    # -- mutations the cache must track ----------------------------------------------

    def on_block_deleted(self, block_id: int) -> bool:
        """Purge the cached copy when HDFS deletes the block (the in-memory
        mapping makes this immediate rather than waiting for a TTL sweep)."""
        return self._purge_cache_entry(block_id)

    def _purge_cache_entry(self, block_id: int) -> bool:
        entry = self.mapping.remove(block_id)
        if entry is None:
            return False
        self.cache.delete_file(entry.cache_id)
        return True

    def restart(self) -> None:
        """Process restart: the in-memory mapping is lost, so the DataNode
        clears all local cached contents and rebuilds from the ground up
        (the paper's "viable compromise")."""
        self.datanode.restart()
        self.mapping.clear()
        for directory in range(len(self.cache.config.directories)):
            self.cache.delete_dir(directory)
        self._identities.clear()

    def set_enabled(self, enabled: bool) -> None:
        """Toggle the cache (Figure 14 disables it mid-experiment)."""
        self.enabled = enabled

    # -- reporting --------------------------------------------------------------------

    def traffic_rates(
        self, bucket_seconds: float = 60.0
    ) -> tuple[dict[int, int], dict[int, int]]:
        """Per-bucket byte counts: ``(cache_bytes, non_cache_bytes)``
        -- the two series of Figure 13."""
        cache_series: dict[int, int] = {}
        other_series: dict[int, int] = {}
        for sample in self.traffic:
            bucket = int(sample.timestamp // bucket_seconds)
            series = cache_series if sample.from_cache else other_series
            series[bucket] = series.get(bucket, 0) + sample.bytes_read
        return cache_series, other_series

    @property
    def cache_hit_bytes(self) -> int:
        return sum(s.bytes_read for s in self.traffic if s.from_cache)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_read for s in self.traffic)
