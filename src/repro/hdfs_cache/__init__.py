"""The HDFS local cache (Section 6.2): Alluxio local cache in a DataNode.

:class:`~repro.hdfs_cache.cached_datanode.CachedDataNode` wraps a
:class:`~repro.storage.hdfs.datanode.DataNode` with:

- a :class:`~repro.core.cache_manager.LocalCacheManager` over a simulated
  local SSD (hot blocks move from the bandwidth-starved HDD to the SSD),
- the :class:`~repro.core.admission.rate_limiter.BucketTimeRateLimit`
  cache rate limiter (admit a block after X accesses in Y minutes),
- block+meta *pair* caching under a ``(blockId, generationStamp)`` cache
  key for snapshot isolation across appends,
- the in-memory ``<blockId -> (cacheId, fileLength)>`` mapping used to
  purge cache entries on block deletion, rebuilt from scratch (by wiping
  the cache) on DataNode restart.
"""

from repro.hdfs_cache.block_mapping import BlockMapping, MappingEntry
from repro.hdfs_cache.cached_datanode import CachedDataNode, CachedReadResult

__all__ = [
    "CachedDataNode",
    "CachedReadResult",
    "BlockMapping",
    "MappingEntry",
]
