"""Reproduction of *Data Caching for Enterprise-Grade Petabyte-Scale OLAP*
(Tang et al., USENIX ATC 2024).

The package implements the Alluxio local (edge) cache -- the paper's
contribution -- together with every substrate its evaluation depends on:

- :mod:`repro.core` -- the local cache (page store, indexed-set metastore,
  admission, hierarchical quotas, pluggable eviction, metrics).
- :mod:`repro.sim` -- the discrete-event kernel (virtual clock, event loop,
  seeded RNG streams).
- :mod:`repro.storage` -- device models, an S3-like object store, and an
  HDFS subset (NameNode / DataNodes / generation stamps).
- :mod:`repro.format` -- a simplified Parquet/ORC-like columnar container.
- :mod:`repro.presto` -- a Presto simulator with soft-affinity scheduling
  and per-query runtime stats.
- :mod:`repro.hdfs_cache` -- the HDFS DataNode local cache with
  ``BucketTimeRateLimit`` admission.
- :mod:`repro.workload` -- Zipfian traces, fragmented-read distributions,
  and TPC-DS-shaped query templates.
- :mod:`repro.analysis` -- percentile/time-series helpers and report tables.

Quickstart::

    from repro.core import LocalCacheManager, CacheConfig, CacheScope
    from repro.storage import SyntheticDataSource

    source = SyntheticDataSource()
    source.add_file("warehouse/orders/part-0.parquet", 8 * 1024 * 1024)
    cache = LocalCacheManager(CacheConfig.small(32 * 1024 * 1024))
    result = cache.read("warehouse/orders/part-0.parquet", 0, 4096, source)
    assert result.page_misses == 1      # cold read went to the source
    again = cache.read("warehouse/orders/part-0.parquet", 0, 4096, source)
    assert again.fully_cached           # warm read served locally
"""

# Convenience exports resolve lazily (PEP 562) so that importing one layer
# does not drag in the others -- in particular, the transport-agnostic cache
# core (repro.core) must be importable without loading the simulation
# substrate (DESIGN.md §14).
_EXPORTS = {
    "CacheConfig": "repro.core",
    "CacheDirectory": "repro.core",
    "CacheReadResult": "repro.core",
    "CacheScope": "repro.core",
    "LocalCacheManager": "repro.core",
    "MetricsRegistry": "repro.core",
    "PageId": "repro.core",
    "QuotaManager": "repro.core",
    "EventLoop": "repro.sim",
    "SimClock": "repro.ports",
    "RngStream": "repro.ports",
}

__version__ = "1.0.0"


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "LocalCacheManager",
    "CacheReadResult",
    "CacheConfig",
    "CacheDirectory",
    "CacheScope",
    "PageId",
    "QuotaManager",
    "MetricsRegistry",
    "SimClock",
    "EventLoop",
    "RngStream",
    "__version__",
]
