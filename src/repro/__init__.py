"""Reproduction of *Data Caching for Enterprise-Grade Petabyte-Scale OLAP*
(Tang et al., USENIX ATC 2024).

The package implements the Alluxio local (edge) cache -- the paper's
contribution -- together with every substrate its evaluation depends on:

- :mod:`repro.core` -- the local cache (page store, indexed-set metastore,
  admission, hierarchical quotas, pluggable eviction, metrics).
- :mod:`repro.sim` -- the discrete-event kernel (virtual clock, event loop,
  seeded RNG streams).
- :mod:`repro.storage` -- device models, an S3-like object store, and an
  HDFS subset (NameNode / DataNodes / generation stamps).
- :mod:`repro.format` -- a simplified Parquet/ORC-like columnar container.
- :mod:`repro.presto` -- a Presto simulator with soft-affinity scheduling
  and per-query runtime stats.
- :mod:`repro.hdfs_cache` -- the HDFS DataNode local cache with
  ``BucketTimeRateLimit`` admission.
- :mod:`repro.workload` -- Zipfian traces, fragmented-read distributions,
  and TPC-DS-shaped query templates.
- :mod:`repro.analysis` -- percentile/time-series helpers and report tables.

Quickstart::

    from repro.core import LocalCacheManager, CacheConfig, CacheScope
    from repro.storage import SyntheticDataSource

    source = SyntheticDataSource()
    source.add_file("warehouse/orders/part-0.parquet", 8 * 1024 * 1024)
    cache = LocalCacheManager(CacheConfig.small(32 * 1024 * 1024))
    result = cache.read("warehouse/orders/part-0.parquet", 0, 4096, source)
    assert result.page_misses == 1      # cold read went to the source
    again = cache.read("warehouse/orders/part-0.parquet", 0, 4096, source)
    assert again.fully_cached           # warm read served locally
"""

from repro.core import (
    CacheConfig,
    CacheDirectory,
    CacheReadResult,
    CacheScope,
    LocalCacheManager,
    MetricsRegistry,
    PageId,
    QuotaManager,
)
from repro.sim import EventLoop, RngStream, SimClock

__version__ = "1.0.0"

__all__ = [
    "LocalCacheManager",
    "CacheReadResult",
    "CacheConfig",
    "CacheDirectory",
    "CacheScope",
    "PageId",
    "QuotaManager",
    "MetricsRegistry",
    "SimClock",
    "EventLoop",
    "RngStream",
    "__version__",
]
