"""Percentile and reduction helpers used by every benchmark."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """The q-th percentile (0-100) with linear interpolation; 0.0 if empty."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if array.size == 0:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(array, q))


def percentiles(
    values: Sequence[float] | np.ndarray, qs: Iterable[float] = (50, 90, 95, 99)
) -> dict[float, float]:
    """Several percentiles at once."""
    return {q: percentile(values, q) for q in qs}


def reduction(before: float, after: float) -> float:
    """Fractional reduction from ``before`` to ``after``.

    ``reduction(100, 33) == 0.67`` -- the form the paper's headline numbers
    take ("P90 ... was reduced by 67%").
    """
    if before <= 0:
        return 0.0
    return (before - after) / before
