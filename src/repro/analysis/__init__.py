"""Analysis helpers for the benchmark harness."""

from repro.analysis.percentile import percentile, percentiles, reduction
from repro.analysis.report import Table, format_bytes, format_seconds
from repro.analysis.timeseries import RingSeries, bucket_series, rate_series

__all__ = [
    "percentile",
    "percentiles",
    "reduction",
    "Table",
    "format_bytes",
    "format_seconds",
    "RingSeries",
    "bucket_series",
    "rate_series",
]
