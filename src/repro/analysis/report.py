"""Plain-text report tables for the benchmark harness.

Every benchmark prints the rows/series its paper table or figure reports;
:class:`Table` keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence


class Table:
    """A fixed-column text table.

    >>> table = Table(["host", "reads"])
    >>> table.add_row(["host1", 13_500_000])
    >>> print(table.render())
    host  | reads
    ------+---------
    host1 | 13500000
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        if len(cells) != len(self._headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self._headers, widths)).rstrip()
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_bytes(nbytes: float) -> str:
    """Human-readable byte counts: ``format_bytes(2**20) == '1.0 MiB'``."""
    size = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(size) < 1024 or unit == "PiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable durations: ms below 1 s, otherwise seconds."""
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    return f"{seconds:.2f} s"
