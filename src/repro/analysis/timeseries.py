"""Time-series bucketing for per-minute figures (Figures 13 and 14)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def bucket_series(
    timestamps: Sequence[float],
    values: Sequence[float] | None = None,
    *,
    bucket_seconds: float = 60.0,
    horizon: float | None = None,
) -> dict[int, float]:
    """Sum ``values`` (default: count events) into fixed-width time buckets.

    Returns a dense ``{bucket_index: total}`` covering 0..horizon so flat
    regions show as zeros instead of missing points.  Samples landing
    exactly on (or past) the final bucket boundary are clamped into the
    last bucket rather than spawning a sparse phantom bucket beyond the
    dense range.
    """
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    timestamps = np.asarray(list(timestamps), dtype=np.float64)
    if values is None:
        values_arr = np.ones_like(timestamps)
    else:
        values_arr = np.asarray(list(values), dtype=np.float64)
        if values_arr.shape != timestamps.shape:
            raise ValueError("timestamps and values must have equal length")
    end = horizon if horizon is not None else (
        float(timestamps.max()) if timestamps.size else 0.0
    )
    n_buckets = int(end // bucket_seconds) + 1
    series = {b: 0.0 for b in range(n_buckets)}
    for t, v in zip(timestamps, values_arr):
        idx = min(int(t // bucket_seconds), n_buckets - 1)
        series[idx] += v
    return series


def rate_series(
    byte_buckets: dict[int, float], bucket_seconds: float = 60.0
) -> dict[int, float]:
    """Convert per-bucket byte totals into bytes/second rates."""
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    return {b: total / bucket_seconds for b, total in byte_buckets.items()}


def mean_of(series: Iterable[float]) -> float:
    """Mean of a series; 0.0 if empty."""
    values = list(series)
    return float(np.mean(values)) if values else 0.0
