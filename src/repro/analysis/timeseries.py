"""Time-series bucketing for per-minute figures (Figures 13 and 14)."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np


def bucket_series(
    timestamps: Sequence[float],
    values: Sequence[float] | None = None,
    *,
    bucket_seconds: float = 60.0,
    horizon: float | None = None,
) -> dict[int, float]:
    """Sum ``values`` (default: count events) into fixed-width time buckets.

    Returns a dense ``{bucket_index: total}`` covering 0..horizon so flat
    regions show as zeros instead of missing points.  Samples landing
    exactly on (or past) the final bucket boundary are clamped into the
    last bucket rather than spawning a sparse phantom bucket beyond the
    dense range.
    """
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    timestamps = np.asarray(list(timestamps), dtype=np.float64)
    if values is None:
        values_arr = np.ones_like(timestamps)
    else:
        values_arr = np.asarray(list(values), dtype=np.float64)
        if values_arr.shape != timestamps.shape:
            raise ValueError("timestamps and values must have equal length")
    end = horizon if horizon is not None else (
        float(timestamps.max()) if timestamps.size else 0.0
    )
    n_buckets = int(end // bucket_seconds) + 1
    series = {b: 0.0 for b in range(n_buckets)}
    for t, v in zip(timestamps, values_arr):
        idx = min(int(t // bucket_seconds), n_buckets - 1)
        series[idx] += v
    return series


def rate_series(
    byte_buckets: dict[int, float], bucket_seconds: float = 60.0
) -> dict[int, float]:
    """Convert per-bucket byte totals into bytes/second rates."""
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    return {b: total / bucket_seconds for b, total in byte_buckets.items()}


def mean_of(series: Iterable[float]) -> float:
    """Mean of a series; 0.0 if empty."""
    values = list(series)
    return float(np.mean(values)) if values else 0.0


class RingSeries:
    """A bounded ``(timestamp, value)`` time series that drops the oldest.

    Backing store for continuous telemetry: gauge history and the kernel
    telemetry sampler append one point per sampling tick, and a soak that
    runs for a million virtual seconds must not grow memory without bound.
    ``dropped`` counts evictions so consumers can tell a complete series
    from a truncated one.
    """

    __slots__ = ("capacity", "_points", "dropped")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._points)

    def append(self, timestamp: float, value: float) -> None:
        """Record a point; evicts the oldest point when at capacity."""
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((float(timestamp), float(value)))

    def items(self) -> list[tuple[float, float]]:
        """Retained points, oldest first."""
        return list(self._points)

    def timestamps(self) -> list[float]:
        return [t for t, __ in self._points]

    def values(self) -> list[float]:
        return [v for __, v in self._points]

    def last(self) -> tuple[float, float] | None:
        """Most recent point, or None when empty."""
        return self._points[-1] if self._points else None

    def merge(self, other: "RingSeries") -> "RingSeries":
        """Merge two series into a new one (timestamp order, stable sort).

        Merge-safe snapshotting: per-node registries keep their own
        histories; an aggregate view interleaves them without mutating
        either side.  The result's capacity is the larger of the two and
        the newest points win when the merge overflows it.
        """
        merged = RingSeries(max(self.capacity, other.capacity))
        points = sorted(self.items() + other.items(), key=lambda tv: tv[0])
        overflow = len(points) - merged.capacity
        if overflow > 0:
            points = points[overflow:]
        merged._points.extend(points)
        merged.dropped = max(overflow, 0) + self.dropped + other.dropped
        return merged

    def to_dict(self) -> dict:
        """JSON-ready snapshot (sorted-key friendly; no numpy types)."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "times": self.timestamps(),
            "values": self.values(),
        }
