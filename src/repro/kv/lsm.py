"""An LSM-tree key-value store with WAL, SSTables, and compaction.

On-disk layout under the store's root directory::

    wal.log            append-only write-ahead log of the live memtable
    sstable-000001.sst oldest flushed table
    sstable-000002.sst ...newer tables shadow older ones

Record format (both WAL and SSTable) is line-oriented JSON:
``{"k": <key>, "v": <value-or-null>}`` -- ``null`` is a tombstone.
SSTables store their records sorted by key (binary-searchable when loaded)
and are immutable once written.

Semantics:

- writes go to the memtable and the WAL; when the memtable exceeds
  ``memtable_limit`` entries it is flushed to a new SSTable and the WAL is
  truncated;
- reads check the memtable first, then SSTables newest-first;
- deletes write tombstones (so a delete shadows older SSTable entries);
- :meth:`LsmKvStore.compact` merges every SSTable plus the memtable into
  one table, dropping tombstones and shadowed versions;
- reopening a store replays the WAL, recovering un-flushed writes.

Values must be JSON-serializable; keys are strings.
"""

from __future__ import annotations

import bisect
import json
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

_WAL_NAME = "wal.log"
_SSTABLE_PREFIX = "sstable-"
_SSTABLE_SUFFIX = ".sst"
_TOMBSTONE = None


@runtime_checkable
class KvStore(Protocol):
    """Minimal KV interface shared by the memory and LSM stores."""

    def get(self, key: str, default: Any = None) -> Any:
        ...

    def put(self, key: str, value: Any) -> None:
        ...

    def delete(self, key: str) -> bool:
        ...

    def __contains__(self, key: str) -> bool:
        ...

    def __len__(self) -> int:
        ...


class MemoryKvStore:
    """Dict-backed reference implementation."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: str) -> bool:
        return self._data.pop(key, _SENTINEL) is not _SENTINEL

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[str]:
        return sorted(self._data)


class _Sentinel:
    pass


_SENTINEL = _Sentinel()


class _SsTable:
    """One immutable sorted table, lazily loaded."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._keys: list[str] | None = None
        self._values: list[Any] | None = None

    def _load(self) -> None:
        if self._keys is not None:
            return
        keys: list[str] = []
        values: list[Any] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                keys.append(record["k"])
                values.append(record["v"])
        self._keys = keys
        self._values = values

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(found, value)``; value may be the tombstone ``None``."""
        self._load()
        assert self._keys is not None and self._values is not None
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return True, self._values[index]
        return False, None

    def items(self) -> Iterator[tuple[str, Any]]:
        self._load()
        assert self._keys is not None and self._values is not None
        return iter(zip(self._keys, self._values))

    def __len__(self) -> int:
        self._load()
        assert self._keys is not None
        return len(self._keys)


class LsmKvStore:
    """The LSM store.  See the module docstring for the design."""

    def __init__(self, root: str | Path, *, memtable_limit: int = 1024) -> None:
        if memtable_limit <= 0:
            raise ValueError(f"memtable_limit must be positive, got {memtable_limit}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.memtable_limit = memtable_limit
        self._memtable: dict[str, Any] = {}
        self._sstables: list[_SsTable] = [
            _SsTable(p) for p in sorted(self.root.glob(f"{_SSTABLE_PREFIX}*{_SSTABLE_SUFFIX}"))
        ]
        self._next_table_number = self._infer_next_number()
        self._wal_path = self.root / _WAL_NAME
        self._replay_wal()
        self._wal = open(self._wal_path, "a", encoding="utf-8")

    # -- lifecycle ------------------------------------------------------------

    def _infer_next_number(self) -> int:
        numbers = []
        for table in self._sstables:
            stem = table.path.name[len(_SSTABLE_PREFIX):-len(_SSTABLE_SUFFIX)]
            try:
                numbers.append(int(stem))
            except ValueError:
                continue
        return max(numbers, default=0) + 1

    def _replay_wal(self) -> None:
        if not self._wal_path.exists():
            return
        with open(self._wal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    break  # torn trailing write: everything before is safe
                self._memtable[record["k"]] = record["v"]

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "LsmKvStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- KV interface ------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        if value is _TOMBSTONE:
            raise ValueError("None is reserved as the tombstone; use delete()")
        self._append_wal(key, value)
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def delete(self, key: str) -> bool:
        existed = key in self
        self._append_wal(key, _TOMBSTONE)
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self.flush()
        return existed

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._memtable:
            value = self._memtable[key]
            return default if value is _TOMBSTONE else value
        for table in reversed(self._sstables):  # newest shadows oldest
            found, value = table.lookup(key)
            if found:
                return default if value is _TOMBSTONE else value
        return default

    def __contains__(self, key: str) -> bool:
        marker = object()
        return self.get(key, marker) is not marker

    def __len__(self) -> int:
        return sum(1 for __ in self.items())

    def items(self) -> Iterator[tuple[str, Any]]:
        """Live (key, value) pairs, newest version wins, sorted by key."""
        merged: dict[str, Any] = {}
        for table in self._sstables:  # oldest first; later writes overwrite
            for key, value in table.items():
                merged[key] = value
        merged.update(self._memtable)
        for key in sorted(merged):
            if merged[key] is not _TOMBSTONE:
                yield key, merged[key]

    def keys(self) -> list[str]:
        return [key for key, __ in self.items()]

    # -- persistence ---------------------------------------------------------------

    def _append_wal(self, key: str, value: Any) -> None:
        self._wal.write(json.dumps({"k": key, "v": value},
                                   separators=(",", ":")) + "\n")
        self._wal.flush()

    def flush(self) -> Path | None:
        """Flush the memtable into a new SSTable; truncates the WAL."""
        if not self._memtable:
            return None
        path = self.root / (
            f"{_SSTABLE_PREFIX}{self._next_table_number:06d}{_SSTABLE_SUFFIX}"
        )
        self._next_table_number += 1
        with open(path, "w", encoding="utf-8") as handle:
            for key in sorted(self._memtable):
                handle.write(
                    json.dumps({"k": key, "v": self._memtable[key]},
                               separators=(",", ":")) + "\n"
                )
        self._sstables.append(_SsTable(path))
        self._memtable = {}
        self._wal.close()
        self._wal_path.write_text("", encoding="utf-8")
        self._wal = open(self._wal_path, "a", encoding="utf-8")
        return path

    def compact(self) -> int:
        """Merge all state into one SSTable, dropping tombstones and
        shadowed versions; returns live entries kept."""
        live = dict(self.items())
        for table in self._sstables:
            table.path.unlink()
        self._sstables = []
        self._memtable = dict(live)
        flushed = self.flush()
        if flushed is None:
            # nothing live: make sure the WAL is clean too
            self._wal.close()
            self._wal_path.write_text("", encoding="utf-8")
            self._wal = open(self._wal_path, "a", encoding="utf-8")
        return len(live)

    @property
    def sstable_count(self) -> int:
        return len(self._sstables)
