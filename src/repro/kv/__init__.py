"""A small log-structured key-value store (the RocksDB stand-in).

Section 6.1.1: cached file metadata "can be stored in memory, files, or
persistent key-value stores like RocksDB.  In enterprise-grade production
environments, data is usually cached in files and metadata in memory or
RocksDB."  RocksDB itself is out of scope (and off-line), so this package
provides the closest structural equivalent, built from scratch:

- :class:`~repro.kv.lsm.LsmKvStore` -- an LSM tree: in-memory memtable,
  write-ahead log for durability, sorted immutable SSTable files flushed
  from the memtable, newest-first reads with tombstone deletes, and a
  compaction pass that merges SSTables and drops shadowed/deleted entries.
- :class:`~repro.kv.lsm.MemoryKvStore` -- the dict-backed reference
  implementation behind the same interface.

:class:`~repro.presto.metadata_cache.MetadataCache` accepts either as a
persistent backing tier.
"""

from repro.kv.lsm import KvStore, LsmKvStore, MemoryKvStore

__all__ = ["KvStore", "LsmKvStore", "MemoryKvStore"]
