"""Catalog: the schema -> table -> partition -> file hierarchy.

This is the hierarchy the cache mirrors as scopes (Section 4.4) and the
unit structure quota management and cache filters operate on (Sections 5.1,
5.2).  Files carry a size and a column count; contents live in a
:class:`~repro.storage.remote.DataSource` keyed by ``DataFile.file_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scope import CacheScope


@dataclass(frozen=True, slots=True)
class DataFile:
    """One columnar data file within a partition."""

    file_id: str
    size: int
    n_columns: int = 16
    n_row_groups: int = 8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.n_columns <= 0 or self.n_row_groups <= 0:
            raise ValueError("n_columns and n_row_groups must be positive")


@dataclass(slots=True)
class Partition:
    """One partition of a table."""

    name: str
    files: list[DataFile] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(f.size for f in self.files)


@dataclass(slots=True)
class TableDef:
    """One table: named partitions of data files."""

    schema: str
    name: str
    partitions: dict[str, Partition] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.schema}.{self.name}"

    @property
    def size(self) -> int:
        return sum(p.size for p in self.partitions.values())

    def all_files(self) -> list[tuple[str, DataFile]]:
        """``(partition_name, file)`` pairs across all partitions."""
        return [
            (partition.name, data_file)
            for partition in self.partitions.values()
            for data_file in partition.files
        ]

    def scope_for_partition(self, partition: str) -> CacheScope:
        return CacheScope.for_partition(self.schema, self.name, partition)


class Catalog:
    """All tables known to the coordinator."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}

    def add_table(self, table: TableDef) -> None:
        if table.qualified_name in self._tables:
            raise ValueError(f"duplicate table {table.qualified_name}")
        self._tables[table.qualified_name] = table

    def table(self, qualified_name: str) -> TableDef:
        return self._tables[qualified_name]

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._tables

    @property
    def total_size(self) -> int:
        return sum(t.size for t in self._tables.values())


def build_table(
    schema: str,
    name: str,
    *,
    n_partitions: int,
    files_per_partition: int,
    file_size: int,
    n_columns: int = 16,
    n_row_groups: int = 8,
) -> TableDef:
    """Construct a uniformly laid-out table (the common test/bench shape)."""
    table = TableDef(schema=schema, name=name)
    for p in range(n_partitions):
        partition = Partition(name=f"ds={p:04d}")
        for f in range(files_per_partition):
            partition.files.append(
                DataFile(
                    file_id=f"{schema}/{name}/ds={p:04d}/part-{f:05d}.parquet",
                    size=file_size,
                    n_columns=n_columns,
                    n_row_groups=n_row_groups,
                )
            )
        table.partitions[partition.name] = partition
    return table
