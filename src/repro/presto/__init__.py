"""A Presto simulator: the compute substrate of the Section 6.1 case study.

Coordinator-worker architecture with the pieces the paper describes:

- :mod:`~repro.presto.catalog` -- schema/table/partition/file layout.
- :mod:`~repro.presto.split` -- splits, the unit of scheduling.
- :mod:`~repro.presto.hashring` -- consistent hashing with node-timeout
  "lazy data movement" (Section 7) and bounded replica fan-out.
- :mod:`~repro.presto.scheduler` -- soft-affinity split scheduling with the
  busy-fallback ladder of Section 6.1.2 (Figure 8), plus the random
  baseline it replaced.
- :mod:`~repro.presto.worker` -- workers embedding the local cache and the
  metadata cache; execute splits through ScanFilterProjectOperator.
- :mod:`~repro.presto.operators` -- the scan operator whose ``inputWall``
  metric Figure 10 reports.
- :mod:`~repro.presto.metadata_cache` -- file/stripe/column metadata
  caching (Section 6.1.1; the 30 %-CPU lesson of Section 7).
- :mod:`~repro.presto.runtime_stats` -- per-query RuntimeStats aggregated
  to table-level insights (Section 6.1.3).
- :mod:`~repro.presto.coordinator` -- plans queries into splits, drives
  scheduling and execution, reports per-query results.
"""

from repro.presto.advisor import Recommendation, recommend, to_filter_rules
from repro.presto.catalog import Catalog, DataFile, Partition, TableDef
from repro.presto.explain import ScanEstimate, estimate, explain
from repro.presto.coordinator import Coordinator, PrestoCluster, QueryResult
from repro.presto.hashring import ConsistentHashRing
from repro.presto.metadata_cache import MetadataCache
from repro.presto.operators import ScanFilterProjectOperator, ScanProfile
from repro.presto.query import QueryProfile, TableScan
from repro.presto.runtime_stats import QueryRuntimeStats, RuntimeStatsAggregator
from repro.presto.scheduler import (
    RandomScheduler,
    SchedulerDecision,
    SoftAffinityScheduler,
)
from repro.presto.split import Split
from repro.presto.worker import Worker

__all__ = [
    "Catalog",
    "TableDef",
    "Partition",
    "DataFile",
    "Split",
    "ConsistentHashRing",
    "SoftAffinityScheduler",
    "RandomScheduler",
    "SchedulerDecision",
    "Worker",
    "MetadataCache",
    "ScanProfile",
    "ScanFilterProjectOperator",
    "QueryProfile",
    "TableScan",
    "QueryRuntimeStats",
    "RuntimeStatsAggregator",
    "Coordinator",
    "PrestoCluster",
    "QueryResult",
    "explain",
    "estimate",
    "ScanEstimate",
    "recommend",
    "to_filter_rules",
    "Recommendation",
]
