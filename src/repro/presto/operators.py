"""Scan-side operators: where `inputWall` is measured.

Figure 10's metric is "the *inputWall* metric of the ScanFilterProject-
Operator, a key internal phase within a Presto query, responsible for data
input handling and initial filtering".  The operator here models a split
scan over a columnar file: footer metadata (through the metadata cache),
row-group pruning by selectivity, then one ranged read per surviving
(row group, projected column) chunk -- each read going through the worker's
local cache (or straight to remote when the scheduler flagged the split as
a cache bypass).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_manager import LocalCacheManager
from repro.obs.tracer import current_tracer
from repro.presto.metadata_cache import MetadataCache
from repro.presto.split import Split
from repro.presto.runtime_stats import QueryRuntimeStats
from repro.storage.remote import DataSource

# Virtual CPU cost of deserializing one file's footer metadata without the
# metadata cache (the up-to-30%-of-CPU lesson, Section 7).
METADATA_PARSE_COST = 0.008
# Virtual CPU cost of filtering/projecting one MB of scanned data.
FILTER_PROJECT_COST_PER_MB = 0.0015
# Input handling charged per ranged read regardless of where the bytes came
# from: codec setup, buffer allocation, and decode.  ``inputWall`` covers
# "data input handling and initial filtering", so this floor is what keeps
# warm-cache inputWall reductions at the paper's ~2/3 rather than ~100 %.
INPUT_HANDLING_FIXED = 0.0012
INPUT_HANDLING_PER_MB = 0.025


@dataclass(frozen=True, slots=True)
class ScanProfile:
    """How a query scans a split.

    Attributes:
        columns_read: projected column count (<= split's column count).
        row_group_selectivity: fraction of row groups surviving predicate
            pushdown (min/max pruning).
    """

    columns_read: int
    row_group_selectivity: float

    def __post_init__(self) -> None:
        if self.columns_read <= 0:
            raise ValueError(f"columns_read must be positive, got {self.columns_read}")
        if not 0 < self.row_group_selectivity <= 1:
            raise ValueError(
                f"row_group_selectivity must be in (0, 1], got "
                f"{self.row_group_selectivity}"
            )


@dataclass(slots=True)
class OperatorResult:
    """What one split scan produced."""

    input_wall: float = 0.0
    cpu_time: float = 0.0
    bytes_scanned: int = 0
    requests: int = 0


class ScanFilterProjectOperator:
    """Executes one split scan through the local cache."""

    def __init__(
        self,
        cache: LocalCacheManager | None,
        metadata_cache: MetadataCache | None,
        source: DataSource,
    ) -> None:
        self._cache = cache
        self._metadata_cache = metadata_cache
        self._source = source

    def execute(
        self,
        split: Split,
        profile: ScanProfile,
        stats: QueryRuntimeStats | None = None,
        *,
        bypass_cache: bool = False,
    ) -> OperatorResult:
        """Scan the split; returns timing and byte accounting.

        ``bypass_cache`` is the scheduler's fallback signal: "fetch data
        directly from external storage, bypassing local caching"
        (Section 6.1.2).
        """
        result = OperatorResult()
        self._charge_metadata(split, result, stats)
        columns = min(profile.columns_read, split.n_columns)
        for offset, length in self._chunk_ranges(split, profile, columns):
            self._read_range(split, offset, length, result, stats, bypass_cache)
        filter_project = (
            result.bytes_scanned / (1024 * 1024)
        ) * FILTER_PROJECT_COST_PER_MB
        result.cpu_time += filter_project
        current_tracer().current().charge("compute", filter_project)
        if stats is not None:
            stats.input_wall += result.input_wall
            stats.compute_wall += result.cpu_time
        return result

    # -- pieces ------------------------------------------------------------

    def _charge_metadata(
        self, split: Split, result: OperatorResult, stats: QueryRuntimeStats | None
    ) -> None:
        """Footer metadata: cached deserialized objects skip the parse cost."""
        key = split.file_id
        if self._metadata_cache is not None:
            if self._metadata_cache.get(key) is not None:
                if stats is not None:
                    stats.metadata_cache_hits += 1
                return
            self._metadata_cache.put(key, {"file_id": key, "parsed": True})
        result.cpu_time += METADATA_PARSE_COST
        current_tracer().current().charge("compute", METADATA_PARSE_COST)
        if stats is not None:
            stats.metadata_parses += 1

    def _chunk_ranges(
        self, split: Split, profile: ScanProfile, columns: int
    ) -> list[tuple[int, int]]:
        """Byte ranges of the column chunks this scan touches.

        The split's region is divided into its row groups, each row group
        into equal column chunks; predicate pushdown keeps a deterministic
        stride of row groups matching the selectivity.
        """
        n_groups = split.n_row_groups
        group_size = split.length // n_groups
        if group_size == 0:
            return [(split.offset, split.length)]
        chunk_size = max(group_size // split.n_columns, 1)
        keep_every = max(int(round(1.0 / profile.row_group_selectivity)), 1)
        ranges = []
        for group in range(n_groups):
            if group % keep_every != 0:
                continue  # pruned by min/max statistics
            group_start = split.offset + group * group_size
            for column in range(columns):
                ranges.append((group_start + column * chunk_size, chunk_size))
        return ranges

    def _read_range(
        self,
        split: Split,
        offset: int,
        length: int,
        result: OperatorResult,
        stats: QueryRuntimeStats | None,
        bypass_cache: bool,
    ) -> None:
        span = current_tracer().current()
        if self._cache is None or bypass_cache:
            read = self._source.read(split.file_id, offset, length)
            handled = len(read.data)
            handling = self._handling_cost(handled)
            backoff = getattr(self._source, "last_retry_backoff", 0.0)
            wait = getattr(self._source, "last_queue_wait", 0.0)
            span.charge("retry_backoff", backoff)
            span.charge("queueing", wait)
            span.charge("remote", read.latency - backoff - wait)
            span.charge("compute", handling)
            result.input_wall += read.latency + handling
            result.bytes_scanned += handled
            result.requests += 1
            if stats is not None:
                stats.bytes_from_remote += handled
            return
        read = self._cache.read(
            split.file_id, offset, length, self._source, scope=split.scope
        )
        handled = len(read.data)
        handling = self._handling_cost(handled)
        span.charge("compute", handling)
        result.input_wall += read.latency + handling
        result.bytes_scanned += handled
        result.requests += 1
        if stats is not None:
            stats.merge_read(read)

    @staticmethod
    def _handling_cost(nbytes: int) -> float:
        return INPUT_HANDLING_FIXED + (nbytes / (1024 * 1024)) * INPUT_HANDLING_PER_MB
