"""Splits: the scheduling unit of a distributed scan.

"Conventionally, each data file comprises multiple splits" (Section 6.1.2);
a split covers a contiguous byte region of one file and knows its table/
partition so the worker can tag cache scopes correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scope import CacheScope
from repro.presto.catalog import DataFile


@dataclass(frozen=True, slots=True)
class Split:
    """A contiguous region of one data file, bound for one worker."""

    file_id: str
    offset: int
    length: int
    schema: str
    table: str
    partition: str
    n_columns: int = 16
    n_row_groups: int = 8

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ValueError(f"bad split range {self.offset}/{self.length}")

    @property
    def scope(self) -> CacheScope:
        return CacheScope.for_partition(self.schema, self.table, self.partition)

    @property
    def qualified_table(self) -> str:
        return f"{self.schema}.{self.table}"


def splits_for_file(
    data_file: DataFile,
    *,
    schema: str,
    table: str,
    partition: str,
    target_split_size: int = 64 * 1024 * 1024,
) -> list[Split]:
    """Cut one file into splits of roughly ``target_split_size`` bytes."""
    if target_split_size <= 0:
        raise ValueError(f"target_split_size must be positive, got {target_split_size}")
    splits = []
    offset = 0
    while offset < data_file.size:
        length = min(target_split_size, data_file.size - offset)
        splits.append(
            Split(
                file_id=data_file.file_id,
                offset=offset,
                length=length,
                schema=schema,
                table=table,
                partition=partition,
                n_columns=data_file.n_columns,
                n_row_groups=data_file.n_row_groups,
            )
        )
        offset += length
    return splits
