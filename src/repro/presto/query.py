"""Query profiles: the I/O shape of one query, the coordinator's input.

A real Presto coordinator parses SQL into a plan; the simulator's unit of
work is a :class:`QueryProfile` describing what the plan would *do to
storage*: which tables are scanned, what fraction of partitions and row
groups survive pruning, how many columns are projected, and how much
downstream compute (joins, aggregation) follows the scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.presto.catalog import TableDef
from repro.presto.operators import ScanProfile


@dataclass(frozen=True, slots=True)
class TableScan:
    """One table's role in a query.

    Attributes:
        table: qualified table name.
        partition_fraction: fraction of the table's partitions scanned.
        profile: projection/pruning shape of the scan.
        partition_offset: where the scanned window starts within the
            table's (date-ordered) partitions.  Production streams advance
            this over time to model new days of data arriving -- the churn
            that keeps steady-state hit ratios below 100 %.
    """

    table: str
    partition_fraction: float
    profile: ScanProfile
    partition_offset: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.partition_fraction <= 1:
            raise ValueError(
                f"partition_fraction must be in (0, 1], got {self.partition_fraction}"
            )
        if self.partition_offset < 0:
            raise ValueError(
                f"partition_offset must be >= 0, got {self.partition_offset}"
            )

    def resolve_partitions(self, table: TableDef) -> list[str]:
        """The window of partitions this scan touches (wraps around), at
        least one."""
        names = sorted(table.partitions)
        count = max(int(round(len(names) * self.partition_fraction)), 1)
        start = self.partition_offset % len(names)
        window = [names[(start + i) % len(names)] for i in range(min(count, len(names)))]
        return window


@dataclass(frozen=True, slots=True)
class QueryProfile:
    """The I/O shape of one query."""

    query_id: str
    scans: tuple[TableScan, ...]
    compute_seconds: float

    def __post_init__(self) -> None:
        if not self.scans:
            raise ValueError("a query must scan at least one table")
        if self.compute_seconds < 0:
            raise ValueError(
                f"compute_seconds must be >= 0, got {self.compute_seconds}"
            )
