"""Presto workers: the compute nodes embedding the local cache (Figure 7)."""

from __future__ import annotations

from repro.core.admission.base import AdmissionPolicy
from repro.core.cache_manager import LocalCacheManager
from repro.core.config import CacheConfig, CacheDirectory, MIB
from repro.core.metrics import MetricsRegistry
from repro.core.quota import QuotaManager
from repro.presto.metadata_cache import MetadataCache
from repro.presto.operators import (
    OperatorResult,
    ScanFilterProjectOperator,
    ScanProfile,
)
from repro.obs.tracer import current_tracer
from repro.presto.split import Split
from repro.presto.runtime_stats import QueryRuntimeStats
from repro.service.sim_transport import build_sim_cache
from repro.sim.clock import Clock, SimClock
from repro.sim.kernel import Timeout, collecting_io, replay_plan
from repro.storage.remote import DataSource


class Worker:
    """One worker node: local cache + metadata cache + scan operator."""

    def __init__(
        self,
        name: str,
        source: DataSource,
        *,
        cache_capacity_bytes: int = 512 * MIB,
        page_size: int = 1 * MIB,
        clock: Clock | None = None,
        admission: AdmissionPolicy | None = None,
        quota: QuotaManager | None = None,
        metadata_cache_capacity: int = 10_000,
        cache_enabled: bool = True,
        metadata_cache_enabled: bool = True,
        ssd_backed: bool = True,
    ) -> None:
        self.name = name
        self.source = source
        self.clock = clock if clock is not None else SimClock()
        self.metrics = MetricsRegistry(name)
        self.cache: LocalCacheManager | None = None
        if cache_enabled:
            config = CacheConfig(
                page_size=page_size,
                directories=[CacheDirectory(f"/{name}/ssd0", cache_capacity_bytes)],
            )
            device = None
            if ssd_backed:
                # hits cost local-SSD time, not zero (Section 4.2)
                from repro.storage.device import DeviceProfile, StorageDevice

                device = StorageDevice(DeviceProfile.ssd_local(), self.clock,
                                       keep_records=False, queueing=False,
                                       service_bucket="cache_ssd",
                                       metrics=self.metrics)
            self.cache = build_sim_cache(
                config,
                clock=self.clock,
                device=device,
                admission=admission,
                quota=quota,
                metrics=self.metrics,
            )
        self.metadata_cache: MetadataCache | None = (
            MetadataCache(metadata_cache_capacity) if metadata_cache_enabled else None
        )
        self._operator = ScanFilterProjectOperator(
            self.cache, self.metadata_cache, source
        )
        self.busy_seconds = 0.0
        self.splits_executed = 0
        self.online = True

    def attach_kernel(self, kernel) -> "Worker":
        """Attach the worker's SSD page-store device to an event kernel so
        concurrent splits on this worker queue for the SSD for real."""
        if self.cache is not None:
            device = getattr(self.cache.page_store, "device", None)
            if device is not None:
                device.attach_kernel(kernel)
        return self

    def fail(self) -> None:
        """Crash the worker (container kill); splits sent here error out
        until :meth:`recover`."""
        self.online = False

    def recover(self) -> None:
        """Bring the worker back; its SSD cache contents survived."""
        self.online = True

    def wipe_cache(self) -> int:
        """Lose the SSD cache contents (disk replaced, container
        rescheduled without its volume); returns pages dropped.  The
        worker restarts cold -- the recovery case the churn soak measures."""
        if self.cache is None:
            return 0
        removed = 0
        for directory in range(len(self.cache.config.directories)):
            removed += self.cache.delete_dir(directory)
        self.metrics.counter("cache_wipes").inc()
        return removed

    def execute_split(
        self,
        split: Split,
        profile: ScanProfile,
        stats: QueryRuntimeStats | None = None,
        *,
        bypass_cache: bool = False,
    ) -> OperatorResult:
        """Run one split scan; accumulates this worker's busy time."""
        if not self.online:
            raise ConnectionError(f"presto worker {self.name} is offline")
        tracer = current_tracer()
        with tracer.span(
            "execute_split", actor=self.name,
            file_id=split.file_id, table=split.qualified_table,
        ) as span:
            result = self._operator.execute(
                split, profile, stats, bypass_cache=bypass_cache
            )
            elapsed = result.input_wall + result.cpu_time
            span.annotate("input_wall", result.input_wall)
            span.annotate("cpu_time", result.cpu_time)
            self.busy_seconds += elapsed
            self.splits_executed += 1
            return result

    def execute_split_proc(
        self,
        split: Split,
        profile: ScanProfile,
        stats: QueryRuntimeStats | None = None,
        *,
        bypass_cache: bool = False,
    ):
        """Kernel-process split scan: IO is *lived* rather than summed.

        The operator runs synchronously under IO collection (cache
        decisions, admission, and chaos resolve at the arrival instant,
        exactly as in analytic mode) and its deferred IO plan is then
        replayed -- the process queues in device/remote FIFOs alongside
        every other in-flight split.  CPU and input-handling costs become
        a kernel timer.  ``yield from`` this inside a kernel process.
        """
        if not self.online:
            raise ConnectionError(f"presto worker {self.name} is offline")
        tracer = current_tracer()
        with tracer.span(
            "execute_split", actor=self.name,
            file_id=split.file_id, table=split.qualified_table,
        ) as span:
            plan: list = []
            with collecting_io(plan):
                result = self._operator.execute(
                    split, profile, stats, bypass_cache=bypass_cache
                )
            # synchronous residue: handling + CPU (the operator charged it
            # to this span already); deferred IO contributed zero latency
            sync = result.input_wall + result.cpu_time
            io_wall = yield from replay_plan(plan)
            if sync > 0:
                yield Timeout(sync)
            result.input_wall += io_wall
            if stats is not None:
                stats.input_wall += io_wall
            span.annotate("input_wall", result.input_wall)
            span.annotate("cpu_time", result.cpu_time)
            self.busy_seconds += result.input_wall + result.cpu_time
            self.splits_executed += 1
            return result

    @property
    def cache_hit_ratio(self) -> float:
        return self.metrics.hit_ratio

    def cache_usage_bytes(self) -> int:
        return self.cache.bytes_used if self.cache is not None else 0

    def __repr__(self) -> str:
        return f"Worker({self.name!r}, splits={self.splits_executed})"
