"""Cache-onboarding advisor: suggest filter rules from observed traffic.

In production "the filtering rules are set by platform owners and
infrequently updated" (Section 5.1).  Owners decide from exactly the
table-level insights the metrics system aggregates (Section 6.1.3): which
tables are hot, how concentrated their partition access is, and how much
of their traffic would be served by a cache.  This module turns a
:class:`~repro.presto.runtime_stats.RuntimeStatsAggregator` into concrete
JSON filter rules consumable by
:class:`~repro.core.admission.filters.CacheFilter.from_json`.

Heuristics (each trivially tunable):

- onboard a table when it appears in at least ``min_queries`` queries and
  its scanned volume is at least ``min_bytes``;
- cap ``maxCachedPartitions`` at roughly the partition working set: the
  number of distinct partitions covering ``partition_coverage`` of the
  table's accesses (hot tables with severe partition skew get small caps);
- deny-list tables whose traffic is pure scan-once (no repeated partition
  within the observation window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.presto.runtime_stats import RuntimeStatsAggregator, TableInsight


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One table's onboarding decision and the reasoning behind it."""

    table: str
    admit: bool
    max_cached_partitions: int | None
    reason: str

    def to_rule(self) -> dict:
        """The JSON filter rule (Section 5.1 format)."""
        rule: dict = {"table": self.table}
        if not self.admit:
            rule["admit"] = False
        elif self.max_cached_partitions is not None:
            rule["maxCachedPartitions"] = self.max_cached_partitions
        return rule


def _partition_working_set(insight: TableInsight, coverage: float) -> int:
    """Distinct partitions covering ``coverage`` of the table's accesses."""
    counts = sorted(insight.partition_access_counts.values(), reverse=True)
    total = sum(counts)
    if total == 0:
        return 0
    running = 0
    for index, count in enumerate(counts, start=1):
        running += count
        if running / total >= coverage:
            return index
    return len(counts)


def recommend(
    aggregator: RuntimeStatsAggregator,
    *,
    min_queries: int = 5,
    min_bytes: int = 0,
    partition_coverage: float = 0.95,
) -> list[Recommendation]:
    """Onboarding recommendations for every observed table, hottest first."""
    if not 0 < partition_coverage <= 1:
        raise ValueError(
            f"partition_coverage must be in (0, 1], got {partition_coverage}"
        )
    recommendations: list[Recommendation] = []
    for table in aggregator.tables():
        insight = aggregator.table_insight(table)
        volume = insight.bytes_from_cache + insight.bytes_from_remote
        if insight.queries < min_queries or volume < min_bytes:
            recommendations.append(
                Recommendation(
                    table=table, admit=False, max_cached_partitions=None,
                    reason=(
                        f"cold: {insight.queries} queries, {volume} bytes "
                        f"(thresholds: {min_queries} queries, {min_bytes} bytes)"
                    ),
                )
            )
            continue
        counts = insight.partition_access_counts
        repeated = any(count > 1 for count in counts.values())
        if counts and not repeated:
            recommendations.append(
                Recommendation(
                    table=table, admit=False, max_cached_partitions=None,
                    reason="scan-once traffic: no partition accessed twice",
                )
            )
            continue
        working_set = _partition_working_set(insight, partition_coverage)
        recommendations.append(
            Recommendation(
                table=table,
                admit=True,
                max_cached_partitions=max(working_set, 1) if counts else None,
                reason=(
                    f"hot: {insight.queries} queries, {volume} bytes; "
                    f"{working_set} partitions cover "
                    f"{partition_coverage:.0%} of accesses"
                ),
            )
        )
    recommendations.sort(
        key=lambda r: (
            not r.admit,
            -(
                aggregator.table_insight(r.table).bytes_from_cache
                + aggregator.table_insight(r.table).bytes_from_remote
            ),
        )
    )
    return recommendations


def to_filter_rules(recommendations: list[Recommendation]) -> list[dict]:
    """The JSON rule list: admits first (deny rules keep their place after
    admits, which preserves first-match-wins semantics)."""
    return [r.to_rule() for r in recommendations]
