"""The coordinator: query planning, split distribution, result accounting.

"A central coordinator node takes charge of parsing queries, formulating
query plans, and distributing tasks to worker nodes" (Section 2.1.1).  The
simulator's unit of work is a :class:`~repro.workload.tpcds.QueryProfile`
(which tables/partitions are scanned, how selectively, and how much compute
follows the scan); the coordinator plans it into splits, schedules them
through a pluggable scheduler, and reports per-query runtime stats.

Execution timing model: workers process their assigned splits serially and
run in parallel with each other, so a query's scan wall time is the maximum
per-worker busy time for that query; downstream compute (joins,
aggregations) is charged on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.admission.base import AdmissionPolicy
from repro.core.metrics import MetricsRegistry
from repro.errors import SchedulerError
from repro.obs.tracer import current_tracer
from repro.presto.catalog import Catalog
from repro.presto.hashring import ConsistentHashRing
from repro.presto.operators import OperatorResult, ScanProfile
from repro.presto.runtime_stats import QueryRuntimeStats, RuntimeStatsAggregator
from repro.presto.scheduler import RandomScheduler, SchedulerDecision, SoftAffinityScheduler
from repro.presto.split import Split, splits_for_file
from repro.presto.worker import Worker
from repro.resilience.health import NodeHealthTracker
from repro.sim.clock import SimClock
from repro.sim.kernel import Timeout, all_of
from repro.sim.rng import RngStream
from repro.presto.query import QueryProfile
from repro.storage.remote import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.cluster.membership import ClusterMembership


@dataclass(slots=True)
class QueryResult:
    """Outcome of one query execution.

    ``shed`` marks a query the admission controller rejected outright
    (no execution, no latency recorded); ``degraded`` marks one that ran
    with cluster-wide cache bypass under overload.
    """

    query_id: str
    wall_seconds: float
    stats: QueryRuntimeStats
    shed: bool = False
    degraded: bool = False


@dataclass(slots=True)
class PrestoCluster:
    """A coordinator plus its workers, membership record, and scheduler.

    Build with :meth:`create`, then run queries through
    :attr:`coordinator`.  ``ring`` is the membership's hash ring (kept as
    a field for read-path consumers; mutate membership, never the ring --
    replint CHN001).
    """

    coordinator: "Coordinator"
    workers: dict[str, Worker]
    ring: ConsistentHashRing
    membership: "ClusterMembership | None" = None
    worker_factory: "Callable[[str], Worker] | None" = None

    @classmethod
    def create(
        cls,
        catalog: Catalog,
        source: DataSource,
        *,
        n_workers: int = 4,
        cache_capacity_bytes: int = 512 * 1024 * 1024,
        page_size: int = 1024 * 1024,
        scheduler: str = "soft_affinity",
        max_replicas: int = 2,
        max_splits_per_node: int = 10_000,
        probe_latency: float = 0.0,
        cache_enabled: bool = True,
        metadata_cache_enabled: bool = True,
        admission_factory=None,
        target_split_size: int = 64 * 1024 * 1024,
        clock: SimClock | None = None,
        seed: int = 0,
        health: NodeHealthTracker | None = None,
        virtual_nodes: int = 64,
        offline_timeout: float = 600.0,
    ) -> "PrestoCluster":
        # Runtime import: cluster.membership imports the hash ring from this
        # package, so a module-level import here would be circular.
        from repro.cluster.membership import ClusterMembership

        clock = clock if clock is not None else SimClock()
        membership = ClusterMembership(
            virtual_nodes=virtual_nodes,
            offline_timeout=offline_timeout,
            clock=clock,
        )
        ring = membership.ring

        def worker_factory(name: str) -> Worker:
            admission: AdmissionPolicy | None = (
                admission_factory() if admission_factory is not None else None
            )
            return Worker(
                name,
                source,
                cache_capacity_bytes=cache_capacity_bytes,
                page_size=page_size,
                clock=clock,
                admission=admission,
                cache_enabled=cache_enabled,
                metadata_cache_enabled=metadata_cache_enabled,
            )

        workers: dict[str, Worker] = {}
        for index in range(n_workers):
            name = f"worker-{index}"
            workers[name] = worker_factory(name)
            membership.join(name)
        if scheduler == "soft_affinity":
            sched = SoftAffinityScheduler(
                ring,
                max_replicas=max_replicas,
                max_splits_per_node=max_splits_per_node,
                probe_latency=probe_latency,
                health=health,
            )
        elif scheduler == "random":
            sched = RandomScheduler(RngStream(seed, "scheduler/random"))
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose soft_affinity or random"
            )
        coordinator = Coordinator(
            catalog, workers, sched, target_split_size=target_split_size,
            health=health,
        )
        return cls(
            coordinator=coordinator, workers=workers, ring=ring,
            membership=membership, worker_factory=worker_factory,
        )

    def attach_kernel(self, kernel) -> "PrestoCluster":
        """Attach every worker's devices (and the shared source, when it
        supports it) to an event kernel for :meth:`Coordinator.run_concurrent_kernel`."""
        for worker in self.workers.values():
            worker.attach_kernel(kernel)
            # unwrap resilience/data-source layers down to something with
            # its own kernel attachment (e.g. an ObjectStore); sources that
            # model pure link latency need none
            source, seen = worker.source, set()
            while source is not None and id(source) not in seen:
                seen.add(id(source))
                attach = getattr(source, "attach_kernel", None)
                if attach is not None:
                    attach(kernel)
                    break
                source = getattr(source, "inner", None) or getattr(
                    source, "_store", None
                )
        return self


class _ExecutorPool:
    """The live executor fleet of one ``run_concurrent_kernel`` run.

    Owns per-worker split channels, executor processes, and the in-flight
    split accounting the scheduler and admission controller read.
    Membership changes mid-run route through :meth:`ensure` /
    :meth:`retire` (via ``Coordinator.add_worker`` / ``remove_worker``) so
    a joining worker starts consuming splits and a leaving worker's queued
    splits fail over instead of hanging their queries.
    """

    def __init__(self, kernel, concurrency: int, executor_factory) -> None:
        self.kernel = kernel
        self.concurrency = concurrency
        self._factory = executor_factory
        self.channels: dict[str, object] = {}
        self.in_flight: dict[str, int] = {}
        self.executors: dict[str, list] = {}
        self._retired: set[str] = set()

    def ensure(self, name: str) -> None:
        """Give ``name`` a channel and executors (idempotent; re-arms a
        previously retired name on rejoin)."""
        if name in self.channels and name not in self._retired:
            return
        if name not in self.channels:
            self.channels[name] = self.kernel.channel(name=f"splits/{name}")
            self.in_flight[name] = 0
        else:
            # rejoining a retired name: clear leftover poison pills
            self.channels[name].drain()
        self._retired.discard(name)
        self.executors[name] = [
            self.kernel.spawn(self._factory(name), name=f"executor/{name}/{i}")
            for i in range(self.concurrency)
        ]

    def retire(self, name: str) -> None:
        """Fail queued splits over and poison the executors (permanent
        leave).  Queries holding the drained splits resubmit elsewhere."""
        chan = self.channels.get(name)
        if chan is None or name in self._retired:
            return
        self._retired.add(name)
        for task in chan.drain():
            done = task[4]
            self.in_flight[name] -= 1
            done.trigger(
                (name, None,
                 ConnectionError(f"presto worker {name} decommissioned"))
            )
        for __ in range(self.concurrency):
            chan.put(None)

    def occupancy(self) -> int:
        """Queued + executing splits fleet-wide: the backpressure signal."""
        return sum(self.in_flight.values())

    def shutdown(self) -> None:
        """Poison every live executor at end of run."""
        for name, chan in self.channels.items():
            if name in self._retired:
                continue
            for __ in range(self.concurrency):
                chan.put(None)


class Coordinator:
    """Plans queries into splits and drives worker execution."""

    def __init__(
        self,
        catalog: Catalog,
        workers: dict[str, Worker],
        scheduler,
        *,
        target_split_size: int = 64 * 1024 * 1024,
        health: NodeHealthTracker | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        self.catalog = catalog
        self.workers = dict(workers)
        self.scheduler = scheduler
        self.target_split_size = target_split_size
        self.health = health
        self.metrics = metrics if metrics is not None else MetricsRegistry("coordinator")
        self.aggregator = RuntimeStatsAggregator()
        self.split_failovers = 0
        self._pool: _ExecutorPool | None = None

    # -- membership hooks (called by repro.cluster.lifecycle) ----------------

    def add_worker(self, worker: Worker) -> None:
        """Register a worker; an active kernel run gains its executors."""
        self.workers[worker.name] = worker
        if self._pool is not None:
            self._pool.ensure(worker.name)

    def remove_worker(self, name: str) -> None:
        """Deregister a worker (decommission / offline-timeout expiry);
        queued splits on it fail over to healthy nodes."""
        self.workers.pop(name, None)
        if self._pool is not None:
            self._pool.retire(name)

    def live_occupancy(self) -> int:
        """Fleet-wide in-flight split count of the active kernel run --
        the admission controller's backpressure signal (0 when idle)."""
        return self._pool.occupancy() if self._pool is not None else 0

    # -- planning ------------------------------------------------------------

    def plan(self, query: QueryProfile) -> list[tuple[Split, ScanProfile]]:
        """Expand each table scan into per-file splits."""
        planned: list[tuple[Split, ScanProfile]] = []
        for scan in query.scans:
            table = self.catalog.table(scan.table)
            partitions = scan.resolve_partitions(table)
            for partition_name in partitions:
                partition = table.partitions[partition_name]
                for data_file in partition.files:
                    for split in splits_for_file(
                        data_file,
                        schema=table.schema,
                        table=table.name,
                        partition=partition_name,
                        target_split_size=self.target_split_size,
                    ):
                        planned.append((split, scan.profile))
        return planned

    # -- execution ---------------------------------------------------------------

    def _schedulable_workers(self) -> list[str]:
        """Workers worth sending splits to: online, breaker not open."""
        names = [
            name
            for name, worker in self.workers.items()
            if getattr(worker, "online", True)
        ]
        if self.health is not None:
            healthy = [n for n in names if self.health.is_available(n)]
            if healthy:
                names = healthy
        return names

    def _execute_with_failover(
        self,
        split: Split,
        profile: ScanProfile,
        stats: QueryRuntimeStats,
        load: dict[str, int],
    ) -> tuple[SchedulerDecision, OperatorResult, int]:
        """Assign and run one split, rescheduling when a worker crashes
        mid-query; returns ``(decision, result, probes_charged)``.

        A crashed worker is dropped from this query's load view so the
        scheduler stops picking it; the split itself is retried elsewhere
        (splits are idempotent scans).
        """
        probes_charged = 0
        while True:
            if not load:
                raise SchedulerError(
                    f"no workers left to run split of {split.qualified_table}"
                )
            decision = self.scheduler.assign(split, load)
            probes_charged += max(decision.probes - 1, 0)
            worker = self.workers[decision.worker]
            try:
                result = worker.execute_split(
                    split, profile, stats, bypass_cache=decision.bypass_cache
                )
            except ConnectionError as exc:
                self.split_failovers += 1
                self.metrics.counter("failovers").inc()
                self.metrics.record_error("execute_split", exc)
                current_tracer().current().event(
                    "split_failover", worker=decision.worker
                )
                if self.health is not None:
                    self.health.record_failure(decision.worker)
                load.pop(decision.worker, None)
                continue
            if self.health is not None:
                self.health.record_success(decision.worker)
            return decision, result, probes_charged

    def run_query(self, query: QueryProfile) -> QueryResult:
        """Plan, schedule, and execute one query; record its stats.

        When tracing is enabled the query becomes one trace: a ``query``
        root span over per-split ``execute_split`` children.  Attribution
        reconciles against the *resource-seconds* the query consumed
        (``stats.input_wall + stats.compute_wall + compute_seconds`` --
        the ``QueryRuntimeStats`` totals); the parallel makespan
        ``wall_seconds`` is annotated separately as ``makespan``.
        """
        tracer = current_tracer()
        with tracer.span(
            "query", actor="coordinator", query_id=query.query_id
        ) as qspan:
            stats = QueryRuntimeStats(query_id=query.query_id)
            stats.tables = [scan.table for scan in query.scans]
            planned = self.plan(query)
            stats.splits = len(planned)
            partitions_touched: set[str] = set()

            schedulable = self._schedulable_workers()
            if not schedulable:
                raise SchedulerError("no online workers to run the query")
            load = {name: 0 for name in schedulable}
            per_worker_busy = {name: 0.0 for name in self.workers}
            probe_latency = getattr(self.scheduler, "probe_latency", 0.0)
            scheduling_wall = 0.0
            for split, profile in planned:
                decision, result, probes = self._execute_with_failover(
                    split, profile, stats, load
                )
                scheduling_wall += probes * probe_latency
                load[decision.worker] += 1
                if decision.affinity:
                    stats.affinity_hits += 1
                if decision.bypass_cache:
                    stats.cache_bypassed_splits += 1
                per_worker_busy[decision.worker] += result.input_wall + result.cpu_time
                partitions_touched.add(f"{split.qualified_table}/{split.partition}")

            stats.partitions = sorted(partitions_touched)
            scan_wall = max(per_worker_busy.values()) if per_worker_busy else 0.0
            wall = scan_wall + query.compute_seconds + scheduling_wall
            stats.input_wall += scheduling_wall
            stats.total_wall = wall
            qspan.charge("queueing", scheduling_wall)
            qspan.charge("compute", query.compute_seconds)
            qspan.annotate(
                "wall", stats.input_wall + stats.compute_wall + query.compute_seconds
            )
            qspan.annotate("makespan", wall)
            qspan.annotate("splits", stats.splits)
            self.metrics.histogram("query_wall_seconds").observe(
                wall, exemplar=qspan.span_id or None
            )
            self.aggregator.record(stats)
            return QueryResult(query_id=query.query_id, wall_seconds=wall, stats=stats)

    def run_queries(self, queries: list[QueryProfile]) -> list[QueryResult]:
        return [self.run_query(q) for q in queries]

    def run_concurrent(
        self, arrivals: list[tuple[float, QueryProfile]]
    ) -> list[QueryResult]:
        """Execute queries that overlap in time, with cross-query queueing.

        Production clusters run hundreds of queries at once; a worker busy
        with one query's splits delays the next query's.  The model: each
        worker serves its split queue serially in virtual time, so a split
        starts at ``max(query_arrival, worker_free_at)``; a query finishes
        when its last split completes plus its downstream compute.
        Scheduling decisions see the *current backlog* (splits assigned but
        not yet finished at the query's arrival), so soft-affinity's busy
        fallback engages exactly when the paper says it should: under hot-
        spot pressure.

        Args:
            arrivals: ``(arrival_time, query)`` pairs; processed in time
                order.

        Returns per-query results whose ``wall_seconds`` is the full
        arrival-to-completion latency (queueing included).
        """
        probe_latency = getattr(self.scheduler, "probe_latency", 0.0)
        worker_free_at = {name: 0.0 for name in self.workers}
        # completion times of splits already assigned per worker; entries
        # still in the future at a query's arrival form that worker's
        # backlog, which is what the scheduler's busy check inspects
        outstanding: dict[str, list[float]] = {name: [] for name in self.workers}
        results: list[QueryResult] = []
        tracer = current_tracer()
        for arrival, query in sorted(arrivals, key=lambda pair: pair[0]):
            with tracer.span(
                "query", actor="coordinator",
                query_id=query.query_id, arrival=arrival,
            ) as qspan:
                stats = QueryRuntimeStats(query_id=query.query_id)
                stats.tables = [scan.table for scan in query.scans]
                planned = self.plan(query)
                stats.splits = len(planned)
                partitions_touched: set[str] = set()
                scheduling_wall = 0.0
                queue_wait = 0.0
                completion = arrival
                for name in self.workers:
                    outstanding[name] = [
                        t for t in outstanding[name] if t > arrival
                    ]
                for split, profile in planned:
                    backlog = {
                        name: len(pending) for name, pending in outstanding.items()
                    }
                    decision = self.scheduler.assign(split, backlog)
                    scheduling_wall += max(decision.probes - 1, 0) * probe_latency
                    if decision.affinity:
                        stats.affinity_hits += 1
                    if decision.bypass_cache:
                        stats.cache_bypassed_splits += 1
                    worker = self.workers[decision.worker]
                    result = worker.execute_split(
                        split, profile, stats, bypass_cache=decision.bypass_cache
                    )
                    start = max(arrival, worker_free_at[decision.worker])
                    queue_wait += start - arrival
                    finish = start + result.input_wall + result.cpu_time
                    worker_free_at[decision.worker] = finish
                    outstanding[decision.worker].append(finish)
                    completion = max(completion, finish)
                    partitions_touched.add(
                        f"{split.qualified_table}/{split.partition}"
                    )
                stats.partitions = sorted(partitions_touched)
                wall = (completion - arrival) + query.compute_seconds + scheduling_wall
                stats.total_wall = wall
                stats.input_wall += scheduling_wall
                qspan.charge("queueing", scheduling_wall)
                qspan.charge("compute", query.compute_seconds)
                qspan.annotate(
                    "wall",
                    stats.input_wall + stats.compute_wall + query.compute_seconds,
                )
                qspan.annotate("makespan", wall)
                qspan.annotate("queue_wait", queue_wait)
                self.metrics.histogram("query_wall_seconds").observe(
                    wall, exemplar=qspan.span_id or None
                )
                self.aggregator.record(stats)
                results.append(
                    QueryResult(query_id=query.query_id, wall_seconds=wall,
                                stats=stats)
                )
        return results

    def run_concurrent_kernel(
        self,
        arrivals: list[tuple[float, QueryProfile]],
        *,
        kernel,
        worker_concurrency: int = 4,
        admission=None,
    ) -> list[QueryResult]:
        """Concurrent execution on an event kernel: queueing is *lived*.

        Each worker runs ``worker_concurrency`` split-executor processes
        fed by a FIFO channel; each query is a process spawned at its
        arrival time that schedules splits against the *live* in-flight
        backlog, submits them, and waits for their completions.  A split
        whose worker crashes mid-flight is rescheduled elsewhere, exactly
        as :meth:`_execute_with_failover` does analytically.  Queue waits,
        device contention, and hedging all come out of the kernel rather
        than the serial ``worker_free_at`` bookkeeping of
        :meth:`run_concurrent`.

        Membership may change mid-run: :meth:`add_worker` /
        :meth:`remove_worker` (driven by
        :class:`~repro.cluster.lifecycle.ClusterLifecycle`) extend or
        retire the executor fleet live, and a retired worker's queued
        splits fail over like a crash.

        ``admission`` (an
        :class:`~repro.cluster.admission.AdmissionController`) gates each
        query at arrival: shed queries return immediately with
        ``shed=True`` (no latency recorded), queued queries charge the
        wait to their ``queueing`` bucket, and degraded queries run with
        cluster-wide cache bypass.

        The cluster must be kernel-attached first
        (:meth:`PrestoCluster.attach_kernel`).  Drives ``kernel.run()``
        to completion and returns per-query results in arrival order.
        """
        if worker_concurrency < 1:
            raise ValueError(
                f"worker_concurrency must be >= 1, got {worker_concurrency}"
            )
        if self._pool is not None:
            raise RuntimeError("a run_concurrent_kernel run is already active")
        tracer = current_tracer()
        probe_latency = getattr(self.scheduler, "probe_latency", 0.0)

        def executor(name: str):
            chan = pool.channels[name]
            while True:
                task = yield chan.get()
                if task is None:
                    return
                split, profile, stats, bypass, done, ctx = task
                # adopt the submitting query's span context so the split's
                # spans land in that query's trace
                tracer.restore_context(ctx)
                # fresh lookup each task: a rejoined name is a new object
                worker = self.workers.get(name)
                try:
                    if worker is None:
                        raise ConnectionError(
                            f"presto worker {name} was removed"
                        )
                    result = yield from worker.execute_split_proc(
                        split, profile, stats, bypass_cache=bypass
                    )
                except ConnectionError as exc:
                    pool.in_flight[name] -= 1
                    done.trigger((name, None, exc))
                else:
                    pool.in_flight[name] -= 1
                    done.trigger((name, result, None))
                finally:
                    tracer.restore_context([])

        pool = _ExecutorPool(kernel, worker_concurrency, executor)

        def query_proc(arrival: float, query: QueryProfile):
            ticket = None
            if admission is not None:
                # the admission verdict is taken at the arrival instant
                ticket = admission.admit()
                if ticket is None:
                    stats = QueryRuntimeStats(query_id=query.query_id)
                    stats.tables = [scan.table for scan in query.scans]
                    return QueryResult(
                        query_id=query.query_id, wall_seconds=0.0,
                        stats=stats, shed=True,
                    )
            try:
                with tracer.span(
                    "query", actor="coordinator",
                    query_id=query.query_id, arrival=arrival,
                ) as qspan:
                    stats = QueryRuntimeStats(query_id=query.query_id)
                    stats.tables = [scan.table for scan in query.scans]
                    scheduling_wall = 0.0
                    if ticket is not None and ticket.queued:
                        admitted_from = kernel.clock.now()
                        yield ticket.request
                        queue_wait = kernel.clock.now() - admitted_from
                        if queue_wait > 0:
                            qspan.charge("queueing", queue_wait)
                            scheduling_wall += queue_wait
                    degraded = ticket.degraded if ticket is not None else False
                    planned = self.plan(query)
                    stats.splits = len(planned)
                    partitions_touched: set[str] = set()
                    ctx = tracer.capture_context()
                    dead: set[str] = set()
                    pending = list(planned)
                    while pending:
                        submitted = []
                        for split, profile in pending:
                            while True:
                                live = {
                                    name: pool.in_flight[name]
                                    for name in self._schedulable_workers()
                                    if name not in dead
                                }
                                if not live:
                                    raise SchedulerError(
                                        "no workers left to run split of "
                                        f"{split.qualified_table}"
                                    )
                                decision = self.scheduler.assign(split, live)
                                probe_cost = (
                                    max(decision.probes - 1, 0) * probe_latency
                                )
                                if probe_cost > 0:
                                    yield Timeout(probe_cost)
                                    qspan.charge("queueing", probe_cost)
                                    scheduling_wall += probe_cost
                                    if decision.worker not in self.workers:
                                        # membership changed while probing:
                                        # place the split again
                                        continue
                                break
                            bypass = decision.bypass_cache or degraded
                            if decision.affinity:
                                stats.affinity_hits += 1
                            if bypass:
                                stats.cache_bypassed_splits += 1
                            done = kernel.event()
                            pool.in_flight[decision.worker] += 1
                            pool.channels[decision.worker].put(
                                (split, profile, stats, bypass, done, ctx)
                            )
                            submitted.append((split, profile, done))
                            partitions_touched.add(
                                f"{split.qualified_table}/{split.partition}"
                            )
                        if submitted:
                            yield all_of(*(done for _, _, done in submitted))
                        pending = []
                        for split, profile, done in submitted:
                            name, result, exc = done.value
                            if exc is not None:
                                self.split_failovers += 1
                                self.metrics.counter("failovers").inc()
                                self.metrics.record_error("execute_split", exc)
                                qspan.event("split_failover", worker=name)
                                if self.health is not None:
                                    self.health.record_failure(name)
                                dead.add(name)
                                pending.append((split, profile))
                            elif self.health is not None:
                                self.health.record_success(name)
                    if query.compute_seconds > 0:
                        yield Timeout(query.compute_seconds)
                    qspan.charge("compute", query.compute_seconds)
                    stats.partitions = sorted(partitions_touched)
                    wall = kernel.clock.now() - arrival
                    stats.input_wall += scheduling_wall
                    stats.total_wall = wall
                    qspan.annotate(
                        "wall",
                        stats.input_wall + stats.compute_wall
                        + query.compute_seconds,
                    )
                    qspan.annotate("makespan", wall)
                    qspan.annotate("splits", stats.splits)
                    self.metrics.histogram("query_wall_seconds").observe(
                        wall, exemplar=qspan.span_id or None
                    )
                    self.aggregator.record(stats)
                    return QueryResult(
                        query_id=query.query_id, wall_seconds=wall,
                        stats=stats, degraded=degraded,
                    )
            finally:
                if ticket is not None:
                    admission.release(ticket)

        self._pool = pool
        try:
            for name in self.workers:
                pool.ensure(name)
            ordered = sorted(arrivals, key=lambda pair: pair[0])
            query_procs = [
                kernel.spawn_at(
                    arrival, query_proc(arrival, query),
                    name=f"query/{query.query_id}",
                )
                for arrival, query in ordered
            ]

            def supervisor():
                yield all_of(*query_procs)
                pool.shutdown()

            kernel.spawn(supervisor())
            kernel.run()
        finally:
            self._pool = None
        for proc in query_procs:
            if proc.exception is not None:
                raise proc.exception
        return [proc.value for proc in query_procs]

    # -- fleet reporting -----------------------------------------------------------

    def cluster_hit_ratio(self) -> float:
        hits = sum(w.metrics.counter("get_hits").value for w in self.workers.values())
        misses = sum(
            w.metrics.counter("get_misses").value for w in self.workers.values()
        )
        total = hits + misses
        return hits / total if total else 0.0
