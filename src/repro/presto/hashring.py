"""Consistent hashing with node-timeout "lazy data movement" (Section 7).

The soft-affinity scheduler hashes each file onto a ring of worker nodes.
Two production lessons are encoded here:

- **Lazy data movement**: containerized deployments restart nodes all the
  time.  A node that goes offline keeps its ring positions for a timeout
  window; while offline, lookups *fall through* to the next live node, and
  if the node returns within the window its keys map straight back -- no
  cache-shuffling churn.  Only after the timeout do its positions leave the
  ring for good.
- **Bounded replicas**: a key resolves to at most ``max_replicas`` distinct
  candidate nodes (the paper limits cache replicas to two, with remote
  storage as the final fallback).
"""

from __future__ import annotations

import bisect
import zlib

from repro.sim.clock import Clock


def _hash(value: str) -> int:
    return zlib.crc32(value.encode("utf-8"))


class ConsistentHashRing:
    """A hash ring over named nodes with offline timeouts.

    Args:
        virtual_nodes: ring positions per physical node (smooths balance).
        offline_timeout: seconds an offline node retains its positions.
        clock: time source for the offline bookkeeping.  When supplied,
            :meth:`mark_offline` and :meth:`evict_expired` may omit their
            ``now`` argument and the ring reads the injected clock; without
            one, ``now`` stays mandatory so wall time can never leak in
            silently.
    """

    def __init__(
        self,
        *,
        virtual_nodes: int = 64,
        offline_timeout: float = 600.0,
        clock: Clock | None = None,
    ) -> None:
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {virtual_nodes}")
        if offline_timeout < 0:
            raise ValueError(f"offline_timeout must be >= 0, got {offline_timeout}")
        self.virtual_nodes = virtual_nodes
        self.offline_timeout = offline_timeout
        self.clock = clock
        self._positions: list[int] = []
        self._owner_at: dict[int, str] = {}
        self._nodes: set[str] = set()
        self._offline_since: dict[str, float] = {}

    def _resolve_now(self, now: float | None) -> float:
        if now is not None:
            return now
        if self.clock is None:
            raise ValueError(
                "no clock injected: pass `now` explicitly or construct the "
                "ring with ConsistentHashRing(clock=...)"
            )
        return self.clock.now()

    # -- membership ----------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Join (or rejoin) a node; rejoining clears its offline mark."""
        if node in self._nodes:
            self._offline_since.pop(node, None)
            return
        self._nodes.add(node)
        self._offline_since.pop(node, None)
        for v in range(self.virtual_nodes):
            position = _hash(f"{node}#{v}")
            # linear-probe hash collisions to keep owners unambiguous
            while position in self._owner_at:
                position = (position + 1) % (1 << 32)
            self._owner_at[position] = node
            bisect.insort(self._positions, position)

    def remove_node(self, node: str) -> None:
        """Leave immediately (operator-initiated decommission)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._offline_since.pop(node, None)
        dead = [p for p, owner in self._owner_at.items() if owner == node]
        for position in dead:
            del self._owner_at[position]
        dead_set = set(dead)
        self._positions = [p for p in self._positions if p not in dead_set]

    def mark_offline(self, node: str, now: float | None = None) -> None:
        """Node stopped responding at ``now``; keep its seat for the timeout."""
        if node in self._nodes:
            self._offline_since.setdefault(node, self._resolve_now(now))

    def mark_online(self, node: str) -> None:
        """Node came back; its keys map straight back (no data movement)."""
        self._offline_since.pop(node, None)

    def evict_expired(self, now: float | None = None) -> list[str]:
        """Permanently remove nodes offline longer than the timeout."""
        resolved = self._resolve_now(now)
        expired = [
            node
            for node, since in self._offline_since.items()
            if resolved - since >= self.offline_timeout
        ]
        for node in expired:
            self.remove_node(node)
        return expired

    def is_online(self, node: str) -> bool:
        return node in self._nodes and node not in self._offline_since

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    @property
    def online_nodes(self) -> set[str]:
        return {n for n in self._nodes if n not in self._offline_since}

    def __len__(self) -> int:
        return len(self._nodes)

    # -- lookups -----------------------------------------------------------------

    def candidates(self, key: str, max_replicas: int = 2) -> list[str]:
        """Up to ``max_replicas`` distinct *online* nodes for ``key``.

        Walks the ring clockwise from the key's hash, skipping offline
        nodes (they keep their positions -- that is the laziness) and
        duplicate owners.
        """
        if max_replicas <= 0:
            raise ValueError(f"max_replicas must be positive, got {max_replicas}")
        if not self._positions:
            return []
        start = bisect.bisect_left(self._positions, _hash(key))
        found: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._positions)):
            position = self._positions[(start + step) % len(self._positions)]
            owner = self._owner_at[position]
            if owner in seen or owner in self._offline_since:
                continue
            seen.add(owner)
            found.append(owner)
            if len(found) >= max_replicas:
                break
        return found

    def primary(self, key: str) -> str | None:
        """The preferred node for ``key`` (first online candidate)."""
        candidates = self.candidates(key, max_replicas=1)
        return candidates[0] if candidates else None
