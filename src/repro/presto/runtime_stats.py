"""Per-query RuntimeStats and table-level aggregation (Section 6.1.3).

"Whenever Presto I/O operations engage the local cache, relevant metrics,
such as cache hit rate and pages read, are recorded ... query-level runtime
statistics are logged as in-memory metrics, which are periodically gathered
for extensive monitoring."  The aggregator rolls per-query stats into
table-level insights -- the hot-partition identification the paper uses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.percentile import percentile


@dataclass(slots=True)
class QueryRuntimeStats:
    """Runtime statistics for one query."""

    query_id: str
    tables: list[str] = field(default_factory=list)
    partitions: list[str] = field(default_factory=list)
    input_wall: float = 0.0
    compute_wall: float = 0.0
    total_wall: float = 0.0
    page_hits: int = 0
    page_misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_remote: int = 0
    metadata_parses: int = 0
    metadata_cache_hits: int = 0
    splits: int = 0
    affinity_hits: int = 0
    cache_bypassed_splits: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0

    @property
    def scanned_bytes(self) -> int:
        return self.bytes_from_cache + self.bytes_from_remote

    def merge_read(self, result) -> None:
        """Fold a :class:`~repro.core.cache_manager.CacheReadResult` in."""
        self.page_hits += result.page_hits
        self.page_misses += result.page_misses
        self.bytes_from_cache += result.bytes_from_cache
        self.bytes_from_remote += result.bytes_from_remote


@dataclass(slots=True)
class TableInsight:
    """Aggregated view of one table across many queries."""

    table: str
    queries: int = 0
    input_wall_samples: list[float] = field(default_factory=list)
    bytes_from_cache: int = 0
    bytes_from_remote: int = 0
    partition_access_counts: dict[str, int] = field(default_factory=dict)

    @property
    def cache_byte_ratio(self) -> float:
        total = self.bytes_from_cache + self.bytes_from_remote
        return self.bytes_from_cache / total if total else 0.0

    def input_wall_percentile(self, q: float) -> float:
        return percentile(self.input_wall_samples, q)

    def hot_partitions(self, top: int = 5) -> list[tuple[str, int]]:
        """Most frequently accessed partitions, hottest first."""
        ranked = sorted(
            self.partition_access_counts.items(), key=lambda kv: -kv[1]
        )
        return ranked[:top]


class RuntimeStatsAggregator:
    """Rolls per-query stats into per-table insights."""

    def __init__(self) -> None:
        self._queries: list[QueryRuntimeStats] = []
        self._tables: dict[str, TableInsight] = defaultdict(
            lambda: TableInsight(table="")
        )

    def record(self, stats: QueryRuntimeStats) -> None:
        self._queries.append(stats)
        share = 1.0 / max(len(stats.tables), 1)
        for table in stats.tables:
            insight = self._tables[table]
            insight.table = table
            insight.queries += 1
            insight.input_wall_samples.append(stats.input_wall * share)
            insight.bytes_from_cache += int(stats.bytes_from_cache * share)
            insight.bytes_from_remote += int(stats.bytes_from_remote * share)
        for partition in stats.partitions:
            for table in stats.tables:
                counts = self._tables[table].partition_access_counts
                counts[partition] = counts.get(partition, 0) + 1

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def queries(self) -> list[QueryRuntimeStats]:
        return list(self._queries)

    def table_insight(self, table: str) -> TableInsight:
        return self._tables[table]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def input_wall_percentile(self, q: float) -> float:
        """Fleet-wide percentile of per-query scan wall time (Figure 10)."""
        return percentile([s.input_wall for s in self._queries], q)

    def total_wall_percentile(self, q: float) -> float:
        """Fleet-wide percentile of per-query latency (Meta's P50/P95)."""
        return percentile([s.total_wall for s in self._queries], q)

    @property
    def total_remote_bytes(self) -> int:
        return sum(s.bytes_from_remote for s in self._queries)

    @property
    def total_cache_bytes(self) -> int:
        return sum(s.bytes_from_cache for s in self._queries)
