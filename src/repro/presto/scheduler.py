"""Split scheduling: soft-affinity with busy fallback (Section 6.1.2).

The soft-affinity scheduler hashes the split's *file* onto the worker ring
so all splits of one file land on the same worker with best effort
(Figure 8).  The fallback ladder when the preferred node is busy:

1. the primary ring candidate, if it has capacity;
2. the secondary ring candidate (the next distinct node clockwise);
3. otherwise the least-burdened worker in the cluster, which is told to
   **bypass the cache** and read remote directly -- a temporary loss of
   affinity, not an error.

Busy-ness compares a worker's queued splits against ``max_splits_per_node``
(the coordinator gauges workload by comparing *max-splits-per-node* with
*max-pending-splits-per-task*).

:class:`RandomScheduler` is the conventional baseline the paper replaced:
even load, terrible cache affinity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import current_tracer
from repro.presto.hashring import ConsistentHashRing
from repro.presto.split import Split
from repro.resilience.health import NodeHealthTracker
from repro.sim.rng import RngStream


@dataclass(frozen=True, slots=True)
class SchedulerDecision:
    """Where one split goes and how.

    ``probes`` counts the candidate nodes whose occupancy had to be checked
    before placement -- the "latency in locating an unoccupied cache node"
    that Section 7 says grows with the replica count.
    """

    worker: str
    affinity: bool
    bypass_cache: bool
    probes: int = 1


class SoftAffinityScheduler:
    """Consistent-hash placement with a bounded-load fallback ladder.

    ``probe_latency`` is the per-candidate occupancy-check cost the
    coordinator charges on top of execution; with many replicas and hot
    files it is what erodes the benefit of extra replicas (Section 7).
    """

    def __init__(
        self,
        ring: ConsistentHashRing,
        *,
        max_replicas: int = 2,
        max_splits_per_node: int = 100,
        probe_latency: float = 0.0,
        health: NodeHealthTracker | None = None,
    ) -> None:
        if max_splits_per_node <= 0:
            raise ValueError(
                f"max_splits_per_node must be positive, got {max_splits_per_node}"
            )
        if probe_latency < 0:
            raise ValueError(f"probe_latency must be >= 0, got {probe_latency}")
        self.ring = ring
        self.max_replicas = max_replicas
        self.max_splits_per_node = max_splits_per_node
        self.probe_latency = probe_latency
        self.health = health
        self.affinity_assignments = 0
        self.fallback_assignments = 0
        self.health_skips = 0

    def assign(self, split: Split, load: dict[str, int]) -> SchedulerDecision:
        """Place one split given current per-worker queued-split counts.

        ``load`` maps every live worker to its pending split count; the
        caller increments the chosen worker's count afterwards (the
        scheduler is stateless across calls except for counters).
        """
        if not load:
            raise ValueError("no workers available")
        probes = 0
        for candidate in self.ring.candidates(split.file_id, self.max_replicas):
            probes += 1
            if self.health is not None and not self.health.is_available(candidate):
                # open breaker: skip without waiting for a timeout (the
                # whole point of feeding health into placement)
                self.health_skips += 1
                continue
            if candidate in load and load[candidate] < self.max_splits_per_node:
                self.affinity_assignments += 1
                decision = SchedulerDecision(
                    worker=candidate, affinity=True, bypass_cache=False,
                    probes=probes,
                )
                self._trace(split, decision)
                return decision
        # Temporary inability to maintain soft-affinity: least-burdened
        # worker, cache bypassed (Section 6.1.2's final fallback).
        healthy = (
            [w for w in load if self.health is None or self.health.is_available(w)]
            or list(load)
        )
        least = min(healthy, key=lambda w: (load[w], w))
        self.fallback_assignments += 1
        decision = SchedulerDecision(
            worker=least, affinity=False, bypass_cache=True, probes=probes + 1
        )
        self._trace(split, decision)
        return decision

    @staticmethod
    def _trace(split: Split, decision: SchedulerDecision) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            return
        tracer.current().event(
            "schedule",
            file_id=split.file_id,
            worker=decision.worker,
            affinity=decision.affinity,
            bypass_cache=decision.bypass_cache,
            probes=decision.probes,
        )


class RandomScheduler:
    """The conventional baseline: uniform random placement.

    "The scheduler's primary objective was to evenly distribute tasks by
    randomly assigning splits to workers.  This approach, however, proved
    to be inefficient for caching" -- every worker ends up caching a little
    of everything, and eviction churn destroys the hit rate.
    """

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng

    def assign(self, split: Split, load: dict[str, int]) -> SchedulerDecision:
        if not load:
            raise ValueError("no workers available")
        workers = sorted(load)
        pick = workers[int(self._rng.rng.integers(0, len(workers)))]
        return SchedulerDecision(worker=pick, affinity=False, bypass_cache=False)
